"""Public-API surface checks: exports resolve and carry docstrings."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.gns",
    "repro.gridbuffer",
    "repro.transport",
    "repro.obs",
    "repro.grid",
    "repro.sim",
    "repro.workflow",
    "repro.apps.mecheng",
    "repro.apps.climate",
    "repro.bench",
]


@pytest.mark.parametrize("package", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} has no __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"

    def test_module_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and module.__doc__.strip(), f"{package} lacks a docstring"

    def test_public_callables_documented(self, package):
        """Every exported class/function carries a docstring."""
        module = importlib.import_module(package)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"{package}: undocumented exports {undocumented}"


class TestVersion:
    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)
