"""Hole-shape design study: the durability pipeline's purpose.

Section 5.2: "Our aim is to determine the hole shapes that will
maximize the life of the worst (least cycles) crack.  Previous work has
shown that optimizing for life in this way may give different results
from optimizing for stress on the hole boundary [7]."

This module runs the whole CHAMMY→PAFEC→MAKE_SF→FAST→OBJECTIVE pipeline
per candidate shape (in memory, so hundreds of evaluations are cheap)
and searches the (power, aspect) shape space two ways:

* :func:`grid_study` — exhaustive grid (the Nimrod parameter-sweep
  pattern the authors come from), and
* :func:`optimize_shape` — scipy Nelder-Mead refinement from the best
  grid point.

It also reports the *stress*-optimal shape so the paper's point — life
and stress optima can differ — is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import optimize as sp_optimize

from ...workflow.localio import run_workflow_in_memory
from .chammy import HoleShape
from .pipeline import durability_workflow

__all__ = ["DesignPoint", "evaluate_shape", "grid_study", "optimize_shape"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated candidate shape."""

    shape: HoleShape
    life: float            # worst-crack cycles (to maximise)
    peak_stress: float     # max boundary tangential stress (to minimise)
    critical_crack: int


def evaluate_shape(
    shape: HoleShape,
    n_boundary: int = 48,
    n_rings: int = 12,
    applied_stress: float = 100e6,
) -> DesignPoint:
    """Run the full pipeline for one shape; returns its design point."""
    params = {
        "hole_r0": shape.r0,
        "hole_power": shape.power,
        "hole_aspect": shape.aspect,
        "boundary_points": n_boundary,
        "n_rings": n_rings,
        "applied_stress": applied_stress,
    }
    files = run_workflow_in_memory(durability_workflow(), params=params)
    life_text = files["RESULT.DAT"].decode().split()
    life, critical = float(life_text[0]), int(life_text[1])
    sf_lines = files["JOB.SF"].decode().splitlines()
    stresses = np.array([float(v) for v in sf_lines[1:]])
    return DesignPoint(
        shape=shape,
        life=life,
        peak_stress=float(stresses.max()),
        critical_crack=critical,
    )


def grid_study(
    powers: List[float],
    aspects: List[float],
    r0: float = 1.0,
    **eval_kw,
) -> List[DesignPoint]:
    """Evaluate the full (power, aspect) grid; returns all points."""
    points = []
    for power in powers:
        for aspect in aspects:
            points.append(evaluate_shape(HoleShape(r0=r0, power=power, aspect=aspect), **eval_kw))
    return points


def best_by_life(points: List[DesignPoint]) -> DesignPoint:
    """The design with the longest worst-crack life (the paper's aim)."""
    return max(points, key=lambda p: p.life)


def best_by_stress(points: List[DesignPoint]) -> DesignPoint:
    """The design with the lowest peak boundary stress (the classical
    objective the paper contrasts against, via [7])."""
    return min(points, key=lambda p: p.peak_stress)


def optimize_shape(
    start: Optional[HoleShape] = None,
    bounds: Tuple[Tuple[float, float], Tuple[float, float]] = ((1.2, 8.0), (0.5, 2.0)),
    max_evals: int = 40,
    **eval_kw,
) -> DesignPoint:
    """Nelder-Mead refinement of (power, aspect) maximising life.

    Parameters are clipped into ``bounds`` inside the objective (the
    classic bounded-Nelder-Mead trick) so the FEM never sees degenerate
    shapes.
    """
    start = start or HoleShape()
    cache: Dict[Tuple[float, float], DesignPoint] = {}

    def objective(x: np.ndarray) -> float:
        power = float(np.clip(x[0], *bounds[0]))
        aspect = float(np.clip(x[1], *bounds[1]))
        key = (round(power, 6), round(aspect, 6))
        if key not in cache:
            cache[key] = evaluate_shape(HoleShape(r0=start.r0, power=power, aspect=aspect), **eval_kw)
        return -cache[key].life  # maximise life

    sp_optimize.minimize(
        objective,
        x0=np.array([start.power, start.aspect]),
        method="Nelder-Mead",
        options={"maxfev": max_evals, "xatol": 1e-2, "fatol": 1e-3},
    )
    return best_by_life(list(cache.values()))
