"""Tests for FM call tracing."""

import io

import pytest

from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.core.trace import FmTracer
from repro.gns.client import LocalGnsClient
from repro.gns.server import NameService


@pytest.fixture()
def fm(hosts):
    fm = FileMultiplexer(
        GridContext(machine="alpha", gns=LocalGnsClient(NameService()), hosts=hosts)
    )
    yield fm
    fm.close()


class TestFmTracer:
    def test_operations_recorded_in_order(self, fm):
        tracer = FmTracer(fm)
        f = tracer.open("/t.bin", "w")
        f.write(b"12345")
        f.close()
        f = tracer.open("/t.bin", "r")
        f.read(3)
        f.seek(0)
        f.read(2)
        f.close()
        ops = [e.op for e in tracer.events]
        assert ops == ["open", "write", "close", "open", "read", "seek", "read", "close"]

    def test_summary_aggregates(self, fm):
        tracer = FmTracer(fm)
        f = tracer.open("/s.bin", "w")
        f.write(b"x" * 100)
        f.write(b"y" * 50)
        f.close()
        f = tracer.open("/s.bin", "r")
        f.read(150)
        f.close()
        summary = tracer.summary()["/s.bin"]
        assert summary["opens"] == 2
        assert summary["writes"] == 2
        assert summary["bytes_written"] == 150
        assert summary["bytes_read"] == 150

    def test_mode_captured(self, fm):
        tracer = FmTracer(fm)
        tracer.open("/m.bin", "w").close()
        assert tracer.events[0].mode == "local"

    def test_echo_stream(self, fm):
        sink = io.StringIO()
        tracer = FmTracer(fm, echo=sink)
        tracer.open("/e.bin", "w").close()
        text = sink.getvalue()
        assert "open" in text and "/e.bin" in text

    def test_bounded_log(self, fm):
        tracer = FmTracer(fm, max_events=4)
        f = tracer.open("/b.bin", "w")
        for _ in range(10):
            f.write(b"z")
        f.close()
        assert len(tracer.events) == 4

    def test_clear(self, fm):
        tracer = FmTracer(fm)
        tracer.open("/c.bin", "w").close()
        tracer.clear()
        assert len(tracer.events) == 0

    def test_traced_handle_is_functional(self, fm, hosts):
        tracer = FmTracer(fm)
        with io.BufferedWriter(tracer.open("/fn.txt", "w")) as fh:
            fh.write(b"through the tracer\n")
        assert (
            hosts.host("alpha").resolve("/fn.txt").read_bytes()
            == b"through the tracer\n"
        )
