"""Unit tests for the GridFTP-like transport."""

import hashlib

import pytest

from repro.transport.gridftp import GridFtpClient, GridFtpServer
from repro.transport.tcp import RpcError


@pytest.fixture()
def export(tmp_path):
    root = tmp_path / "export"
    root.mkdir()
    (root / "hello.txt").write_bytes(b"hello grid world")
    (root / "big.bin").write_bytes(bytes(i % 251 for i in range(300_000)))
    server = GridFtpServer(root)
    with server:
        yield server, root


class TestMetadata:
    def test_size(self, export):
        server, _ = export
        with GridFtpClient(*server.address) as client:
            assert client.size("/hello.txt") == 16

    def test_size_missing_raises(self, export):
        server, _ = export
        with GridFtpClient(*server.address) as client:
            with pytest.raises(RpcError, match="not-found"):
                client.size("/nope")

    def test_exists(self, export):
        server, _ = export
        with GridFtpClient(*server.address) as client:
            assert client.exists("/hello.txt")
            assert not client.exists("/nope")

    def test_checksum_matches_sha256(self, export):
        server, root = export
        with GridFtpClient(*server.address) as client:
            expected = hashlib.sha256((root / "big.bin").read_bytes()).hexdigest()
            assert client.checksum("/big.bin") == expected

    def test_delete(self, export):
        server, root = export
        with GridFtpClient(*server.address) as client:
            assert client.delete("/hello.txt") is True
            assert not (root / "hello.txt").exists()
            assert client.delete("/hello.txt") is False


class TestBlockAccess:
    def test_read_block(self, export):
        server, _ = export
        with GridFtpClient(*server.address) as client:
            assert client.read_block("/hello.txt", 6, 4) == b"grid"

    def test_read_past_eof_returns_short(self, export):
        server, _ = export
        with GridFtpClient(*server.address) as client:
            assert client.read_block("/hello.txt", 10, 100) == b" world"
            assert client.read_block("/hello.txt", 100, 10) == b""

    def test_write_block_at_offset(self, export):
        server, root = export
        with GridFtpClient(*server.address) as client:
            client.write_block("/hello.txt", 0, b"HELLO")
            assert (root / "hello.txt").read_bytes() == b"HELLO grid world"

    def test_write_block_truncate(self, export):
        server, root = export
        with GridFtpClient(*server.address) as client:
            client.write_block("/hello.txt", 0, b"xy", truncate=True)
            assert (root / "hello.txt").read_bytes() == b"xy"

    def test_negative_offset_rejected(self, export):
        server, _ = export
        with GridFtpClient(*server.address) as client:
            with pytest.raises(RpcError):
                client.read_block("/hello.txt", -1, 4)


class TestBulkCopy:
    def test_fetch_file(self, export, tmp_path):
        server, root = export
        dest = tmp_path / "local" / "big.bin"
        with GridFtpClient(*server.address, block_size=4096) as client:
            n = client.fetch_file("/big.bin", dest)
        assert n == 300_000
        assert dest.read_bytes() == (root / "big.bin").read_bytes()

    def test_fetch_with_parallel_streams(self, export, tmp_path):
        server, root = export
        dest = tmp_path / "par.bin"
        with GridFtpClient(*server.address, parallel_streams=4, block_size=8192) as client:
            client.fetch_file("/big.bin", dest)
        assert dest.read_bytes() == (root / "big.bin").read_bytes()

    def test_fetch_empty_file(self, export, tmp_path):
        server, root = export
        (root / "empty").write_bytes(b"")
        dest = tmp_path / "empty.out"
        with GridFtpClient(*server.address) as client:
            assert client.fetch_file("/empty", dest) == 0
        assert dest.read_bytes() == b""

    def test_store_file(self, export, tmp_path):
        server, root = export
        src = tmp_path / "upload.bin"
        payload = bytes(i % 13 for i in range(100_000))
        src.write_bytes(payload)
        with GridFtpClient(*server.address, block_size=4096) as client:
            client.store_file(src, "/incoming/upload.bin")
        assert (root / "incoming" / "upload.bin").read_bytes() == payload

    def test_store_overwrites_shorter(self, export, tmp_path):
        server, root = export
        src = tmp_path / "short.bin"
        src.write_bytes(b"short")
        with GridFtpClient(*server.address) as client:
            client.store_file(src, "/big.bin")
        assert (root / "big.bin").read_bytes() == b"short"


class TestPathSafety:
    def test_escape_rejected(self, export, tmp_path):
        server, _ = export
        (tmp_path / "secret.txt").write_bytes(b"secret")
        with GridFtpClient(*server.address) as client:
            with pytest.raises(RpcError, match="forbidden"):
                client.size("/../secret.txt")

    def test_client_validation(self, export):
        server, _ = export
        with pytest.raises(ValueError):
            GridFtpClient(*server.address, parallel_streams=0)
        with pytest.raises(ValueError):
            GridFtpClient(*server.address, block_size=0)
