"""Wire-protocol constants for the Grid Buffer service.

The paper's implementation used SOAP over Web Services; we keep the
role (self-describing messages on one firewall-friendly channel) on the
framed-JSON RPC layer.  Block size defaults to 4096 bytes — the typical
write size the paper reports for the climate models.
"""

from __future__ import annotations

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CAPACITY",
    "OP_CREATE",
    "OP_REGISTER_READER",
    "OP_WRITE",
    "OP_READ",
    "OP_CLOSE_WRITER",
    "OP_STATS",
    "OP_DROP",
    "OP_EXISTS",
    "OP_ABORT",
    "OP_RESUME",
    "OP_HIGH_WATER",
]

#: Typical legacy-application write granularity (paper Section 5.3).
DEFAULT_BLOCK_SIZE = 4096

#: Default per-stream table capacity; bounded so backpressure exists.
DEFAULT_CAPACITY = 32 * 1024 * 1024

OP_CREATE = "gb.create"
OP_REGISTER_READER = "gb.register_reader"
OP_WRITE = "gb.write"
OP_READ = "gb.read"
OP_CLOSE_WRITER = "gb.close_writer"
OP_STATS = "gb.stats"
OP_DROP = "gb.drop"
OP_EXISTS = "gb.exists"
OP_ABORT = "gb.abort"
OP_RESUME = "gb.resume"
OP_HIGH_WATER = "gb.high_water"
