"""Unit tests for planning, constraints and coupling choice."""

import pytest

from repro.grid.testbed import TESTBED
from repro.sim.netsim import LinkSpec
from repro.workflow.scheduler import (
    ExecutionPlan,
    choose_coupling,
    estimate_makespan,
    plan_workflow,
)
from repro.workflow.spec import FileUse, Stage, Workflow, WorkflowError


def chain(nbytes=1024) -> Workflow:
    return Workflow(
        "chain",
        [
            Stage("p", writes=(FileUse("f", nbytes),), work=100, chunks=10),
            Stage("q", reads=(FileUse("f", nbytes),), work=50, chunks=10),
        ],
    )


class TestPlanValidation:
    def test_missing_placement_rejected(self):
        with pytest.raises(WorkflowError, match="no placement"):
            ExecutionPlan(chain(), {"p": "m1"}, {"f": "local"})

    def test_missing_coupling_rejected(self):
        with pytest.raises(WorkflowError, match="no coupling"):
            ExecutionPlan(chain(), {"p": "m1", "q": "m1"}, {})

    def test_local_cross_machine_rejected(self):
        with pytest.raises(WorkflowError, match="marked local"):
            ExecutionPlan(chain(), {"p": "m1", "q": "m2"}, {"f": "local"})

    def test_file_stream_cross_machine_rejected(self):
        with pytest.raises(WorkflowError, match="marked file-stream"):
            ExecutionPlan(chain(), {"p": "m1", "q": "m2"}, {"f": "file-stream"})

    def test_buffer_cross_machine_allowed(self):
        plan = ExecutionPlan(chain(), {"p": "m1", "q": "m2"}, {"f": "buffer"})
        assert plan.machine_of("q") == "m2"


class TestPlanWorkflow:
    def test_same_machine_defaults_local(self):
        plan = plan_workflow(chain(), {"p": "m", "q": "m"})
        assert plan.coupling["f"] == "local"

    def test_cross_machine_defaults_copy(self):
        plan = plan_workflow(chain(), {"p": "m1", "q": "m2"})
        assert plan.coupling["f"] == "copy"

    def test_override_wins(self):
        plan = plan_workflow(chain(), {"p": "m1", "q": "m2"}, coupling={"f": "buffer"})
        assert plan.coupling["f"] == "buffer"


class TestConstraints:
    def test_sequential_couplings_constrain_start(self):
        for mech in ("local", "copy"):
            plan = plan_workflow(
                chain(), {"p": "m1", "q": "m1" if mech == "local" else "m2"},
                coupling={"f": mech},
            )
            assert plan.start_constraints()["q"] == ["p"]

    def test_buffer_has_no_start_constraint(self):
        """Paper Section 6: buffered stages 'need to run at the same
        time'; file copies force sequential execution."""
        plan = plan_workflow(chain(), {"p": "m1", "q": "m2"}, coupling={"f": "buffer"})
        assert plan.start_constraints()["q"] == []

    def test_is_fully_pipelined(self):
        buffered = plan_workflow(chain(), {"p": "m", "q": "m"}, coupling={"f": "buffer"})
        assert buffered.is_fully_pipelined()
        local = plan_workflow(chain(), {"p": "m", "q": "m"})
        assert not local.is_fully_pipelined()

    def test_copies_required(self):
        plan = plan_workflow(chain(), {"p": "m1", "q": "m2"}, coupling={"f": "copy"})
        assert plan.copies_required() == [("f", "m1", "m2")]
        same = plan_workflow(chain(), {"p": "m1", "q": "m1"}, coupling={"f": "copy"})
        assert same.copies_required() == []


class TestChooseCoupling:
    def _links(self):
        return {
            ("m1", "m2"): LinkSpec(bandwidth=10 * 1024 * 1024, latency=0.0005),
            ("m1", "m3"): LinkSpec(bandwidth=0.33 * 1024 * 1024, latency=0.32),
        }

    def _machines(self):
        return {name: TESTBED["brecca"] for name in ("m1", "m2", "m3")}

    def test_same_machine_prefers_buffer(self):
        wf = chain(nbytes=10 * 1024 * 1024)
        decision = choose_coupling(wf, {"p": "m1", "q": "m1"}, self._machines(), self._links())
        assert decision["f"] == "buffer"

    def test_fast_link_prefers_buffer(self):
        wf = chain(nbytes=10 * 1024 * 1024)
        decision = choose_coupling(wf, {"p": "m1", "q": "m2"}, self._machines(), self._links())
        assert decision["f"] == "buffer"

    def test_high_latency_link_prefers_copy(self):
        """The paper's AU→UK result, derived from the cost model."""
        wf = chain(nbytes=10 * 1024 * 1024)
        decision = choose_coupling(wf, {"p": "m1", "q": "m3"}, self._machines(), self._links())
        assert decision["f"] == "copy"


class TestEstimateMakespan:
    def _setup(self):
        machines = {"m1": TESTBED["brecca"], "m2": TESTBED["brecca"]}
        links = {("m1", "m2"): LinkSpec(bandwidth=10 * 1024 * 1024, latency=0.001)}
        return machines, links

    def test_sequential_is_sum(self):
        machines, links = self._setup()
        plan = plan_workflow(chain(), {"p": "m1", "q": "m1"})
        t = estimate_makespan(plan, machines, links)
        assert t == pytest.approx(150 / TESTBED["brecca"].speed, rel=0.01)

    def test_buffered_overlaps(self):
        machines, links = self._setup()
        seq = estimate_makespan(plan_workflow(chain(), {"p": "m1", "q": "m1"}), machines, links)
        buf = estimate_makespan(
            plan_workflow(chain(), {"p": "m1", "q": "m2"}, coupling={"f": "buffer"}),
            machines,
            links,
        )
        assert buf < seq

    def test_copy_adds_transfer_time(self):
        machines, links = self._setup()
        big = Workflow(
            "big",
            [
                Stage("p", writes=(FileUse("f", 100 * 1024 * 1024),), work=10),
                Stage("q", reads=(FileUse("f", 100 * 1024 * 1024),), work=10),
            ],
        )
        t = estimate_makespan(
            plan_workflow(big, {"p": "m1", "q": "m2"}, coupling={"f": "copy"}), machines, links
        )
        assert t > 10  # the 10 s transfer dominates the ~20 work units
