"""Tests for table formatting and the experiment drivers."""

import pytest

from repro.bench.ascii_render import ascii_field, rasterize_von_mises, write_pgm
from repro.bench.tables import ShapeCheck, TableBuilder, hms, parse_hms


class TestTimeFormatting:
    @pytest.mark.parametrize(
        "seconds,text",
        [(0, "00:00:00"), (59, "00:00:59"), (61, "00:01:01"), (3661, "01:01:01"), (5957, "01:39:17")],
    )
    def test_hms(self, seconds, text):
        assert hms(seconds) == text

    @pytest.mark.parametrize(
        "text,seconds",
        [("99:17", 5957), ("00:28:21", 1701), ("1:39:33", 5973), ("0:50", 50)],
    )
    def test_parse_hms(self, text, seconds):
        assert parse_hms(text) == seconds

    def test_parse_roundtrip(self):
        for s in (0, 59, 3600, 5957, 86399):
            assert parse_hms(hms(s)) == s

    def test_parse_bad_raises(self):
        with pytest.raises(ValueError):
            parse_hms("12")


class TestTableBuilder:
    def test_render_alignment(self):
        t = TableBuilder("Title", ["col1", "longer column"])
        t.add_row("a", 1)
        t.add_row("bbbb", 22)
        text = t.render()
        assert "Title" in text
        assert "col1" in text
        lines = text.splitlines()
        assert len(lines) >= 6

    def test_wrong_cell_count_rejected(self):
        t = TableBuilder("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only-one")

    def test_checks_summary(self):
        t = TableBuilder("T", ["a"])
        t.add_check("claim 1", True)
        assert t.all_checks_pass
        t.add_check("claim 2", False)
        assert not t.all_checks_pass
        assert "[FAIL] claim 2" in t.render()

    def test_shape_check_str(self):
        assert str(ShapeCheck("x", True)) == "[PASS] x"


class TestExperimentDrivers:
    def test_table1(self):
        from repro.bench.experiments import run_table1

        table = run_table1()
        assert len(table.rows) == 7
        assert table.all_checks_pass

    def test_fig6_small(self):
        from repro.bench.experiments import run_fig6_stress

        table = run_fig6_stress(n_rings=12, n_boundary=48)
        assert table.all_checks_pass

    def test_table2_shapes(self):
        from repro.bench.experiments import run_table2

        assert run_table2().all_checks_pass

    def test_table3_shapes(self):
        from repro.bench.experiments import run_table3

        assert run_table3().all_checks_pass

    def test_cli_subset(self, capsys):
        from repro.bench.cli import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out


class TestAsciiRender:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.apps.mecheng import HoleShape, boundary_points, build_ring_mesh, solve_plane_stress

        mesh = build_ring_mesh(boundary_points(HoleShape(), 32), n_rings=10, half_width=5.0)
        return solve_plane_stress(mesh)

    def test_raster_shape_and_hole(self, result):
        raster = rasterize_von_mises(result, resolution=24)
        assert raster.shape == (24, 24)
        # Centre of the plate is inside the hole -> NaN.
        import numpy as np

        assert np.isnan(raster[12, 12])
        assert np.isfinite(raster[0, 0])

    def test_ascii_field(self, result):
        raster = rasterize_von_mises(result, resolution=20)
        art = ascii_field(raster)
        lines = art.splitlines()
        assert len(lines) == 20
        assert any(" " in line for line in lines)  # the hole
        assert any(c not in " " for line in lines for c in line)

    def test_write_pgm(self, result, tmp_path):
        raster = rasterize_von_mises(result, resolution=16)
        path = tmp_path / "stress.pgm"
        write_pgm(raster, path)
        data = path.read_bytes()
        assert data.startswith(b"P5\n16 16\n255\n")
        assert len(data) == len(b"P5\n16 16\n255\n") + 16 * 16
