"""Computational-economy scheduling (the paper's §6 future work).

"We plan to extend our earlier Nimrod/G work which uses an experimental
computational economy to provide user driven quality of service goals."
This module implements that extension on top of the placement machinery:
machines advertise a price (grid-dollars per CPU-second), the user sets
a *deadline* and a *budget*, and the scheduler searches placements for

* ``cheapest`` — minimum cost whose estimated makespan meets the
  deadline, or
* ``fastest`` — minimum makespan whose cost fits the budget,

exactly Nimrod/G's two QoS modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

import itertools

from ..grid.machine import MachineSpec
from ..sim.netsim import LinkSpec
from .scheduler import ExecutionPlan, choose_coupling, estimate_makespan, plan_workflow
from .spec import Workflow

__all__ = ["QosGoal", "EconomyResult", "plan_cost", "economy_schedule"]


@dataclass(frozen=True)
class QosGoal:
    """User-driven quality-of-service target."""

    deadline: float = float("inf")   # seconds
    budget: float = float("inf")     # grid-dollars
    optimise: str = "cheapest"       # "cheapest" | "fastest"

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.budget <= 0:
            raise ValueError("budget must be positive")
        if self.optimise not in ("cheapest", "fastest"):
            raise ValueError("optimise must be 'cheapest' or 'fastest'")


@dataclass(frozen=True)
class EconomyResult:
    plan: ExecutionPlan
    makespan: float
    cost: float


def plan_cost(
    plan: ExecutionPlan,
    machines: Mapping[str, MachineSpec],
    prices: Mapping[str, float],
) -> float:
    """Grid-dollar cost: CPU-seconds consumed per stage × machine price."""
    total = 0.0
    for stage_name, stage in plan.workflow.stages.items():
        machine = plan.machine_of(stage_name)
        cpu_seconds = stage.work / machines[machine].speed
        total += cpu_seconds * prices[machine]
    return total


def economy_schedule(
    workflow: Workflow,
    machines: Mapping[str, MachineSpec],
    links: Mapping[Tuple[str, str], LinkSpec],
    prices: Mapping[str, float],
    goal: QosGoal,
    max_candidates: int = 200_000,
) -> Optional[EconomyResult]:
    """Exhaustively search placements for the QoS-optimal feasible plan.

    Returns None when no placement satisfies the goal (over budget for
    every deadline-meeting plan, or vice versa).
    """
    stages = list(workflow.stages)
    names = sorted(machines)
    space = len(names) ** len(stages)
    if space > max_candidates:
        raise ValueError(f"{space} placements exceed max_candidates={max_candidates}")
    missing_prices = set(names) - set(prices)
    if missing_prices:
        raise ValueError(f"no price for machines {sorted(missing_prices)}")

    best: Optional[EconomyResult] = None
    for combo in itertools.product(names, repeat=len(stages)):
        placement = dict(zip(stages, combo))
        coupling = choose_coupling(workflow, placement, machines, links)
        plan = plan_workflow(workflow, placement, coupling=coupling)
        makespan = estimate_makespan(plan, machines, links)
        cost = plan_cost(plan, machines, prices)
        if makespan > goal.deadline or cost > goal.budget:
            continue
        candidate = EconomyResult(plan, makespan, cost)
        if best is None:
            best = candidate
        elif goal.optimise == "cheapest" and (
            (cost, makespan) < (best.cost, best.makespan)
        ):
            best = candidate
        elif goal.optimise == "fastest" and (
            (makespan, cost) < (best.makespan, best.cost)
        ):
            best = candidate
    return best
