"""Thread-safe metrics primitives: counters, gauges, histograms.

One :class:`MetricsRegistry` per process is the single source of truth
for every quantitative observation the stack makes — FM operations,
transport RPC timings, Grid Buffer occupancy, workflow progress.  The
registry is deliberately small and dependency-free (the rest of
``repro`` imports it, never the other way around):

* **families** — ``registry.counter("fm_ops_total", labelnames=("op",
  "mode"))`` declares a metric once; re-declaring with identical
  schema returns the same family, a conflicting schema raises.
* **children** — ``family.labels(op="read", mode="local")`` resolves
  (and caches) one labelled series; hot paths bind children once and
  call ``inc``/``observe`` on them, which costs a lock plus a float add.
* **export** — :meth:`MetricsRegistry.snapshot` returns plain dicts
  (JSON-embeddable into ``BENCH_*.json`` or a trace file) and
  :meth:`MetricsRegistry.render_text` emits Prometheus-style text
  exposition.

A process-wide default registry is reachable through
:func:`get_registry` and the module-level convenience constructors in
:mod:`repro.obs`; :func:`disabled` turns all mutation into no-ops for
overhead A/B measurements.
"""

from __future__ import annotations

import math
import re
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple

__all__ = [
    "MetricsError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
    "disabled",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_CHILDREN",
    "OVERFLOW_LABEL",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds): spans sub-millisecond RPCs on
#: localhost up to multi-second bulk copies over slow links.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelValues = Tuple[str, ...]

#: Per-family cap on distinct label combinations.  At fleet scale a
#: peer-labelled family would otherwise grow one series per remote
#: address forever; past the cap all new combinations collapse into a
#: single ``"_overflow"`` series and ``obs_label_overflow_total`` counts
#: how many resolutions were absorbed.
DEFAULT_MAX_CHILDREN = 1024

#: Label value used for every component of the shared overflow series.
OVERFLOW_LABEL = "_overflow"


class MetricsError(ValueError):
    """Invalid metric name, label schema, or conflicting registration."""


class Counter:
    """Monotonically increasing value (one labelled series)."""

    __slots__ = ("_family", "_value")

    def __init__(self, family: "MetricFamily"):
        self._family = family
        self._value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise MetricsError("counters can only increase")
        registry = self._family.registry
        if not registry.enabled:
            return
        with self._family._lock:
            self._value += n

    @property
    def value(self) -> float:
        with self._family._lock:
            return self._value

    def _export(self) -> float:
        return self._value


class Gauge:
    """Value that can go up and down (one labelled series)."""

    __slots__ = ("_family", "_value")

    def __init__(self, family: "MetricFamily"):
        self._family = family
        self._value = 0.0

    def set(self, v: float) -> None:
        if not self._family.registry.enabled:
            return
        with self._family._lock:
            self._value = float(v)

    def inc(self, n: float = 1.0) -> None:
        if not self._family.registry.enabled:
            return
        with self._family._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)

    @property
    def value(self) -> float:
        with self._family._lock:
            return self._value

    def _export(self) -> float:
        return self._value


class Histogram:
    """Cumulative-bucket histogram (one labelled series)."""

    __slots__ = ("_family", "_counts", "_sum", "_count")

    def __init__(self, family: "MetricFamily"):
        self._family = family
        self._counts = [0] * (len(family.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, v: float) -> None:
        registry = self._family.registry
        if not registry.enabled:
            return
        buckets = self._family.buckets
        idx = len(buckets)
        for i, bound in enumerate(buckets):
            if v <= bound:
                idx = i
                break
        with self._family._lock:
            self._counts[idx] += 1
            self._sum += v
            self._count += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager observing the elapsed wall time in seconds."""
        import time as _time

        t0 = _time.perf_counter()
        try:
            yield
        finally:
            self.observe(_time.perf_counter() - t0)

    @property
    def count(self) -> int:
        with self._family._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._family._lock:
            return self._sum

    def _export(self) -> Dict[str, Any]:
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, n in zip(self._family.buckets, self._counts):
            running += n
            cumulative[_fmt_float(bound)] = running
        cumulative["+Inf"] = running + self._counts[-1]
        return {"count": self._count, "sum": self._sum, "buckets": cumulative}


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _fmt_float(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    out = repr(float(v))
    return out[:-2] if out.endswith(".0") else out


class MetricFamily:
    """One named metric plus all of its labelled children.

    With an empty label schema the family itself behaves as its single
    child — ``registry.counter("x").inc()`` works directly.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_children: int = DEFAULT_MAX_CHILDREN,
    ):
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricsError(f"invalid label name {label!r}")
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self.max_children = max_children
        self._lock = threading.Lock()
        self._children: Dict[LabelValues, Any] = {}
        self._overflow_key: LabelValues = tuple(OVERFLOW_LABEL for _ in self.labelnames)

    def labels(self, **labelvalues: str) -> Any:
        """The child series for exactly this label combination.

        Past :attr:`max_children` distinct combinations, new ones
        collapse into a shared ``"_overflow"`` series so a fleet of
        unique peer labels cannot grow the registry without bound.
        """
        if set(labelvalues) != set(self.labelnames):
            raise MetricsError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        overflowed = False
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.labelnames and len(self._children) >= self.max_children:
                    overflowed = True
                    key = self._overflow_key
                    child = self._children.get(key)
                if child is None:
                    child = self._children[key] = _CHILD_TYPES[self.kind](self)
        if overflowed:
            # Counted outside our own lock: the overflow counter is
            # another family whose lock must nest under the registry
            # lock only (snapshot takes registry -> family).
            self.registry._note_label_overflow(self.name)
        return child

    def _default_child(self) -> Any:
        if self.labelnames:
            raise MetricsError(f"{self.name} requires labels {self.labelnames}")
        return self.labels()

    # -- unlabelled convenience passthrough ---------------------------------
    def inc(self, n: float = 1.0) -> None:
        self._default_child().inc(n)

    def dec(self, n: float = 1.0) -> None:
        self._default_child().dec(n)

    def set(self, v: float) -> None:
        self._default_child().set(v)

    def observe(self, v: float) -> None:
        self._default_child().observe(v)

    def time(self):
        return self._default_child().time()

    @property
    def value(self) -> float:
        return self._default_child().value

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum

    # -- export -------------------------------------------------------------
    def series(self) -> Iterator[Tuple[Dict[str, str], Any]]:
        with self._lock:
            items = list(self._children.items())
        for key, child in items:
            yield dict(zip(self.labelnames, key)), child._export()


class MetricsRegistry:
    """Registry of metric families; the process's one metrics namespace."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()
        #: When False every inc/set/observe is a no-op (overhead A/B).
        self.enabled = True

    # -- declaration ----------------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != tuple(labelnames):
                    raise MetricsError(
                        f"metric {name!r} already registered as {family.kind}"
                        f"{family.labelnames}, cannot re-register as {kind}{tuple(labelnames)}"
                    )
                return family
            family = MetricFamily(self, name, kind, help, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> MetricFamily:
        """Declare (or fetch) a counter family."""
        return self._register(name, "counter", help, labelnames)

    def _note_label_overflow(self, family_name: str) -> None:
        """Count one label-cardinality overflow for ``family_name``.

        Never called while holding any family lock.  Guarded against
        the overflow counter itself overflowing (which would recurse).
        """
        if family_name == "obs_label_overflow_total":
            return
        self.counter(
            "obs_label_overflow_total",
            "Label combinations collapsed into the _overflow series",
            labelnames=("metric",),
        ).labels(metric=family_name).inc()

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> MetricFamily:
        """Declare (or fetch) a gauge family."""
        return self._register(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Declare (or fetch) a histogram family."""
        return self._register(name, "histogram", help, labelnames, buckets)

    # -- lookup ---------------------------------------------------------------
    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def value(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Optional[float]:
        """Current value of one counter/gauge series (None if absent).

        For histograms returns the observation count — enough for the
        common "did anything happen here?" assertions.
        """
        family = self.get(name)
        if family is None:
            return None
        want = {k: str(v) for k, v in (labels or {}).items()}
        key = tuple(want.get(label, "") for label in family.labelnames)
        with family._lock:
            child = family._children.get(key)
            if child is None:
                return None
        if family.kind == "histogram":
            return float(child.count)
        return child.value

    def reset(self) -> None:
        """Zero every series without unregistering families.

        Instrumented modules bind family objects at import time;
        dropping families would orphan those bindings, so reset only
        clears the labelled children (they are lazily recreated).
        """
        with self._lock:
            families = list(self._families.values())
        for family in families:
            with family._lock:
                family._children.clear()

    # -- export ---------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict dump of every series (JSON-serialisable)."""
        with self._lock:
            families = list(self._families.values())
        out: Dict[str, Any] = {}
        for family in sorted(families, key=lambda f: f.name):
            series = [
                {"labels": labels, "value": value}
                for labels, value in family.series()
            ]
            if not series:
                continue
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def render_text(self) -> str:
        """Prometheus-style text exposition of the whole registry."""
        lines: list[str] = []
        with self._lock:
            families = list(self._families.values())
        for family in sorted(families, key=lambda f: f.name):
            pairs = list(family.series())
            if not pairs:
                continue
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, value in pairs:
                if family.kind == "histogram":
                    for le, n in value["buckets"].items():
                        lines.append(
                            f"{family.name}_bucket{_render_labels({**labels, 'le': le})} {n}"
                        )
                    lines.append(f"{family.name}_sum{_render_labels(labels)} {_fmt_float(value['sum'])}")
                    lines.append(f"{family.name}_count{_render_labels(labels)} {value['count']}")
                else:
                    lines.append(f"{family.name}{_render_labels(labels)} {_fmt_float(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in labels.items()
    )
    return "{" + body + "}"


#: The process-wide default registry.  Instrumented modules bind their
#: families against this at import time; it is never replaced, only
#: reset (tests) or disabled (overhead measurements).
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT_REGISTRY


@contextmanager
def disabled() -> Iterator[None]:
    """Temporarily make all default-registry mutation a no-op.

    Used by the overhead benchmark to A/B the cost of instrumentation
    on a hot path without touching any call sites.
    """
    registry = get_registry()
    prior = registry.enabled
    registry.enabled = False
    try:
        yield
    finally:
        registry.enabled = prior
