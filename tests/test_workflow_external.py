"""Tests for external-input access modes in the simulated runner."""

import pytest

from repro.grid.machine import Machine, MachineSpec
from repro.sim.engine import Environment
from repro.sim.netsim import LinkSpec, Network
from repro.workflow.external import ExternalInput
from repro.workflow.scheduler import plan_workflow
from repro.workflow.simrunner import simulate_plan
from repro.workflow.spec import FileUse, Stage, Workflow

MB = 1024 * 1024


def build(names, bandwidth=2 * MB, latency=0.05):
    env = Environment()
    machines = {
        n: Machine(
            env,
            MachineSpec(
                name=n, address=f"{n}.t", country="AU", cpu="t", mem_mb=512,
                speed=1.0, idle_io_fraction=0.0, buffer_cpu_per_mb=0.0, file_cpu_per_mb=0.0,
            ),
        )
        for n in names
    }
    net = Network(env)
    pairs = [(a, b) for i, a in enumerate(names) for b in names[i + 1 :]]
    for a, b in pairs:
        net.connect(a, b, LinkSpec(bandwidth=bandwidth, latency=latency))
    return env, machines, net


def analysis_workflow(nbytes=32 * MB, fraction=1.0, work=10.0, chunks=8):
    return Workflow(
        "analysis",
        [
            Stage(
                "analyse",
                reads=(FileUse("dataset", nbytes),),
                writes=(FileUse("report", 1 * MB),),
                work=work,
                chunks=chunks,
            )
        ],
    )


def run(externals, **net_kw):
    wf = analysis_workflow()
    env, machines, net = build(["worker", "store"], **net_kw)
    plan = plan_workflow(wf, {"analyse": "worker"})
    report = simulate_plan(
        plan, machines=machines, network=net, env=env, externals=externals
    )
    return report.makespan


class TestExternalInput:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExternalInput(host="h", mode="teleport")
        with pytest.raises(ValueError):
            ExternalInput(host="h", read_fraction=0.0)

    def test_local_input_is_baseline(self):
        base = run(None)
        local = run({"dataset": ExternalInput(host="worker", mode="local")})
        assert local == pytest.approx(base, rel=0.01)

    def test_copy_pays_one_transfer(self):
        base = run(None)
        copied = run({"dataset": ExternalInput(host="store", mode="copy")})
        # 32 MB at 2 MB/s ~ 16 s on top of the ~10 s compute baseline.
        assert copied - base == pytest.approx(16.0, rel=0.3)

    def test_remote_full_read_slower_than_copy_on_high_latency(self):
        """Reading everything block-by-block over a laggy link loses to
        one bulk copy — Section 3.1's 'copy small files on high
        latency' in simulated form."""
        copied = run(
            {"dataset": ExternalInput(host="store", mode="copy")}, latency=0.2
        )
        proxied = run(
            {"dataset": ExternalInput(host="store", mode="remote", read_fraction=1.0)},
            latency=0.2,
        )
        assert proxied > copied

    def test_remote_tiny_fraction_beats_copy(self):
        """Touching 2% of the file: proxy reads skip 98% of the bytes."""
        copied = run({"dataset": ExternalInput(host="store", mode="copy")})
        proxied = run(
            {"dataset": ExternalInput(host="store", mode="remote", read_fraction=0.02)}
        )
        assert proxied < copied

    def test_remote_cost_scales_with_fraction(self):
        small = run(
            {"dataset": ExternalInput(host="store", mode="remote", read_fraction=0.1)}
        )
        large = run(
            {"dataset": ExternalInput(host="store", mode="remote", read_fraction=0.9)}
        )
        assert large > small

    def test_unknown_external_file_rejected(self):
        wf = analysis_workflow()
        env, machines, net = build(["worker", "store"])
        plan = plan_workflow(wf, {"analyse": "worker"})
        with pytest.raises(KeyError, match="no-such-file"):
            simulate_plan(
                plan,
                machines=machines,
                network=net,
                env=env,
                externals={"no-such-file": ExternalInput(host="store")},
            )

    def test_pipeline_file_cannot_be_external(self):
        wf = Workflow(
            "two",
            [
                Stage("p", writes=(FileUse("mid", MB),), work=1),
                Stage("q", reads=(FileUse("mid", MB),), work=1),
            ],
        )
        env, machines, net = build(["worker", "store"])
        plan = plan_workflow(wf, {"p": "worker", "q": "worker"})
        with pytest.raises(KeyError, match="pipeline file"):
            simulate_plan(
                plan,
                machines=machines,
                network=net,
                env=env,
                externals={"mid": ExternalInput(host="store")},
            )
