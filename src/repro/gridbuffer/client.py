"""Client-side Grid Buffer API.

Two layers:

* :class:`GridBufferClient` — thin RPC mirror of the service methods,
  one per (process, server) pair.
* :class:`BufferWriter` / :class:`BufferReader` — file-like adapters
  the FM's Grid Buffer Client uses.  The writer tracks its own offset
  (sequential append is the common legacy pattern) but honours seeks;
  the reader supports ``read``/``seek``/``tell`` with re-reads served
  by the server-side cache file.

Because a blocking remote read parks a server thread, every reader
uses its own TCP connection (``dedicated_connection=True`` default).
"""

from __future__ import annotations

import io
import os
import threading
import uuid
from typing import Any, Dict, Optional, Tuple

from ..ioutil import ReadIntoFromRead
from ..transport.tcp import RpcClient
from .protocol import (
    DEFAULT_BLOCK_SIZE,
    OP_ABORT,
    OP_CLOSE_WRITER,
    OP_CREATE,
    OP_DROP,
    OP_EXISTS,
    OP_HIGH_WATER,
    OP_READ,
    OP_REGISTER_READER,
    OP_RESUME,
    OP_STATS,
    OP_WRITE,
)

__all__ = ["GridBufferClient", "BufferWriter", "BufferReader"]


class GridBufferClient:
    """RPC client for one Grid Buffer server."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._addr = (host, port)
        self._timeout = timeout
        self._rpc = RpcClient(host, port, timeout=timeout)

    def _fresh_connection(self) -> RpcClient:
        return RpcClient(*self._addr, timeout=self._timeout)

    # -- service mirror ----------------------------------------------------
    def create_stream(
        self,
        name: str,
        n_readers: int = 1,
        capacity_bytes: Optional[int] = None,
        cache: bool = False,
    ) -> None:
        self._rpc.call(
            OP_CREATE,
            {
                "name": name,
                "n_readers": n_readers,
                "capacity_bytes": capacity_bytes,
                "cache": cache,
            },
        )

    def register_reader(self, name: str, reader_id: str) -> None:
        self._rpc.call(OP_REGISTER_READER, {"name": name, "reader_id": reader_id})

    def write(self, name: str, offset: int, data: bytes, timeout: Optional[float] = None) -> None:
        self._rpc.call(OP_WRITE, {"name": name, "offset": offset, "timeout": timeout}, payload=data)

    def read(
        self,
        name: str,
        reader_id: str,
        offset: int,
        length: int,
        timeout: Optional[float] = None,
        rpc: Optional[RpcClient] = None,
    ) -> bytes:
        _, data = (rpc or self._rpc).call(
            OP_READ,
            {
                "name": name,
                "reader_id": reader_id,
                "offset": offset,
                "length": length,
                "timeout": timeout,
            },
        )
        return data

    def close_writer(self, name: str) -> int:
        reply, _ = self._rpc.call(OP_CLOSE_WRITER, {"name": name})
        return int(reply["total"])

    def stats(self, name: str) -> Dict[str, Any]:
        reply, _ = self._rpc.call(OP_STATS, {"name": name})
        return dict(reply["stats"])

    def drop_stream(self, name: str) -> None:
        self._rpc.call(OP_DROP, {"name": name})

    def stream_exists(self, name: str) -> bool:
        reply, _ = self._rpc.call(OP_EXISTS, {"name": name})
        return bool(reply["exists"])

    def abort_writer(self, name: str, reason: str = "writer aborted") -> None:
        self._rpc.call(OP_ABORT, {"name": name, "reason": reason})

    def resume_writer(self, name: str) -> int:
        """Clear a failure; returns the offset to resume writing from."""
        reply, _ = self._rpc.call(OP_RESUME, {"name": name})
        return int(reply["offset"])

    def high_water(self, name: str) -> int:
        reply, _ = self._rpc.call(OP_HIGH_WATER, {"name": name})
        return int(reply["offset"])

    # -- file-like adapters ----------------------------------------------------
    def open_writer(
        self,
        name: str,
        n_readers: int = 1,
        capacity_bytes: Optional[int] = None,
        cache: bool = False,
        write_timeout: Optional[float] = None,
    ) -> "BufferWriter":
        self.create_stream(name, n_readers=n_readers, capacity_bytes=capacity_bytes, cache=cache)
        return BufferWriter(self, name, write_timeout=write_timeout)

    def open_reader(
        self,
        name: str,
        reader_id: Optional[str] = None,
        read_timeout: Optional[float] = None,
        dedicated_connection: bool = True,
        open_timeout: float = 10.0,
    ) -> "BufferReader":
        """Attach a reader, waiting for the stream to exist.

        A reader may open before the writer has created the stream (the
        paper's FM blocks the legacy OPEN until matched); poll until the
        stream appears or ``open_timeout`` elapses.
        """
        import time as _time

        rid = reader_id or f"reader-{uuid.uuid4().hex[:8]}"
        deadline = _time.monotonic() + open_timeout
        while not self.stream_exists(name):
            if _time.monotonic() > deadline:
                raise TimeoutError(f"stream {name!r} never appeared")
            _time.sleep(0.01)
        self.register_reader(name, rid)
        rpc = self._fresh_connection() if dedicated_connection else None
        return BufferReader(self, name, rid, read_timeout=read_timeout, rpc=rpc)

    def close(self) -> None:
        self._rpc.close()

    def __enter__(self) -> "GridBufferClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BufferWriter(io.RawIOBase):
    """File-like writer feeding a Grid Buffer stream."""

    def __init__(self, client: GridBufferClient, name: str, write_timeout: Optional[float] = None):
        super().__init__()
        self._client = client
        self.name = name
        self._pos = 0
        self._timeout = write_timeout
        self._closed_writer = False
        self._lock = threading.Lock()

    def writable(self) -> bool:
        return True

    def write(self, data) -> int:  # type: ignore[override]
        data = bytes(data)
        with self._lock:
            if self._closed_writer:
                raise ValueError("write to closed BufferWriter")
            if data:
                self._client.write(self.name, self._pos, data, timeout=self._timeout)
                self._pos += len(data)
        return len(data)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        with self._lock:
            if whence == os.SEEK_SET:
                self._pos = offset
            elif whence == os.SEEK_CUR:
                self._pos += offset
            else:
                raise OSError("SEEK_END unsupported on a stream writer")
            if self._pos < 0:
                raise ValueError("negative seek position")
            return self._pos

    def seekable(self) -> bool:
        return True

    def tell(self) -> int:
        return self._pos

    def close(self) -> None:
        with self._lock:
            if not self._closed_writer:
                self._closed_writer = True
                self._client.close_writer(self.name)
        super().close()


class BufferReader(ReadIntoFromRead, io.RawIOBase):
    """File-like reader over a Grid Buffer stream.

    Sequential reads drain the hash table; re-reads and backwards
    seeks hit the server-side cache file — exactly the DARLAM pattern
    in Section 5.3.
    """

    def __init__(
        self,
        client: GridBufferClient,
        name: str,
        reader_id: str,
        read_timeout: Optional[float] = None,
        rpc: Optional[RpcClient] = None,
    ):
        super().__init__()
        self._client = client
        self.name = name
        self.reader_id = reader_id
        self._pos = 0
        self._timeout = read_timeout
        self._rpc = rpc

    def readable(self) -> bool:
        return True

    def read(self, size: int = -1) -> bytes:  # type: ignore[override]
        if size is None or size < 0:
            chunks = []
            while True:
                chunk = self.read(DEFAULT_BLOCK_SIZE * 16)
                if not chunk:
                    break
                chunks.append(chunk)
            return b"".join(chunks)
        data = self._client.read(
            self.name, self.reader_id, self._pos, size, timeout=self._timeout, rpc=self._rpc
        )
        self._pos += len(data)
        return data

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        if whence == os.SEEK_SET:
            self._pos = offset
        elif whence == os.SEEK_CUR:
            self._pos += offset
        else:
            raise OSError("SEEK_END unsupported on a stream reader")
        if self._pos < 0:
            raise ValueError("negative seek position")
        return self._pos

    def seekable(self) -> bool:
        return True

    def tell(self) -> int:
        return self._pos

    def close(self) -> None:
        if self._rpc is not None:
            self._rpc.close()
            self._rpc = None
        super().close()
