"""TCP front end for the Grid Buffer service.

One :class:`GridBufferServer` hosts a :class:`GridBufferService` and
serves any number of streams.  With the default async engine the
blocking ops (reads waiting for unwritten data, writes stalled on
capacity) are native coroutine handlers — a parked reader costs a
future on the stream, not a server thread, so one node multiplexes
thousands of concurrent readers.  ``engine="threaded"`` keeps the
legacy thread-per-connection JSON server (mixed-version interop tests
and benchmark baselines).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

from ..transport.tcp import RpcError, RpcServer, ThreadedRpcServer
from .cache import BufferCache
from .protocol import (
    DEFAULT_CAPACITY,
    OP_ABORT,
    OP_CLOSE_WRITER,
    OP_CONSUME,
    OP_CONSUME_MULTI,
    OP_CREATE,
    OP_DROP,
    OP_EXISTS,
    OP_HIGH_WATER,
    OP_READ,
    OP_READ_MULTI,
    OP_REGISTER_READER,
    OP_RESUME,
    OP_STATS,
    OP_WRITE,
    OP_WRITE_MULTI,
)
from .service import GridBufferError, GridBufferService

__all__ = ["GridBufferServer"]


class GridBufferServer:
    """Network wrapper: maps RPC ops onto a local GridBufferService.

    ``simulated_latency`` (one-way seconds) is injected per RPC by the
    underlying :class:`RpcServer`, so benchmarks can A/B the per-block
    and vectored paths over a slow link without leaving localhost.

    ``engine`` selects the RPC server: ``"async"`` (default) hosts the
    blocking Grid Buffer ops as native coroutines on the shared event
    loop; ``"threaded"`` is the legacy thread-per-connection server.
    """

    def __init__(
        self,
        cache_dir: Optional[Path] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        default_capacity: Optional[int] = DEFAULT_CAPACITY,
        simulated_latency: float = 0.0,
        engine: str = "async",
        max_inflight: Optional[int] = None,
        inflight_ops: Optional[Sequence[str]] = None,
    ):
        if engine not in ("async", "threaded"):
            raise ValueError(f"engine must be 'async' or 'threaded', not {engine!r}")
        self.service = GridBufferService(default_capacity=default_capacity)
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self._simulated_latency = simulated_latency
        self._max_inflight = max_inflight
        self._inflight_ops = inflight_ops
        self.engine = engine
        self._rpc = self._new_rpc(host, port)
        self._register_ops(self._rpc)

    def _new_rpc(self, host: str, port: int):
        if self.engine == "async":
            # max_inflight (async engine only) caps server-wide handler
            # concurrency — with simulated_latency it models an origin
            # link whose service time grows with offered load, which is
            # what the cooperative-cache benchmark constrains.
            return RpcServer(
                host,
                port,
                simulated_latency=self._simulated_latency,
                max_inflight=self._max_inflight,
                inflight_ops=self._inflight_ops,
            )
        return ThreadedRpcServer(host, port, simulated_latency=self._simulated_latency)

    def _register_ops(self, rpc) -> None:
        # Service-level detail for the ops plane's _obs.health op.
        rpc.health_info = self.health_info
        rpc.register(OP_CREATE, self._op_create)
        rpc.register(OP_REGISTER_READER, self._op_register_reader)
        rpc.register(OP_WRITE, self._op_write)
        rpc.register(OP_WRITE_MULTI, self._op_write_multi)
        rpc.register(OP_READ, self._op_read)
        rpc.register(OP_READ_MULTI, self._op_read_multi)
        rpc.register(OP_CONSUME, self._op_consume)
        rpc.register(OP_CONSUME_MULTI, self._op_consume_multi)
        rpc.register(OP_CLOSE_WRITER, self._op_close_writer)
        rpc.register(OP_STATS, self._op_stats)
        rpc.register(OP_DROP, self._op_drop)
        rpc.register(OP_EXISTS, self._op_exists)
        rpc.register(OP_ABORT, self._op_abort)
        rpc.register(OP_RESUME, self._op_resume)
        rpc.register(OP_HIGH_WATER, self._op_high_water)
        if hasattr(rpc, "register_async"):
            # The potentially-blocking ops become coroutines: a reader
            # waiting for data (or a writer stalled on capacity) parks
            # a future on the stream instead of holding a thread.
            rpc.register_async(OP_WRITE, self._op_write_async)
            rpc.register_async(OP_WRITE_MULTI, self._op_write_multi_async)
            rpc.register_async(OP_READ, self._op_read_async)
            rpc.register_async(OP_READ_MULTI, self._op_read_multi_async)
            # Everything left never blocks (lock-protected dict/interval
            # work, no waiting, no file IO) — run it inline on the loop
            # and skip the two thread hops of the executor path.
            # gb.create and gb.drop stay on a worker: they touch the
            # cache file on disk.
            for op, fn in (
                (OP_REGISTER_READER, self._op_register_reader),
                (OP_CONSUME, self._op_consume),
                (OP_CONSUME_MULTI, self._op_consume_multi),
                (OP_CLOSE_WRITER, self._op_close_writer),
                (OP_STATS, self._op_stats),
                (OP_EXISTS, self._op_exists),
                (OP_ABORT, self._op_abort),
                (OP_RESUME, self._op_resume),
                (OP_HIGH_WATER, self._op_high_water),
            ):
                rpc.register(op, fn, inline=True)

    @property
    def address(self) -> Tuple[str, int]:
        return self._rpc.address

    def health_info(self) -> Dict[str, Any]:
        """Buffer-service summary served by ``_obs.health``."""
        names = self.service.stream_names()
        return {
            "kind": "gridbuffer",
            "engine": self.engine,
            "streams": len(names),
            "stream_names": names[:32],
        }

    def start(self) -> "GridBufferServer":
        self._rpc.start()
        return self

    def stop(self) -> None:
        self._rpc.stop()

    def restart(self) -> None:
        """Bounce the TCP front end on the same port; stream state survives.

        Every live connection dies (in-flight calls fail with a
        connection error) but the :class:`GridBufferService` and all its
        streams persist — this models a service blip, the scenario the
        client recovery layer (redial + re-register + dedupe tokens) is
        built for, and is what the chaos suite exercises.
        """
        host, port = self.address
        self._rpc.stop()
        self._rpc.disconnect_all()
        self._rpc = self._new_rpc(host, port)
        self._register_ops(self._rpc)
        self._rpc.start()

    def __enter__(self) -> "GridBufferServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- handlers -----------------------------------------------------------
    @staticmethod
    def _wrap(fn):
        try:
            return fn()
        except GridBufferError as exc:
            raise RpcError("grid-buffer", str(exc)) from exc
        except TimeoutError as exc:
            raise RpcError("timeout", str(exc)) from exc

    @staticmethod
    async def _awrap(coro):
        try:
            return await coro
        except GridBufferError as exc:
            raise RpcError("grid-buffer", str(exc)) from exc
        except TimeoutError as exc:
            raise RpcError("timeout", str(exc)) from exc

    def _op_create(self, header: Dict[str, Any], _payload: bytes):
        name = header["name"]
        cache = None
        if header.get("cache", False):
            if self.cache_dir is None:
                raise RpcError("no-cache-dir", "server started without cache_dir")
            safe = name.replace("/", "_").replace(":", "_")
            cache = BufferCache(self.cache_dir / f"{safe}.cache")
        self._wrap(
            lambda: self.service.create_stream(
                name,
                n_readers=int(header.get("n_readers", 1)),
                capacity_bytes=header.get("capacity_bytes"),
                cache=cache,
            )
        )
        return {}, b""

    def _op_register_reader(self, header: Dict[str, Any], _payload: bytes):
        gen = self._wrap(
            lambda: self.service.register_reader(header["name"], header["reader_id"])
        )
        # New clients key their shared block cache on the generation; an
        # old client simply ignores the extra reply field.  A peer-cache
        # client also asks for hints here, so a late joiner of a warm
        # broadcast starts fetching from peers with its very first read.
        reply: Dict[str, Any] = {"gen": gen}
        reply.update(self._peer_hints(header, header["name"], 0))
        return reply, b""

    # -- cooperative cache helpers ------------------------------------------
    #: How far past the served bytes a read reply's ``cached_at`` hint
    #: looks for holders.  Generous on purpose: a fetcher range-gates on
    #: the hinted span and its demote-on-miss path bounds stale hints.
    HINT_WINDOW = 4 * 1024 * 1024

    def _peer_hints(self, header: Dict[str, Any], name: str, nxt: int) -> Dict[str, Any]:
        """``cached_at`` hint for the range starting at ``nxt``, or ``{}``.

        Only computed when the request opted in via ``peer_hints`` (the
        hint fan-out K) — which is also what keeps the reply field off
        the wire for old clients, so codec skew is silent both ways.
        The hint carries the stream total when the writer has closed, so
        a fully peer-served reader learns EOF without an origin read.
        """
        k = header.get("peer_hints")
        if not k:
            return {}
        end = nxt + self.HINT_WINDOW
        total = self.service.total_bytes(name)
        if total is not None:
            end = min(end, total)
        peers = self.service.holders_for(
            name, nxt, end, k=int(k), exclude=header.get("peer")
        )
        if not peers:
            return {}
        hint: Dict[str, Any] = {"peers": peers, "start": nxt, "end": end}
        if total is not None:
            hint["total"] = total
        return {"cached_at": hint}

    def _note_holder(self, header: Dict[str, Any], name: str) -> None:
        """Apply a holder advertisement piggybacked on a consume ack."""
        peer = header.get("peer")
        if peer:
            self.service.note_holder(
                name,
                str(peer),
                holds=header.get("holds"),
                drops=header.get("drops"),
                gen=header.get("gen"),
            )

    def _op_write(self, header: Dict[str, Any], payload: bytes):
        stall = self._wrap(
            lambda: self.service.write(
                header["name"],
                int(header["offset"]),
                payload,
                timeout=header.get("timeout"),
                token=header.get("token"),
                seq=header.get("seq"),
            )
        )
        reply: Dict[str, Any] = {"written": len(payload)}
        if stall is not None:
            reply["stall"] = stall
        return reply, b""

    def _op_write_multi(self, header: Dict[str, Any], payload: bytes):
        offsets = [int(o) for o in header["offsets"]]
        sizes = [int(s) for s in header["sizes"]]
        if len(offsets) != len(sizes):
            raise RpcError("bad-request", "offsets/sizes length mismatch")
        if sum(sizes) != len(payload):
            raise RpcError("bad-request", "payload length does not match sizes")
        view = memoryview(payload)
        runs = []
        pos = 0
        for offset, size in zip(offsets, sizes):
            runs.append((offset, bytes(view[pos : pos + size])))
            pos += size
        written, stall = self._wrap(
            lambda: self.service.write_multi(
                header["name"],
                runs,
                timeout=header.get("timeout"),
                token=header.get("token"),
                seq=header.get("seq"),
            )
        )
        reply: Dict[str, Any] = {"written": written}
        if stall is not None:
            reply["stall"] = stall
        return reply, b""

    def _op_read(self, header: Dict[str, Any], _payload: bytes):
        offset = int(header["offset"])
        data = self._wrap(
            lambda: self.service.read(
                header["name"],
                header["reader_id"],
                offset,
                int(header["length"]),
                timeout=header.get("timeout"),
            )
        )
        reply: Dict[str, Any] = {"eof": len(data) == 0}
        reply.update(self._peer_hints(header, header["name"], offset + len(data)))
        return reply, data

    def _op_read_multi(self, header: Dict[str, Any], _payload: bytes):
        name = header["name"]
        offset = int(header["offset"])
        data = self._wrap(
            lambda: self.service.read(
                name,
                header["reader_id"],
                offset,
                int(header.get("budget", header.get("length", 0))),
                timeout=header.get("timeout"),
                min_bytes=int(header.get("min_bytes", 1)),
            )
        )
        total = self.service.total_bytes(name)
        reply: Dict[str, Any] = {"eof": len(data) == 0, "total": total}
        reply.update(self._peer_hints(header, name, offset + len(data)))
        return reply, data

    async def _op_write_async(self, header: Dict[str, Any], payload: bytes):
        stall = await self._awrap(
            self.service.write_async(
                header["name"],
                int(header["offset"]),
                payload,
                timeout=header.get("timeout"),
                token=header.get("token"),
                seq=header.get("seq"),
            )
        )
        reply: Dict[str, Any] = {"written": len(payload)}
        if stall is not None:
            reply["stall"] = stall
        return reply, b""

    async def _op_write_multi_async(self, header: Dict[str, Any], payload: bytes):
        offsets = [int(o) for o in header["offsets"]]
        sizes = [int(s) for s in header["sizes"]]
        if len(offsets) != len(sizes):
            raise RpcError("bad-request", "offsets/sizes length mismatch")
        if sum(sizes) != len(payload):
            raise RpcError("bad-request", "payload length does not match sizes")
        view = memoryview(payload)
        runs = []
        pos = 0
        for offset, size in zip(offsets, sizes):
            runs.append((offset, bytes(view[pos : pos + size])))
            pos += size
        written, stall = await self._awrap(
            self.service.write_multi_async(
                header["name"],
                runs,
                timeout=header.get("timeout"),
                token=header.get("token"),
                seq=header.get("seq"),
            )
        )
        reply: Dict[str, Any] = {"written": written}
        if stall is not None:
            reply["stall"] = stall
        return reply, b""

    async def _op_read_async(self, header: Dict[str, Any], _payload: bytes):
        offset = int(header["offset"])
        data = await self._awrap(
            self.service.read_async(
                header["name"],
                header["reader_id"],
                offset,
                int(header["length"]),
                timeout=header.get("timeout"),
            )
        )
        reply: Dict[str, Any] = {"eof": len(data) == 0}
        reply.update(self._peer_hints(header, header["name"], offset + len(data)))
        return reply, data

    async def _op_read_multi_async(self, header: Dict[str, Any], _payload: bytes):
        name = header["name"]
        offset = int(header["offset"])
        data = await self._awrap(
            self.service.read_async(
                name,
                header["reader_id"],
                offset,
                int(header.get("budget", header.get("length", 0))),
                timeout=header.get("timeout"),
                min_bytes=int(header.get("min_bytes", 1)),
            )
        )
        total = self.service.total_bytes(name)
        reply: Dict[str, Any] = {"eof": len(data) == 0, "total": total}
        reply.update(self._peer_hints(header, name, offset + len(data)))
        return reply, data

    def _op_consume(self, header: Dict[str, Any], _payload: bytes):
        ranges = [(int(s), int(e)) for s, e in header.get("ranges", [])]
        self._wrap(
            lambda: self.service.mark_consumed(header["name"], header["reader_id"], ranges)
        )
        self._note_holder(header, header["name"])
        nxt = max((end for _, end in ranges), default=0)
        nxt = max(nxt, int(header.get("hint_from") or 0))
        return self._peer_hints(header, header["name"], nxt), b""

    def _op_consume_multi(self, header: Dict[str, Any], _payload: bytes):
        entries = [
            (reader_id, [(int(s), int(e)) for s, e in ranges])
            for reader_id, ranges in header.get("entries", [])
        ]
        self._wrap(lambda: self.service.mark_consumed_multi(header["name"], entries))
        self._note_holder(header, header["name"])
        # Ack replies refresh ``cached_at`` too: a fully peer-served
        # reader issues no origin reads at all, so the ack channel is
        # the only wire on which its holder map can stay current.
        nxt = max((end for _, rs in entries for _, end in rs), default=0)
        nxt = max(nxt, int(header.get("hint_from") or 0))
        return self._peer_hints(header, header["name"], nxt), b""

    def _op_close_writer(self, header: Dict[str, Any], _payload: bytes):
        total = self._wrap(lambda: self.service.close_writer(header["name"]))
        return {"total": total}, b""

    def _op_stats(self, header: Dict[str, Any], _payload: bytes):
        stats = self._wrap(lambda: self.service.stats(header["name"]))
        return {"stats": vars(stats)}, b""

    def _op_drop(self, header: Dict[str, Any], _payload: bytes):
        self.service.drop_stream(header["name"])
        return {}, b""

    def _op_exists(self, header: Dict[str, Any], _payload: bytes):
        return {"exists": self.service.exists(header["name"])}, b""

    def _op_abort(self, header: Dict[str, Any], _payload: bytes):
        self._wrap(
            lambda: self.service.abort_writer(
                header["name"], header.get("reason", "writer aborted")
            )
        )
        return {}, b""

    def _op_resume(self, header: Dict[str, Any], _payload: bytes):
        offset = self._wrap(lambda: self.service.resume_writer(header["name"]))
        return {"offset": offset}, b""

    def _op_high_water(self, header: Dict[str, Any], _payload: bytes):
        offset = self._wrap(lambda: self.service.high_water(header["name"]))
        return {"offset": offset}, b""
