"""Grid Buffer double-buffered read-ahead, write coalescing, and the
transfer monitor feeding the access policy."""

import threading

import pytest

from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.core.policy import AccessPolicy, observed_estimate
from repro.core.trace import TransferMonitor
from repro.gns.records import GnsRecord, IOMode
from repro.gridbuffer.client import GridBufferClient

PAYLOAD = bytes(i % 256 for i in range(100_000))


@pytest.fixture()
def client(buffer_server):
    c = GridBufferClient(*buffer_server.address)
    yield c
    c.close()


class TestBufferReadAhead:
    def test_sequential_drain_with_readahead_is_identical(self, client):
        w = client.open_writer("ra-seq")
        for i in range(0, len(PAYLOAD), 4096):
            w.write(PAYLOAD[i : i + 4096])
        w.close()
        r = client.open_reader("ra-seq", read_ahead=True, read_ahead_bytes=8192)
        out = bytearray()
        while True:
            chunk = r.read(8192)
            if not chunk:
                break
            out += chunk
        r.close()
        assert bytes(out) == PAYLOAD
        assert r.readahead_hits > 0, "double buffering never engaged"

    def test_readahead_with_live_writer(self, client):
        def produce():
            w = client.open_writer("ra-live")
            for i in range(0, len(PAYLOAD), 2048):
                w.write(PAYLOAD[i : i + 2048])
            w.close()

        t = threading.Thread(target=produce)
        t.start()
        r = client.open_reader("ra-live", read_ahead=True, read_ahead_bytes=4096)
        out = bytearray()
        while True:
            chunk = r.read(4096)
            if not chunk:
                break
            out += chunk
        r.close()
        t.join()
        assert bytes(out) == PAYLOAD

    def test_readahead_seek_reread_on_cached_stream(self, client):
        w = client.open_writer("ra-cached", cache=True)
        w.write(PAYLOAD[:20_000])
        w.close()
        r = client.open_reader("ra-cached", read_ahead=True, read_ahead_bytes=4096)
        first = bytearray()
        while True:
            chunk = r.read(4096)
            if not chunk:
                break
            first += chunk
        assert bytes(first) == PAYLOAD[:20_000]
        # Backwards seek: the read-ahead pipeline must discard cleanly.
        r.seek(0)
        assert r.read(1000) == PAYLOAD[:1000]
        r.seek(10_000)
        assert r.read(500) == PAYLOAD[10_000:10_500]
        r.close()

    def test_reader_without_readahead_unchanged(self, client):
        w = client.open_writer("ra-off")
        w.write(b"plain path")
        w.close()
        r = client.open_reader("ra-off", read_ahead=False)
        assert r.read(100) == b"plain path"
        assert r.readahead_hits == 0
        r.close()


class TestWriterCoalescing:
    def test_small_writes_batched_into_fewer_rpcs(self, client):
        w = client.open_writer("co-batch", cache=True, coalesce_bytes=8192)
        for i in range(0, 40_960, 256):  # 160 tiny writes
            w.write(PAYLOAD[i : i + 256])
        w.close()
        assert w.rpc_writes <= 6  # 40960/8192 = 5 full runs (+ remainder)
        r = client.open_reader("co-batch")
        out = bytearray()
        while True:
            chunk = r.read(8192)
            if not chunk:
                break
            out += chunk
        r.close()
        assert bytes(out) == PAYLOAD[:40_960]

    def test_flush_makes_pending_bytes_visible(self, client):
        w = client.open_writer("co-flush", coalesce_bytes=65536)
        w.write(b"early")
        w.flush()  # must push the run despite being far below the block size
        r = client.open_reader("co-flush")
        assert r.read(5) == b"early"
        w.write(b"-late")
        w.close()
        assert r.read(100) == b"-late"
        r.close()

    def test_uncoalesced_writer_counts_raw_rpcs(self, client):
        w = client.open_writer("co-off")
        w.write(b"a")
        w.write(b"b")
        w.close()
        assert w.rpc_writes == 2


class TestTransferMonitor:
    def test_empty_monitor_reports_none(self):
        m = TransferMonitor()
        assert m.latency("nowhere") is None
        assert m.bandwidth("nowhere") is None
        assert m.summary() == {}

    def test_latency_from_fastest_small_probe(self):
        m = TransferMonitor()
        m.record("beta", "size", 16, 0.020)
        m.record("beta", "size", 16, 0.010)  # fastest rtt -> one-way 5 ms
        m.record("beta", "get_block", 1 << 20, 0.5)  # bulk: not a probe
        assert m.latency("beta") == pytest.approx(0.005)

    def test_bandwidth_from_bulk_aggregate(self):
        m = TransferMonitor()
        m.record("beta", "get_block", 1 << 20, 0.5)
        m.record("beta", "put_block", 1 << 20, 1.5)
        m.record("beta", "size", 16, 0.010)  # small: excluded from bandwidth
        assert m.bandwidth("beta") == pytest.approx((2 << 20) / 2.0)

    def test_summary_rolls_up_per_peer(self):
        m = TransferMonitor()
        m.record("beta", "get_block", 1 << 20, 0.5)
        m.record("gamma", "size", 16, 0.002)
        s = m.summary()
        assert set(s) == {"beta", "gamma"}
        assert s["beta"]["ops"] == 1
        assert s["beta"]["bytes"] == 1 << 20
        assert s["beta"]["bandwidth_bps"] == pytest.approx((1 << 20) / 0.5)
        assert s["gamma"]["latency_s"] == pytest.approx(0.001)


class TestObservedPolicy:
    def test_estimate_falls_back_to_defaults(self):
        est = observed_estimate(None, "beta", 1_000_000)
        assert est.bandwidth == 10 * 1024 * 1024
        assert est.latency == pytest.approx(0.005)

    def test_estimate_uses_measured_numbers(self):
        m = TransferMonitor()
        m.record("beta", "size", 16, 0.100)  # one-way 50 ms
        m.record("beta", "get_block", 10 << 20, 1.0)  # 10 MiB/s
        est = observed_estimate(m, "beta", 1_000_000)
        assert est.latency == pytest.approx(0.050)
        assert est.bandwidth == pytest.approx((10 << 20) / 1.0)

    def test_decide_observed_flips_with_measured_latency(self):
        policy = AccessPolicy()
        slow = TransferMonitor()
        slow.record("wan", "size", 16, 0.200)  # 100 ms one-way
        slow.record("wan", "get_block", 10 << 20, 1.0)
        # Full sequential read of a multi-block file over a high-latency
        # link: per-block round trips dominate, so copying wins.
        d = policy.decide_observed(slow, "wan", 64 * 1024 * 100)
        assert d.mode == "copy"
        # Tiny touched fraction: proxy wins despite the latency.
        d = policy.decide_observed(slow, "wan", 64 * 1024 * 100, read_fraction=0.001)
        assert d.mode == "proxy"


class TestFmMonitorIntegration:
    def test_remote_reads_populate_fm_monitor(self, hosts, ftp_beta, gns, tmp_path):
        beta = hosts.host("beta")
        beta.resolve("/exports/m.bin").parent.mkdir(parents=True, exist_ok=True)
        beta.resolve("/exports/m.bin").write_bytes(PAYLOAD[:50_000])
        gns.add(
            GnsRecord(
                machine="alpha",
                path="/m/data.bin",
                mode=IOMode.REMOTE,
                remote_host="beta",
                remote_path="/exports/m.bin",
            )
        )
        fm = FileMultiplexer(
            GridContext(
                machine="alpha",
                gns=gns,
                hosts=hosts,
                gridftp={"beta": ftp_beta.address},
                scratch_dir=tmp_path / "scratch",
            )
        )
        f = fm.open("/m/data.bin", "r")
        assert f.read() == PAYLOAD[:50_000]
        f.close()
        summary = fm.monitor.summary()
        assert "beta" in summary and summary["beta"]["ops"] > 0
        est = fm.link_estimate("beta", 1_000_000)
        assert est.bandwidth > 0 and est.latency >= 0
        fm.close()
