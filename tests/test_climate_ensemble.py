"""Tests for the multi-region ensemble (broadcast streaming)."""

import pytest

from repro.apps.climate.ensemble import (
    ensemble_plan,
    ensemble_sim_workflow,
    ensemble_workflow,
)
from repro.workflow.runner import RealRunner
from repro.workflow.scheduler import plan_workflow
from repro.workflow.simrunner import simulate_plan

PARAMS = {"nlon": 48, "nlat": 24, "nsteps": 5, "lam_nx": 36, "lam_ny": 30}


class TestStructure:
    def test_workflow_shape(self):
        wf = ensemble_workflow(3)
        assert len(wf.stages) == 5
        assert wf.consumers_of("lam_input") == ["darlam_r0", "darlam_r1", "darlam_r2"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ensemble_workflow(0)
        with pytest.raises(ValueError):
            ensemble_sim_workflow(0)


class TestRealBroadcast:
    def test_two_regions_identical_outputs(self):
        """Both regions consume the same broadcast stream and, with
        identical parameters, must produce identical outputs."""
        wf = ensemble_workflow(2)
        placement = {
            "ccam": "hub",
            "cc2lam": "hub",
            "darlam_r0": "siteA",
            "darlam_r1": "siteB",
        }
        plan = plan_workflow(
            wf, placement, coupling={"ccam_hist": "buffer", "lam_input": "buffer"}
        )
        runner = RealRunner(plan, params=PARAMS, stage_timeout=120)
        result = runner.run()
        assert result.ok, result.errors
        out_a = (
            runner.deployment.hosts.host("siteA")
            .resolve("/wf/climate-ensemble/darlam_out_r0")
            .read_bytes()
        )
        out_b = (
            runner.deployment.hosts.host("siteB")
            .resolve("/wf/climate-ensemble/darlam_out_r1")
            .read_bytes()
        )
        # Outputs differ only in the magic-length header region?  No —
        # identical params and inputs give byte-identical results.
        assert out_a == out_b
        assert len(out_a) > 0
        # The stream really was broadcast: both readers registered.
        stats = runner.deployment.buffer_server.service.stats(
            "climate-ensemble:lam_input"
        )
        assert stats.bytes_read >= 2 * stats.bytes_written  # both drained + rereads
        runner.deployment.stop()


class TestSimulatedScaling:
    def test_broadcast_slower_than_single_region_but_sublinear(self):
        single = simulate_plan(ensemble_plan("brecca", ["dione"])).makespan
        triple = simulate_plan(
            ensemble_plan("brecca", ["dione", "vpac27", "freak"])
        ).makespan
        assert triple >= single
        assert triple < 3 * single  # broadcast, not three sequential runs

    def test_slowest_region_dominates(self):
        fast = simulate_plan(ensemble_plan("brecca", ["dione", "dione"])).makespan
        with_slow = simulate_plan(ensemble_plan("brecca", ["dione", "vpac27"])).makespan
        assert with_slow > fast

    def test_copy_fanout_also_supported(self):
        report = simulate_plan(ensemble_plan("brecca", ["dione", "freak"], mechanism="copy"))
        # Sequential semantics: regional models start after the copies.
        assert report.timings["darlam_r0"].start >= report.timings["cc2lam"].finish
