"""GNS configuration vocabulary and records.

The GNS is "a special database... consulted when an OPEN call is
executed: it matches the name of the machine on which the code resides
and the full path name of the file in the OPEN call, and returns
information to the FM about how to configure the IO" (Section 3.2).

:class:`IOMode` enumerates the paper's six IO mechanisms; a
:class:`GnsRecord` binds a ``(machine, path)`` pattern to a mode plus
mode-specific parameters.  Records are matched most-specific-first so a
single wildcard default can coexist with per-file overrides.
"""

from __future__ import annotations

import fnmatch
from dataclasses import asdict, dataclass
from enum import Enum
from typing import Any, Dict, Optional

__all__ = ["IOMode", "BufferEndpoint", "GnsRecord"]


class IOMode(str, Enum):
    """The six IO mechanisms of Section 2."""

    LOCAL = "local"                    # 1. plain local file IO
    COPY = "copy"                      # 2. local IO with copy-in/copy-out
    REMOTE = "remote"                  # 3. remote proxy IO (GridFTP blocks)
    REMOTE_REPLICA = "remote-replica"  # 4. pick replica, read remotely
    LOCAL_REPLICA = "local-replica"    # 5. pick replica, copy it locally
    BUFFER = "buffer"                  # 6. direct writer→reader connection

    @classmethod
    def parse(cls, value: "IOMode | str") -> "IOMode":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown IO mode {value!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from None


@dataclass(frozen=True)
class BufferEndpoint:
    """Where a buffered stream's Grid Buffer server lives.

    ``placement`` records the design choice of Section 3.1: the buffer
    (and its cache file) may sit at the writer end or the reader end;
    reader-end is "usually more efficient" and is the default.
    """

    stream: str
    host: str = ""
    port: int = 0
    placement: str = "reader"  # "reader" | "writer"
    n_readers: int = 1
    cache: bool = True
    capacity_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.placement not in ("reader", "writer"):
            raise ValueError(f"placement must be 'reader' or 'writer', got {self.placement!r}")
        if self.n_readers < 1:
            raise ValueError("n_readers must be >= 1")


@dataclass(frozen=True)
class GnsRecord:
    """One (machine-pattern, path-pattern) → IO-configuration binding."""

    machine: str               # host name or "*" / glob
    path: str                  # full path from the OPEN call, or glob
    mode: IOMode
    # LOCAL / COPY: resolved file path (defaults to the OPEN path).
    local_path: Optional[str] = None
    # COPY / REMOTE: where the real file lives.
    remote_host: Optional[str] = None
    remote_path: Optional[str] = None
    # *_REPLICA: logical name to look up in the replica catalogue.
    logical_name: Optional[str] = None
    # BUFFER: stream identity/placement.
    buffer: Optional[BufferEndpoint] = None
    # Degradation chain: consulted in order when this record's mode is
    # unreachable at OPEN time (e.g. BUFFER server down → fall back to
    # COPY).  Each link is a full record, so the chain can nest.
    fallback: Optional["GnsRecord"] = None

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        mode = IOMode.parse(self.mode)
        object.__setattr__(self, "mode", mode)
        if mode in (IOMode.COPY, IOMode.REMOTE):
            if not self.remote_host or not self.remote_path:
                raise ValueError(f"{mode.value} record needs remote_host and remote_path")
        if mode in (IOMode.REMOTE_REPLICA, IOMode.LOCAL_REPLICA):
            if not self.logical_name:
                raise ValueError(f"{mode.value} record needs logical_name")
        if mode is IOMode.BUFFER and self.buffer is None:
            raise ValueError("buffer record needs a BufferEndpoint")

    # -- matching ----------------------------------------------------------
    def matches(self, machine: str, path: str) -> bool:
        return fnmatch.fnmatchcase(machine, self.machine) and fnmatch.fnmatchcase(
            path, self.path
        )

    def specificity(self) -> tuple[int, int]:
        """Higher sorts first: exact beats glob, machine beats path."""

        def score(pattern: str) -> int:
            return 0 if any(c in pattern for c in "*?[") else 1

        return (score(self.machine), score(self.path))

    # -- (de)serialisation for the wire ------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["mode"] = self.mode.value
        if self.fallback is not None:
            d["fallback"] = self.fallback.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "GnsRecord":
        d = dict(d)
        buf = d.get("buffer")
        if isinstance(buf, dict):
            d["buffer"] = BufferEndpoint(**buf)
        fb = d.get("fallback")
        if isinstance(fb, dict):
            d["fallback"] = cls.from_dict(fb)
        d["mode"] = IOMode.parse(d["mode"])
        return cls(**d)
