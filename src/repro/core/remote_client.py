"""Remote File Client: proxy access and copy-in/copy-out.

Section 3.1 describes the two remote strategies the FM can choose:

* **copy** — "the remote file can be copied to the local machine, and
  then local operations can be performed.  If the file is modified it
  can be copied back when it is CLOSED."  Implemented by
  :class:`CopyInOutFile`.
* **proxy** — "the FM can access the file on the remote machine using a
  proxy file server" (our GridFTP-like block server).  Implemented by
  :class:`RemoteProxyFile`, a file-like object that fetches blocks on
  demand, pipelines sequential reads through a background prefetcher,
  and coalesces small sequential writes into block-sized RPCs.
"""

from __future__ import annotations

import io
import os
import tempfile
from pathlib import Path
from typing import Optional

from .. import ioutil, obs
from ..ioutil import ReadIntoFromRead
from ..transport.gridftp import DEFAULT_BLOCK, GridFtpClient
from .remote_io import BlockCache, BlockPrefetcher, WriteCoalescer

__all__ = ["RemoteProxyFile", "CopyInOutFile", "RemoteFileClient"]

#: Prefetch window bounds: start at MIN once sequential access is
#: detected, double on every pipeline hit up to MAX.
MIN_PREFETCH_WINDOW = 2
MAX_PREFETCH_WINDOW = 16
#: RPC connections (— concurrent in-flight blocks) per prefetcher.
DEFAULT_PREFETCH_STREAMS = 4


class RemoteProxyFile(ReadIntoFromRead, io.RawIOBase):
    """File-like proxy over a remote file, block at a time.

    Reads fetch ``block_size``-aligned blocks through a shared
    :class:`~repro.core.remote_io.BlockCache`.  Once two consecutive
    blocks have been read (sequential access detected) a
    :class:`~repro.core.remote_io.BlockPrefetcher` keeps an adaptive
    window of upcoming blocks in flight on ``prefetch_streams``
    dedicated RPC connections, so a sequential legacy read loop never
    stalls on a round trip.  Writes
    are coalesced write-behind into block-sized ``put_block`` RPCs,
    flushed on seek/flush/close (and before any overlapping read).

    Observable counters: ``rpc_reads`` (demand RPCs this handle
    issued), ``prefetch_hits`` (reads served by the pipeline) and
    ``prefetch_wasted`` (prefetched blocks never consumed).
    """

    def __init__(
        self,
        client: GridFtpClient,
        path: str,
        writable: bool = False,
        block_size: int = DEFAULT_BLOCK,
        cache_blocks: int = 8,
        cache: Optional[BlockCache] = None,
        prefetch: bool = True,
        max_prefetch_window: int = MAX_PREFETCH_WINDOW,
        prefetch_streams: int = DEFAULT_PREFETCH_STREAMS,
    ):
        super().__init__()
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self._client = client
        self._path = path
        self._writable = writable
        self._block_size = block_size
        self._pos = 0
        self._cache = cache if cache is not None else BlockCache(max(1, cache_blocks))
        self._size_cache: Optional[int] = None
        self.rpc_reads = 0  # demand RPCs issued by this handle
        self.prefetch_hits = 0
        # -- pipeline state --
        self._prefetch_enabled = prefetch
        self._prefetcher: Optional[BlockPrefetcher] = None
        self._prefetch_channels: list = []
        self._prefetch_streams = max(1, prefetch_streams)
        self._max_window = max(MIN_PREFETCH_WINDOW, max_prefetch_window)
        self._window = MIN_PREFETCH_WINDOW
        self._last_block: Optional[int] = None
        self._streak = 0
        self._coalescer = WriteCoalescer(self._flush_run, block_size) if writable else None

    # -- capabilities ----------------------------------------------------------
    def readable(self) -> bool:
        return True

    def writable(self) -> bool:
        return self._writable

    def seekable(self) -> bool:
        return True

    @property
    def prefetch_wasted(self) -> int:
        """Prefetched blocks (across the shared cache) never consumed."""
        return self._cache.prefetch_wasted

    @property
    def put_rpcs(self) -> int:
        return self._coalescer.flushes if self._coalescer is not None else 0

    # -- geometry ----------------------------------------------------------
    def _size(self, refresh: bool = False) -> int:
        if self._size_cache is None or refresh:
            self._size_cache = self._client.size(self._path)
        return self._size_cache

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        self._flush_writes()
        if whence == os.SEEK_SET:
            new_pos = offset
        elif whence == os.SEEK_CUR:
            new_pos = self._pos + offset
        elif whence == os.SEEK_END:
            new_pos = self._size(refresh=True) + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if new_pos < 0:
            raise ValueError("negative seek position")
        if new_pos // self._block_size != self._pos // self._block_size:
            # Jumping out of the current block breaks the sequential
            # run: shrink the window and drop queued read-ahead.
            self._streak = 0
            self._window = MIN_PREFETCH_WINDOW
            if self._prefetcher is not None:
                self._prefetcher.cancel_queued()
        self._pos = new_pos
        return self._pos

    def tell(self) -> int:
        return self._pos

    # -- pipeline ----------------------------------------------------------
    def _ensure_prefetcher(self) -> BlockPrefetcher:
        if self._prefetcher is None:

            def bind(channel):
                def fetch(block_no: int) -> bytes:
                    return self._client.read_block_via(
                        channel, self._path, block_no * self._block_size, self._block_size
                    )

                return fetch

            fetches = []
            for _ in range(self._prefetch_streams):
                channel = self._client.open_channel()
                self._prefetch_channels.append(channel)
                fetches.append(bind(channel))
            self._prefetcher = BlockPrefetcher(
                self._path, fetches, self._cache, name=f"fm-prefetch:{self._path}"
            )
        return self._prefetcher

    def _note_sequential(self, block_no: int, served_by_pipeline: bool) -> None:
        """Update the access-pattern detector and top up the window."""
        if self._last_block is not None and block_no == self._last_block + 1:
            self._streak += 1
        elif self._last_block is None or block_no != self._last_block:
            self._streak = 1
        self._last_block = block_no
        if not self._prefetch_enabled or self._streak < 2:
            return
        if served_by_pipeline:
            self._window = min(self._window * 2, self._max_window)
        prefetcher = self._ensure_prefetcher()
        try:
            nblocks = -(-self._size() // self._block_size)
        except Exception:
            nblocks = None
        want = []
        for ahead in range(1, self._window + 1):
            nxt = block_no + ahead
            if nblocks is not None and nxt >= nblocks:
                break
            want.append(nxt)
        if want:
            prefetcher.schedule(want)

    # -- reads -----------------------------------------------------------
    def _fetch_block(self, block_no: int) -> bytes:
        data, pipelined = self._cache.fetch(self._path, block_no)
        if data is not None:
            if pipelined:
                self.prefetch_hits += 1
            self._note_sequential(block_no, served_by_pipeline=pipelined)
            return data
        if self._prefetcher is not None and self._prefetcher.claim(block_no, timeout=30.0):
            data, _ = self._cache.fetch(self._path, block_no)
            if data is not None:
                self.prefetch_hits += 1
                self._note_sequential(block_no, served_by_pipeline=True)
                return data
        data = self._client.read_block(
            self._path, block_no * self._block_size, self._block_size
        )
        self.rpc_reads += 1
        self._cache.put(self._path, block_no, data, prefetched=False)
        self._note_sequential(block_no, served_by_pipeline=False)
        return data

    def read(self, size: int = -1) -> bytes:  # type: ignore[override]
        self._flush_writes()
        if size is None or size < 0:
            size = max(0, self._size(refresh=True) - self._pos)
        out = bytearray()
        while size > 0:
            block_no, inner = divmod(self._pos, self._block_size)
            block = self._fetch_block(block_no)
            if inner >= len(block):
                break  # EOF
            take = min(size, len(block) - inner)
            out += block[inner : inner + take]
            self._pos += take
            size -= take
            if len(block) < self._block_size and inner + take >= len(block):
                break  # short block == end of file
        return bytes(out)

    # -- writes -----------------------------------------------------------
    def _flush_run(self, offset: int, data: bytes) -> None:
        """Coalescer sink: one ``put_block`` RPC plus cache invalidation."""
        self._client.write_block(self._path, offset, data)
        first = offset // self._block_size
        last = (offset + len(data) - 1) // self._block_size
        self._cache.invalidate(self._path, first, last)
        if self._prefetcher is not None:
            self._prefetcher.invalidate(first, last)
        self._size_cache = None

    def _flush_writes(self) -> None:
        if self._coalescer is not None:
            self._coalescer.flush()

    def write(self, data) -> int:  # type: ignore[override]
        if not self._writable:
            raise io.UnsupportedOperation("file not open for writing")
        data = bytes(data)
        if data:
            assert self._coalescer is not None
            # Invalidate eagerly so a prefetched copy of the old bytes
            # can't be served between this write and its flush.
            first = self._pos // self._block_size
            last = (self._pos + len(data) - 1) // self._block_size
            self._cache.invalidate(self._path, first, last)
            if self._prefetcher is not None:
                self._prefetcher.invalidate(first, last)
            self._coalescer.write(self._pos, data)
            self._pos += len(data)
            self._size_cache = None
        return len(data)

    def flush(self) -> None:  # type: ignore[override]
        self._flush_writes()
        super().flush()

    def close(self) -> None:
        if self.closed:
            return
        try:
            self._flush_writes()
        finally:
            if self._prefetcher is not None:
                self._prefetcher.close()
                self._prefetcher = None
            for channel in self._prefetch_channels:
                channel.close()
            self._prefetch_channels.clear()
            super().close()


class CopyInOutFile(ReadIntoFromRead, io.RawIOBase):
    """Whole-file copy-in on open, copy-out on close (if modified).

    With ``verify=True`` the local copy's SHA-256 is compared against
    the server's after the fetch (end-to-end integrity over however
    many blocks/streams the transfer used).
    """

    def __init__(
        self,
        client: GridFtpClient,
        remote_path: str,
        mode: str,
        scratch_dir: Optional[Path] = None,
        verify: bool = False,
    ):
        super().__init__()
        self._client = client
        self._remote_path = remote_path
        self._verify = verify
        core = mode.replace("b", "").replace("t", "")
        self._reading = "r" in core or "+" in core
        self._writing = any(f in core for f in ("w", "a")) or "+" in core
        self._dirty = False
        if scratch_dir is not None:
            Path(scratch_dir).mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix="fm-copy-", dir=str(scratch_dir) if scratch_dir else None
        )
        os.close(fd)
        self._local_path = Path(tmp)
        if core in ("r", "r+", "a", "a+"):
            exists = client.exists(remote_path)
            if not exists:
                if core.startswith("a"):
                    # POSIX append creates a missing file; the copy-out
                    # on close materialises it remotely.
                    self._dirty = True
                else:
                    self._local_path.unlink(missing_ok=True)
                    raise FileNotFoundError(remote_path)
            else:
                client.fetch_file(remote_path, self._local_path)
                if verify:
                    self._verified_fetch()
        self._fh = open(self._local_path, self._local_mode(core))
        if core.startswith("a"):
            self._fh.seek(0, os.SEEK_END)

    #: Whole-file re-fetches attempted when a verified copy-in mismatches.
    _VERIFY_REFETCHES = 2

    def _verified_fetch(self) -> None:
        """Check the copy-in against the server; re-fetch on mismatch.

        The whole-file ``checksum`` op is the end of the integrity
        chain: it catches corruption the per-frame wire CRC cannot see
        (bit rot on disk, a bad block spliced in by a resumed
        transfer).  A mismatch discards the local copy and re-fetches
        from scratch — transient corruption heals; persistent mismatch
        (the remote file really changed under us, or the link corrupts
        every pass) raises after ``_VERIFY_REFETCHES`` re-fetches.
        """
        last_error: Optional[IOError] = None
        for attempt in range(1 + self._VERIFY_REFETCHES):
            try:
                self._verify_against_remote()
                return
            except IOError as exc:
                last_error = exc
                ioutil.count_integrity_error("copyin", "refetch")
                obs.event(
                    "copyin.refetch",
                    path=self._remote_path,
                    attempt=attempt + 1,
                )
                if attempt < self._VERIFY_REFETCHES:
                    self._client.fetch_file(self._remote_path, self._local_path)
        self._local_path.unlink(missing_ok=True)
        assert last_error is not None
        raise last_error

    def _verify_against_remote(self) -> None:
        local = ioutil.sha256_file(self._local_path)
        remote = self._client.checksum(self._remote_path)
        if local != remote:
            raise IOError(
                f"copy-in of {self._remote_path!r} failed checksum verification "
                f"(local {local[:12]}…, remote {remote[:12]}…)"
            )

    @staticmethod
    def _local_mode(core: str) -> str:
        # The local scratch copy always allows read+write so seeks work.
        return {"r": "rb", "r+": "r+b", "w": "w+b", "w+": "w+b", "a": "r+b", "a+": "r+b"}[core]

    @property
    def local_path(self) -> Path:
        return self._local_path

    def readable(self) -> bool:
        return self._reading

    def writable(self) -> bool:
        return self._writing

    def seekable(self) -> bool:
        return True

    def read(self, size: int = -1) -> bytes:  # type: ignore[override]
        if not self._reading:
            raise io.UnsupportedOperation("file not open for reading")
        return self._fh.read(size)

    def write(self, data) -> int:  # type: ignore[override]
        if not self._writing:
            raise io.UnsupportedOperation("file not open for writing")
        n = self._fh.write(bytes(data))
        self._dirty = True
        return n

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        return self._fh.seek(offset, whence)

    def tell(self) -> int:
        return self._fh.tell()

    def close(self) -> None:
        if self.closed:
            return
        try:
            self._fh.flush()
            if self._dirty:
                self._client.store_file(self._local_path, self._remote_path)
        finally:
            self._fh.close()
            self._local_path.unlink(missing_ok=True)
            super().close()


class RemoteFileClient:
    """Factory choosing proxy vs copy for one remote server.

    All proxy files opened through one instance share one
    :class:`BlockCache`, so concurrent readers of the same remote file
    pipeline for each other instead of re-fetching.
    """

    def __init__(
        self,
        client: GridFtpClient,
        scratch_dir: Optional[Path] = None,
        cache_blocks: int = 64,
        prefetch: bool = True,
        prefetch_streams: int = DEFAULT_PREFETCH_STREAMS,
    ):
        self.client = client
        self.scratch_dir = scratch_dir
        self.prefetch = prefetch
        self.prefetch_streams = prefetch_streams
        self.block_cache = BlockCache(cache_blocks)

    def open_proxy(
        self,
        path: str,
        mode: str = "r",
        block_size: int = DEFAULT_BLOCK,
        prefetch: Optional[bool] = None,
    ) -> RemoteProxyFile:
        core = mode.replace("b", "").replace("t", "")
        writable = any(f in core for f in ("w", "a", "+"))
        exists = self.client.exists(path)
        if core in ("r", "r+") and not exists:
            raise FileNotFoundError(path)
        if core in ("w", "w+"):
            self.client.write_block(path, 0, b"", truncate=True)
            self.block_cache.invalidate_path(path)
        if core.startswith("a") and not exists:
            # POSIX append creates the file rather than failing.
            self.client.write_block(path, 0, b"")
        f = RemoteProxyFile(
            self.client,
            path,
            writable=writable,
            block_size=block_size,
            cache=self.block_cache,
            prefetch=self.prefetch if prefetch is None else prefetch,
            prefetch_streams=self.prefetch_streams,
        )
        if core.startswith("a"):
            f.seek(0, os.SEEK_END)
        return f

    def open_copy(self, path: str, mode: str = "r", verify: bool = False) -> CopyInOutFile:
        return CopyInOutFile(
            self.client, path, mode, scratch_dir=self.scratch_dir, verify=verify
        )
