"""Local File Client: the pass-through path of the FM.

"The Local File Client simply passes the calls onto the local file
system, using the file name as resolved by the GNS." (Section 4)

When the FM runs inside a virtual-host sandbox (the usual test/example
configuration), paths are resolved inside that host's root directory;
otherwise they go straight to the real file system.
"""

from __future__ import annotations

import io
from pathlib import Path
from pathlib import Path

from ..transport.inmem import VirtualHost

__all__ = ["LocalFileClient"]

_BINARY_MODES = {"r", "w", "a", "r+", "w+", "a+"}


def _normalise_mode(mode: str) -> str:
    """Strip 'b'/'t' flags; FM handles bytes, text is layered above."""
    core = mode.replace("b", "").replace("t", "")
    if core not in _BINARY_MODES:
        raise ValueError(f"unsupported open mode {mode!r}")
    return core + "b"


class LocalFileClient:
    """Opens files on the local (possibly sandboxed) file system."""

    def __init__(self, host: Optional[VirtualHost] = None):
        self.host = host

    def resolve(self, path: str) -> Path:
        if self.host is not None:
            return self.host.resolve(path)
        return Path(path)

    def open(self, path: str, mode: str = "r") -> io.BufferedIOBase:
        """Open ``path`` in binary form regardless of the caller's mode."""
        real = self.resolve(path)
        binary_mode = _normalise_mode(mode)
        if any(flag in binary_mode for flag in ("w", "a")) or "+" in binary_mode:
            real.parent.mkdir(parents=True, exist_ok=True)
        return open(real, binary_mode)

    def exists(self, path: str) -> bool:
        return self.resolve(path).exists()

    def size(self, path: str) -> int:
        return self.resolve(path).stat().st_size

    def unlink(self, path: str) -> None:
        self.resolve(path).unlink()
