"""Unit + property tests for the framed TCP RPC layer."""

import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.tcp import (
    FrameError,
    RpcClient,
    RpcError,
    RpcServer,
    recv_frame,
    send_frame,
)


@pytest.fixture()
def echo_server():
    server = RpcServer()
    server.register("echo", lambda header, payload: ({"echo": header.get("msg")}, payload))

    def boom(header, payload):
        raise ValueError("deliberate")

    server.register("boom", boom)

    def typed_error(header, payload):
        raise RpcError("custom-kind", "custom message")

    server.register("typed", typed_error)
    with server:
        yield server


class TestFraming:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "x", "n": 3}, b"payload")
            header, payload = recv_frame(b)
            assert header["op"] == "x"
            assert header["n"] == 3
            assert payload == b"payload"
        finally:
            a.close()
            b.close()

    def test_empty_payload(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "x"})
            header, payload = recv_frame(b)
            assert payload == b""
            assert header["payload_len"] == 0
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        a.sendall(b"\x00\x00\x00\x10partial")
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)
        b.close()

    def test_garbage_header_raises(self):
        a, b = socket.socketpair()
        bad = b"not json!!"
        a.sendall(len(bad).to_bytes(4, "big") + bad)
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)
        b.close()

    @given(
        msg=st.text(max_size=200),
        payload=st.binary(max_size=5000),
        extra=st.integers(min_value=-(2**31), max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_header_payload_roundtrips(self, msg, payload, extra):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "t", "msg": msg, "extra": extra}, payload)
            header, got = recv_frame(b)
            assert header["msg"] == msg
            assert header["extra"] == extra
            assert got == payload
        finally:
            a.close()
            b.close()


class TestRpc:
    def test_echo(self, echo_server):
        with RpcClient(*echo_server.address) as client:
            reply, payload = client.call("echo", {"msg": "hi"}, b"data")
            assert reply["echo"] == "hi"
            assert payload == b"data"

    def test_unknown_op_is_rpc_error(self, echo_server):
        with RpcClient(*echo_server.address) as client:
            with pytest.raises(RpcError, match="no handler"):
                client.call("nope")

    def test_handler_exception_becomes_error_reply(self, echo_server):
        with RpcClient(*echo_server.address) as client:
            with pytest.raises(RpcError, match="deliberate"):
                client.call("boom")
            # Connection survives the error.
            reply, _ = client.call("echo", {"msg": "still-alive"})
            assert reply["echo"] == "still-alive"

    def test_typed_rpc_error_kind_preserved(self, echo_server):
        with RpcClient(*echo_server.address) as client:
            with pytest.raises(RpcError) as exc_info:
                client.call("typed")
            assert exc_info.value.kind == "custom-kind"

    def test_concurrent_clients(self, echo_server):
        errors = []

        def worker(n):
            try:
                with RpcClient(*echo_server.address) as client:
                    for i in range(20):
                        reply, _ = client.call("echo", {"msg": f"{n}:{i}"})
                        assert reply["echo"] == f"{n}:{i}"
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_large_payload(self, echo_server):
        blob = bytes(range(256)) * 4096  # 1 MiB
        with RpcClient(*echo_server.address) as client:
            _, got = client.call("echo", {"msg": "big"}, blob)
            assert got == blob

    def test_client_is_thread_safe(self, echo_server):
        client = RpcClient(*echo_server.address)
        errors = []

        def worker(n):
            try:
                for i in range(10):
                    reply, _ = client.call("echo", {"msg": f"{n}.{i}"})
                    assert reply["echo"] == f"{n}.{i}"
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        client.close()
        assert errors == []
