"""Network Weather Service (NWS) analogue.

The paper uses NWS-style dynamic bandwidth/latency information to pick
among replicas and to re-map read-only files mid-run.  This module
provides the same capability: per-path measurement histories fed by
probes (simulated or recorded), plus the classic NWS forecaster family
(last value, running mean, sliding median, adaptive mixture) that picks
whichever predictor has the lowest historical error.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, Optional, Tuple

__all__ = ["Measurement", "Forecast", "Forecaster", "NetworkWeatherService"]


@dataclass(frozen=True)
class Measurement:
    """One observation of a path's performance."""

    time: float
    bandwidth: float  # bytes/s
    latency: float    # one-way seconds

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be >= 0")


@dataclass(frozen=True)
class Forecast:
    """Predicted path performance with the winning predictor's name."""

    bandwidth: float
    latency: float
    method: str

    def transfer_time(self, nbytes: int) -> float:
        """Predicted time to move ``nbytes`` as one bulk transfer."""
        return self.latency + nbytes / self.bandwidth


def _mean(xs: Iterable[float]) -> float:
    xs = list(xs)
    return sum(xs) / len(xs)


def _median(xs: Iterable[float]) -> float:
    s = sorted(xs)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


class Forecaster:
    """Adaptive one-dimensional forecaster over a bounded history.

    Keeps a window of observations and, on every query, evaluates each
    candidate predictor by its mean absolute one-step-ahead error over
    the stored history, returning the best predictor's current output —
    the scheme NWS describes.
    """

    def __init__(self, window: int = 32):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._values: Deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @staticmethod
    def _predictors() -> Dict[str, Callable[[list[float]], float]]:
        return {
            "last": lambda h: h[-1],
            "mean": _mean,
            "median": _median,
            "ewma": lambda h: Forecaster._ewma(h, alpha=0.3),
        }

    @staticmethod
    def _ewma(history: list[float], alpha: float) -> float:
        acc = history[0]
        for v in history[1:]:
            acc = alpha * v + (1 - alpha) * acc
        return acc

    def forecast(self) -> Tuple[float, str]:
        """Return (prediction, method); raises if no data yet."""
        history = list(self._values)
        if not history:
            raise ValueError("no measurements recorded")
        if len(history) == 1:
            return history[0], "last"
        best_name, best_err = "last", math.inf
        preds = self._predictors()
        for name, fn in preds.items():
            err = 0.0
            n = 0
            for i in range(1, len(history)):
                err += abs(fn(history[:i]) - history[i])
                n += 1
            err /= n
            if err < best_err:
                best_name, best_err = name, err
        return preds[best_name](history), best_name


class NetworkWeatherService:
    """Measurement store + forecaster per (src, dst) path."""

    def __init__(self, window: int = 32):
        self.window = window
        self._bw: Dict[Tuple[str, str], Forecaster] = {}
        self._lat: Dict[Tuple[str, str], Forecaster] = {}
        self._last: Dict[Tuple[str, str], Measurement] = {}

    def record(self, src: str, dst: str, measurement: Measurement) -> None:
        key = (src, dst)
        self._bw.setdefault(key, Forecaster(self.window)).observe(measurement.bandwidth)
        self._lat.setdefault(key, Forecaster(self.window)).observe(measurement.latency)
        self._last[key] = measurement

    def has_data(self, src: str, dst: str) -> bool:
        return (src, dst) in self._last

    def last(self, src: str, dst: str) -> Measurement:
        try:
            return self._last[(src, dst)]
        except KeyError:
            raise KeyError(f"no measurements for {src!r}->{dst!r}") from None

    def forecast(self, src: str, dst: str) -> Forecast:
        key = (src, dst)
        if key not in self._bw:
            raise KeyError(f"no measurements for {src!r}->{dst!r}")
        bw, method = self._bw[key].forecast()
        lat, _ = self._lat[key].forecast()
        return Forecast(bandwidth=max(bw, 1.0), latency=max(lat, 0.0), method=method)

    def best_source(self, sources: Iterable[str], dst: str, nbytes: int) -> Optional[str]:
        """Pick the source predicted to deliver ``nbytes`` fastest.

        Sources without measurements are considered last (unknown paths
        rank below any measured path, mirroring NWS-driven selection
        with a conservative fallback).
        """
        best: Optional[str] = None
        best_time = math.inf
        unknown: list[str] = []
        for src in sources:
            if not self.has_data(src, dst):
                unknown.append(src)
                continue
            t = self.forecast(src, dst).transfer_time(nbytes)
            if t < best_time:
                best, best_time = src, t
        if best is not None:
            return best
        return unknown[0] if unknown else None
