"""Fault-tolerance tests for the Grid Buffer (abort/resume/recovery)."""

import threading
import time

import pytest

from repro.gridbuffer.cache import BufferCache
from repro.gridbuffer.client import GridBufferClient
from repro.gridbuffer.service import (
    GridBufferService,
    StreamClosed,
    StreamFailed,
)


@pytest.fixture()
def svc():
    return GridBufferService()


def setup_stream(svc, name="s", cache=None):
    svc.create_stream(name, cache=cache)
    svc.register_reader(name, "r")


class TestAbort:
    def test_waiting_reader_unblocked_with_error(self, svc):
        setup_stream(svc)
        result = {}

        def reader():
            try:
                svc.read("s", "r", 0, 10, timeout=5)
            except StreamFailed as exc:
                result["error"] = str(exc)

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        svc.abort_writer("s", "producer crashed")
        t.join(timeout=5)
        assert "producer crashed" in result["error"]

    def test_write_after_abort_raises(self, svc):
        setup_stream(svc)
        svc.abort_writer("s")
        with pytest.raises(StreamFailed):
            svc.write("s", 0, b"x")

    def test_read_after_abort_raises_even_with_data(self, svc):
        setup_stream(svc)
        svc.write("s", 0, b"partial")
        svc.abort_writer("s")
        with pytest.raises(StreamFailed):
            svc.read("s", "r", 0, 100)


class TestResume:
    def test_resume_returns_high_water(self, svc):
        setup_stream(svc)
        svc.write("s", 0, b"x" * 100)
        svc.write("s", 100, b"y" * 50)
        svc.abort_writer("s", "transient")
        offset = svc.resume_writer("s")
        assert offset == 150

    def test_resume_of_completed_stream_rejected(self, svc):
        setup_stream(svc)
        svc.write("s", 0, b"done")
        svc.close_writer("s")
        with pytest.raises(StreamClosed):
            svc.resume_writer("s")

    def test_writer_restart_end_to_end(self, svc, tmp_path):
        """A writer dies mid-stream and a replacement finishes the job;
        the reader sees one seamless byte sequence."""
        cache = BufferCache(tmp_path / "s.cache")
        setup_stream(svc, cache=cache)
        payload = bytes(i % 256 for i in range(10_000))

        # First writer delivers 4 KB then "crashes".
        svc.write("s", 0, payload[:4096])
        svc.abort_writer("s", "oom-killed")

        # Replacement writer resumes exactly at the high-water mark.
        offset = svc.resume_writer("s")
        assert offset == 4096
        svc.write("s", offset, payload[offset:])
        svc.close_writer("s")

        received = bytearray()
        pos = 0
        while True:
            chunk = svc.read("s", "r", pos, 1024, timeout=5)
            if not chunk:
                break
            received.extend(chunk)
            pos += len(chunk)
        assert bytes(received) == payload

    def test_high_water_with_gap_reports_contiguous_prefix(self, svc):
        setup_stream(svc)
        svc.write("s", 0, b"x" * 10)
        svc.write("s", 20, b"y" * 5)  # gap at [10, 20)
        assert svc.high_water("s") == 10


class TestFaultsOverTcp:
    def test_abort_resume_via_client(self, buffer_server):
        client = GridBufferClient(*buffer_server.address)
        client.create_stream("net", cache=True)
        client.register_reader("net", "r")
        client.write("net", 0, b"a" * 1000)
        client.abort_writer("net", "link flap")
        assert client.resume_writer("net") == 1000
        client.write("net", 1000, b"b" * 1000)
        client.close_writer("net")
        assert client.high_water("net") == 2000
        data = client.read("net", "r", 0, 2000, timeout=5)
        assert data == b"a" * 1000 + b"b" * 1000
        client.close()

    def test_remote_reader_sees_failure(self, buffer_server):
        client = GridBufferClient(*buffer_server.address)
        client.create_stream("doomed")
        client.register_reader("doomed", "r")
        result = {}

        def reader():
            try:
                client_r = GridBufferClient(*buffer_server.address)
                client_r.read("doomed", "r", 0, 10, timeout=5)
                client_r.close()
            except Exception as exc:  # noqa: BLE001
                result["error"] = str(exc)

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        client.abort_writer("doomed", "fatal")
        t.join(timeout=10)
        assert "fatal" in result.get("error", "")
        client.close()
