"""GNS control-plane benchmark: resolve under watch load, wake latency,
and the live-migration pause.

Three numbers the control plane has to defend:

* **Resolve throughput under parked watchers.**  A watcher costs the
  server a parked coroutine, not a thread — so ~1k live watchers
  (pipelined over a handful of ``AsyncRpcClient`` connections) must not
  crater the OPEN path.  Full mode asserts resolve throughput with the
  watcher fleet parked stays within 2x of the unwatched baseline.
* **Watch wake latency.**  Commit-to-wake p50/p99 for a parked
  ``gns.watch`` — the push half of watch-driven remapping.  Full mode
  asserts p50 stays under 50 ms (it is a condition-variable wake plus
  one RPC round trip; typical is single-digit ms).
* **Migration pause.**  Wall time of the one ``read()`` that carries a
  COPY→BUFFER live migration (quiesce, reopen, seek, resume) versus an
  ordinary block read.  The budget from the issue: the stream stalls
  for less than the cost of two ordinary blocks — enforced against a
  floor of 250 ms so a fast local baseline does not make the bar
  meaninglessly strict.

``--smoke`` (the CI mode) scales everything down and only asserts
correctness.  Emits ``BENCH_gns.json`` at the repo root.
"""

import argparse
import asyncio
import json
import random
import tempfile
import threading
import time
from pathlib import Path

from repro.core.buffer_client import GridBufferClientPool
from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.gns import (
    BufferEndpoint,
    GnsClient,
    GnsRecord,
    GnsServer,
    IOMode,
    LocalGnsClient,
    NameService,
)
from repro.gridbuffer.server import GridBufferServer
from repro.transport.aio import AsyncRpcClient
from repro.transport.gridftp import GridFtpServer
from repro.transport.inmem import HostRegistry

SEED = 20260809
FULL_WATCHERS = 1000
SMOKE_WATCHERS = 50
PARK_CONNECTIONS = 8          # sockets carrying the pipelined watch fleet
FULL_RESOLVES = 2000
SMOKE_RESOLVES = 200
FULL_WAKES = 100
SMOKE_WAKES = 10
FULL_MIGRATIONS = 8
SMOKE_MIGRATIONS = 2
FILE_BYTES = 1 * 1024 * 1024
CHUNK = 64 * 1024
MAX_THROUGHPUT_DROP = 2.0     # resolve may slow at most 2x under watchers
MAX_WAKE_P50_MS = 50.0
PAUSE_FLOOR_MS = 250.0        # migration budget floor (see module docstring)

_REPO_ROOT = Path(__file__).resolve().parents[1]


def _percentile(samples, q):
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


# ---------------------------------------------------------------------------
# A fleet of parked watchers, pipelined over a few async connections
# ---------------------------------------------------------------------------
class WatcherPark:
    """N long-poll ``gns.watch`` calls parked server-side at once."""

    def __init__(self, address, count, from_revision):
        self._address = address
        self._count = count
        self._from_revision = from_revision
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="bench-gns-park", daemon=True
        )
        self._clients = []
        self._tasks = []

    def park(self):
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self._park(), self._loop).result(timeout=60)

    async def _park(self):
        self._clients = [
            AsyncRpcClient(*self._address, timeout=60.0) for _ in range(PARK_CONNECTIONS)
        ]
        loop = asyncio.get_running_loop()
        for i in range(self._count):
            client = self._clients[i % len(self._clients)]
            self._tasks.append(loop.create_task(self._watch_forever(client)))
        # Let the fleet actually reach the server and park.
        await asyncio.sleep(0.5)

    async def _watch_forever(self, client):
        while True:
            try:
                await client.call(
                    "gns.watch",
                    {"from_revision": self._from_revision, "timeout": 20.0},
                )
            except (OSError, asyncio.CancelledError, RuntimeError):
                return

    def stop(self):
        async def _teardown():
            for task in self._tasks:
                task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)
            for client in self._clients:
                await client.close()

        asyncio.run_coroutine_threadsafe(_teardown(), self._loop).result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)


def _resolve_rate(client, calls):
    t0 = time.perf_counter()
    for _ in range(calls):
        client.resolve("compute", "/bench/file.dat")
    return calls / (time.perf_counter() - t0)


def bench_resolve_under_watchers(smoke):
    watchers = SMOKE_WATCHERS if smoke else FULL_WATCHERS
    calls = SMOKE_RESOLVES if smoke else FULL_RESOLVES
    service = NameService()
    server = GnsServer(service).start()
    try:
        revision = service.txn(
            [("add", GnsRecord(machine="compute", path="/bench/*", mode=IOMode.LOCAL))]
        )
        client = GnsClient(*server.address)
        baseline = _resolve_rate(client, calls)
        park = WatcherPark(server.address, watchers, from_revision=revision)
        park.park()
        try:
            under_load = _resolve_rate(client, calls)
        finally:
            park.stop()
        client.close()
    finally:
        server.stop()
    return {
        "watchers": watchers,
        "resolve_calls": calls,
        "baseline_resolves_per_s": round(baseline, 1),
        "parked_resolves_per_s": round(under_load, 1),
        "slowdown": round(baseline / under_load, 3) if under_load else None,
    }


def bench_wake_latency(smoke):
    wakes = SMOKE_WAKES if smoke else FULL_WAKES
    service = NameService()
    server = GnsServer(service).start()
    latencies = []
    try:
        watcher = GnsClient(*server.address)
        writer = GnsClient(*server.address)
        revision = 0
        for i in range(wakes):
            woke = {}
            parked = threading.Event()

            def wait(start_rev=revision):
                parked.set()
                batch = watcher.watch(from_revision=start_rev, timeout=10.0)
                woke["t"] = time.perf_counter()
                woke["revision"] = batch.revision

            t = threading.Thread(target=wait)
            t.start()
            parked.wait()
            time.sleep(0.005)  # let the watch RPC reach the server and park
            t0 = time.perf_counter()
            revision = writer.txn(
                [("add", GnsRecord(machine="w", path=f"/wake/{i}", mode=IOMode.LOCAL))],
                token=f"wake-{i}",
            )
            t.join(timeout=10)
            assert woke.get("revision") == revision, "watcher missed its wake"
            latencies.append((woke["t"] - t0) * 1e3)
        watcher.close()
        writer.close()
    finally:
        server.stop()
    return {
        "wakes": wakes,
        "p50_ms": round(_percentile(latencies, 0.50), 3),
        "p99_ms": round(_percentile(latencies, 0.99), 3),
        "max_ms": round(max(latencies), 3),
    }


def bench_migration_pause(smoke):
    """COPY→BUFFER live migration: how long does the stream stall?"""
    migrations = SMOKE_MIGRATIONS if smoke else FULL_MIGRATIONS
    payload = random.Random(SEED).randbytes(FILE_BYTES)
    pauses, blocks = [], []
    with tempfile.TemporaryDirectory(prefix="bench-gns-") as tmp:
        tmp_path = Path(tmp)
        hosts = HostRegistry(tmp_path / "hosts")
        hosts.add_host("compute")
        hosts.add_host("store")
        src = hosts.host("store").resolve("/src/file.bin")
        src.parent.mkdir(parents=True, exist_ok=True)
        src.write_bytes(payload)
        ftp = GridFtpServer(hosts.host("store").root).start()
        buffer_server = GridBufferServer(cache_dir=tmp_path / "cache").start()
        pool = GridBufferClientPool("store")
        service = NameService(locate_buffer_server=lambda m: buffer_server.address)
        gns = LocalGnsClient(service)
        ctx = GridContext(
            machine="compute",
            gns=gns,
            hosts=hosts,
            gridftp={"store": ftp.address},
            buffer_locator=lambda m: buffer_server.address,
            scratch_dir=tmp_path / "scratch",
            prefetch=False,
            live_remap=True,
            watch_budget=0.05,
        )
        try:
            for i in range(migrations):
                stream = f"bench-mig-{i}"
                endpoint = BufferEndpoint(stream=stream, n_readers=2, cache=True)
                w = pool.open_writer(endpoint, buffer_server.address)
                w.write(payload)
                w.close()
                path = f"/job/mig-{i}.dat"
                service.txn(
                    [("add", GnsRecord(
                        machine="compute", path=path, mode=IOMode.COPY,
                        remote_host="store", remote_path="/src/file.bin",
                    ))]
                )
                with FileMultiplexer(ctx) as fm:
                    handle = fm.open(path, "rb")
                    got = bytearray()
                    while len(got) < FILE_BYTES // 2:
                        got += handle.read(CHUNK)
                    service.txn(
                        [
                            ("remove", "compute", path),
                            ("add", GnsRecord(
                                machine="compute", path=path, mode=IOMode.BUFFER,
                                buffer=BufferEndpoint(
                                    stream=stream, host=buffer_server.address[0],
                                    port=buffer_server.address[1], n_readers=2, cache=True,
                                ),
                            )),
                        ]
                    )
                    migrated_at = None
                    while True:
                        before = handle.stats.remaps
                        t0 = time.perf_counter()
                        chunk = handle.read(CHUNK)
                        elapsed_ms = (time.perf_counter() - t0) * 1e3
                        if not chunk:
                            break
                        got += chunk
                        if handle.stats.remaps > before:
                            pauses.append(elapsed_ms)
                            migrated_at = len(got)
                        else:
                            blocks.append(elapsed_ms)
                        if migrated_at is None:
                            time.sleep(0.01)  # give the watcher a beat
                    handle.close()
                    assert bytes(got) == payload, "live migration corrupted the stream"
                    assert handle.stats.remaps >= 1, "stream never migrated"
                    assert handle.record.mode is IOMode.BUFFER
        finally:
            pool.close()
            ftp.stop()
            buffer_server.stop()
    return {
        "migrations": migrations,
        "file_bytes": FILE_BYTES,
        "chunk": CHUNK,
        "block_read_p50_ms": round(_percentile(blocks, 0.50), 3),
        "pause_p50_ms": round(_percentile(pauses, 0.50), 3),
        "pause_p99_ms": round(_percentile(pauses, 0.99), 3),
        "pause_max_ms": round(max(pauses), 3),
    }


def run(smoke=False, write_json=True):
    resolve = bench_resolve_under_watchers(smoke)
    print(
        f"resolve: {resolve['baseline_resolves_per_s']:.0f}/s bare, "
        f"{resolve['parked_resolves_per_s']:.0f}/s under {resolve['watchers']} "
        f"parked watchers ({resolve['slowdown']:.2f}x slowdown)"
    )
    wake = bench_wake_latency(smoke)
    print(
        f"watch wake: p50 {wake['p50_ms']:.2f} ms, p99 {wake['p99_ms']:.2f} ms "
        f"over {wake['wakes']} commits"
    )
    pause = bench_migration_pause(smoke)
    print(
        f"migration pause: p50 {pause['pause_p50_ms']:.2f} ms, "
        f"p99 {pause['pause_p99_ms']:.2f} ms "
        f"(ordinary block read p50 {pause['block_read_p50_ms']:.3f} ms)"
    )

    out = {"bench": "gns_control_plane", "smoke": smoke,
           "resolve": resolve, "wake": wake, "migration": pause}

    if not smoke:
        assert resolve["slowdown"] <= MAX_THROUGHPUT_DROP, (
            f"{resolve['watchers']} parked watchers slowed resolve "
            f"{resolve['slowdown']:.2f}x (budget {MAX_THROUGHPUT_DROP}x)"
        )
        assert wake["p50_ms"] <= MAX_WAKE_P50_MS, (
            f"watch wake p50 {wake['p50_ms']:.2f} ms over budget {MAX_WAKE_P50_MS} ms"
        )
        budget_ms = max(PAUSE_FLOOR_MS, 2 * pause["block_read_p50_ms"])
        out["pause_budget_ms"] = round(budget_ms, 3)
        assert pause["pause_p99_ms"] <= budget_ms, (
            f"migration pause p99 {pause['pause_p99_ms']:.2f} ms over "
            f"budget {budget_ms:.2f} ms"
        )

    if write_json:
        path = _REPO_ROOT / "BENCH_gns.json"
        path.write_text(json.dumps(out, indent=2) + "\n")
        print(f"wrote {path}")
    return out


def test_gns_bench():
    run(smoke=False)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: small fleet, correctness only")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing BENCH_gns.json")
    args = parser.parse_args()
    run(smoke=args.smoke, write_json=not args.no_json)


if __name__ == "__main__":
    main()
