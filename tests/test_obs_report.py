"""Tests for the trace report renderer (repro.obs.report)."""

import json

from repro import obs
from repro.obs.report import (
    load_trace,
    main,
    render_counters,
    render_link_table,
    render_report,
    render_timeline,
)


def _span(name, start, end, **attrs):
    return {
        "type": "span",
        "name": name,
        "trace": "t1",
        "span": name,
        "parent": None,
        "start": start,
        "end": end,
        "dur": end - start,
        "thread": "MainThread",
        "attrs": attrs,
    }


SNAPSHOT = {
    "gridftp_rpc_seconds": {
        "type": "histogram",
        "series": [
            {
                "labels": {"peer": "alpha:5000", "op": "get_block"},
                "value": {"count": 10, "sum": 0.5, "buckets": {}},
            },
        ],
    },
    "gridftp_rpc_bytes_total": {
        "type": "counter",
        "series": [
            {"labels": {"peer": "alpha:5000", "op": "get_block"}, "value": 81920},
        ],
    },
    "fm_ops_total": {
        "type": "counter",
        "series": [{"labels": {"op": "read", "mode": "local"}, "value": 7}],
    },
}


class TestTimeline:
    def test_bars_scale_to_wallclock(self):
        records = [
            _span("workflow", 0.0, 10.0, workflow="climate"),
            _span("task", 0.0, 5.0, task="ccam"),
            _span("task", 2.0, 8.0, task="cc2lam"),
            _span("task", 6.0, 10.0, task="darlam"),
        ]
        out = render_timeline(records, width=40)
        lines = out.splitlines()
        assert "workflow climate" in lines[0]
        assert [line.split()[0] for line in lines[1:]] == ["ccam", "cc2lam", "darlam"]
        ccam, _, darlam = lines[1:]
        # ccam starts at the left edge; darlam's bar starts past midline.
        assert ccam.split("|")[1].startswith("#")
        assert darlam.split("|")[1].startswith(" " * 20)

    def test_unfinished_spans_ignored(self):
        records = [_span("task", 0.0, 1.0, task="hung")]
        records[0]["end"] = None
        records[0]["dur"] = None
        assert "(no finished spans in trace)" in render_timeline(records)

    def test_falls_back_to_any_span_kind(self):
        out = render_timeline([_span("fetch", 0.0, 1.0)])
        assert "fetch" in out


class TestLinkTable:
    def test_peer_row_from_rpc_series(self):
        out = render_link_table(SNAPSHOT)
        row = [line for line in out.splitlines() if line.startswith("alpha:5000")][0]
        cols = row.split()
        assert cols[1] == "10"       # rpcs
        assert cols[2] == "81920"    # bytes
        assert float(cols[3]) == 50.0  # avg ms = 0.5s / 10
        assert abs(float(cols[4]) - 81920 / 0.5 / (1 << 20)) < 0.01

    def test_no_snapshot(self):
        assert "no metrics snapshot" in render_link_table(None)

    def test_snapshot_without_rpc_series(self):
        assert "no gridftp_rpc_*" in render_link_table({"fm_ops_total": SNAPSHOT["fm_ops_total"]})


class TestCounters:
    def test_counter_lines(self):
        out = render_counters(SNAPSHOT)
        assert "fm_ops_total{op=read,mode=local} = 7" in out

    def test_limit_truncates(self):
        snap = {
            f"c{i}_total": {"type": "counter", "series": [{"labels": {}, "value": 1}]}
            for i in range(5)
        }
        out = render_counters(snap, limit=2)
        assert "... and 3 more" in out


class TestCli:
    def test_missing_trace_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_renders_trace_file(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        records = [
            _span("task", 0.0, 1.0, task="ccam"),
            {"type": "metrics", "time": 1.0, "snapshot": SNAPSHOT},
            "not a dict",
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\nbroken{json\n")
        assert load_trace(path) == records[:2]  # malformed lines skipped
        assert main([str(path), "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "Per-task timeline" in out
        assert "alpha:5000" in out
        assert "fm_ops_total" in out


class TestClimatePipelineTrace:
    def test_report_from_real_climate_run(self, tmp_path, capsys):
        """Acceptance: the report renders a per-task timeline from an
        actual climate-pipeline trace captured via the default tracer."""
        from repro.apps.climate.pipeline import climate_workflow
        from repro.workflow.runner import RealRunner
        from repro.workflow.scheduler import plan_workflow

        trace_path = tmp_path / "climate.jsonl"
        sink = obs.JsonLinesSink(trace_path)
        prior = obs.configure(sink)
        try:
            wf = climate_workflow()
            plan = plan_workflow(wf, {s: "m1" for s in ("ccam", "cc2lam", "darlam")})
            runner = RealRunner(
                plan,
                params={"nlon": 32, "nlat": 16, "nsteps": 4,
                        "lam_nx": 24, "lam_ny": 20, "lam_refine": 2},
                stage_timeout=120,
            )
            result = runner.run()
            assert result.ok, result.errors
            runner.deployment.stop()
            obs.write_metrics()
        finally:
            obs.configure(prior)
            sink.close()

        assert main([str(trace_path)]) == 0
        out = capsys.readouterr().out
        for task in ("ccam", "cc2lam", "darlam"):
            assert task in out, f"timeline missing task {task}"
        assert "Per-task timeline" in out
        assert "workflow climate" in out
        assert "Counters (non-zero)" in out

    def test_full_report_helper(self):
        records = [
            _span("task", 0.0, 2.0, task="ccam"),
            {"type": "metrics", "time": 2.0, "snapshot": SNAPSHOT},
        ]
        out = render_report(records)
        assert "Per-task timeline" in out
        assert "Per-peer link table" in out
        assert "Counters (non-zero)" in out
