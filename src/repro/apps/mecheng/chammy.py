"""CHAMMY: hole-shape boundary generator.

"CHAMMY takes a formula for a hole shape, depending on several
parameters, and generates points on the boundary of that hole."
(Section 5.2)

The shape family is a rounded superellipse in polar form,

    r(θ) = r0 · (|cos θ|^p + (b·|sin θ|)^p)^(-1/p)

with ``p = 2, b = 1`` giving a circle, larger ``p`` squarer holes, and
``b`` the aspect ratio — enough expressiveness for the paper's
hole-shape optimisation study.  Output is PROFILE_COORD.DAT: one
``x y`` pair per line (formatted ASCII, the heterogeneity-safe format
of Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HoleShape", "boundary_points", "run_chammy"]


@dataclass(frozen=True)
class HoleShape:
    """Parameters of one candidate hole shape."""

    r0: float = 1.0       # nominal radius
    power: float = 2.0    # superellipse exponent (2 = ellipse)
    aspect: float = 1.0   # b: y-axis scaling

    def __post_init__(self) -> None:
        if self.r0 <= 0:
            raise ValueError("r0 must be positive")
        if self.power < 1:
            raise ValueError("power must be >= 1")
        if self.aspect <= 0:
            raise ValueError("aspect must be positive")

    def radius(self, theta: np.ndarray) -> np.ndarray:
        """Polar radius of the hole boundary at angle(s) ``theta``."""
        c = np.abs(np.cos(theta)) ** self.power
        s = (self.aspect * np.abs(np.sin(theta))) ** self.power
        return self.r0 * (c + s) ** (-1.0 / self.power)


def boundary_points(shape: HoleShape, n_points: int = 96) -> np.ndarray:
    """(n, 2) array of boundary coordinates, counter-clockwise from +x."""
    if n_points < 8:
        raise ValueError("need at least 8 boundary points")
    theta = np.linspace(0.0, 2.0 * np.pi, n_points, endpoint=False)
    r = shape.radius(theta)
    return np.column_stack([r * np.cos(theta), r * np.sin(theta)])


def run_chammy(io, shape: HoleShape | None = None) -> None:
    """Stage entry point: write PROFILE_COORD.DAT through the FM."""
    if shape is None:
        shape = HoleShape(
            r0=float(io.param("hole_r0", 1.0)),
            power=float(io.param("hole_power", 2.0)),
            aspect=float(io.param("hole_aspect", 1.0)),
        )
    n = int(io.param("boundary_points", 96))
    pts = boundary_points(shape, n)
    with io.open("PROFILE_COORD.DAT", "w") as fh:
        fh.write(f"{len(pts)}\n")
        for x, y in pts:
            fh.write(f"{x:.9e} {y:.9e}\n")
