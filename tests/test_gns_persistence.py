"""Tests for GNS config persistence."""

import pytest

from repro.gns.persistence import dump_records, load_gns, load_records, save_gns
from repro.gns.records import BufferEndpoint, GnsRecord, IOMode
from repro.gns.server import NameService


def sample_records():
    return [
        GnsRecord(machine="m1", path="/wf/a", mode=IOMode.LOCAL, local_path="/real/a"),
        GnsRecord(
            machine="m2", path="/wf/a", mode=IOMode.COPY, remote_host="m1", remote_path="/wf/a"
        ),
        GnsRecord(
            machine="*",
            path="/wf/stream",
            mode=IOMode.BUFFER,
            buffer=BufferEndpoint(stream="wf:s", n_readers=2, placement="writer", cache=False),
        ),
        GnsRecord(
            machine="m3", path="/wf/ref", mode=IOMode.REMOTE_REPLICA, logical_name="lfn://r"
        ),
    ]


class TestRoundTrip:
    def test_dump_load_identity(self):
        records = sample_records()
        assert load_records(dump_records(records)) == records

    def test_dump_is_stable(self):
        records = sample_records()
        assert dump_records(records) == dump_records(records)

    def test_save_load_file(self, tmp_path):
        ns = NameService()
        ns.add_all(sample_records())
        path = tmp_path / "workflow.gns.json"
        save_gns(ns, path)
        loaded = load_gns(path)
        assert loaded.records() == ns.records()

    def test_load_into_existing_service(self, tmp_path):
        ns = NameService()
        ns.add(GnsRecord(machine="pre", path="/x", mode=IOMode.LOCAL))
        path = tmp_path / "cfg.json"
        path.write_text(dump_records(sample_records()))
        load_gns(path, ns)
        assert len(ns.records()) == 1 + len(sample_records())

    def test_loaded_service_resolves(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(dump_records(sample_records()))
        ns = load_gns(path)
        rec = ns.resolve("m2", "/wf/a")
        assert rec.mode is IOMode.COPY
        assert rec.remote_host == "m1"


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(ValueError, match="invalid GNS config JSON"):
            load_records("{not json")

    def test_missing_records_key(self):
        with pytest.raises(ValueError, match="'records'"):
            load_records("{}")

    def test_records_not_list(self):
        with pytest.raises(ValueError, match="must be a list"):
            load_records('{"records": 5}')

    def test_invalid_record_reports_index(self):
        bad = '{"records": [{"machine": "m", "path": "/f", "mode": "warp"}]}'
        with pytest.raises(ValueError, match="record #0"):
            load_records(bad)
