"""Replica selection, with dynamic mid-run re-mapping.

Section 3.1: "If a remote file is replicated, the FM needs to decide
which one to access...  if dynamic information such as the network
bandwidth and latency is available, then the most efficient pathway can
be chosen.  Further, if a file is opened in read-only mode, then the FM
can actually change the mapping dynamically during the execution,
allowing it to adapt to changing network conditions."

:class:`ReplicaSelector` combines the replica catalogue with the NWS:
it ranks replicas by forecast transfer time to the consuming machine,
falls back to static distance classes when no measurements exist, and
offers :meth:`maybe_remap` for read-only handles to switch sources when
the forecast for the current choice degrades past a hysteresis factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

from ..grid.nws import NetworkWeatherService
from ..grid.replica_catalog import Replica, ReplicaCatalog

__all__ = ["ReplicaChoice", "ReplicaSelector", "NoReplicaError"]


class NoReplicaError(LookupError):
    """The logical name has no registered replicas."""


@dataclass(frozen=True)
class ReplicaChoice:
    """A ranked replica with its predicted cost."""

    replica: Replica
    predicted_seconds: float
    method: str  # which forecaster / fallback produced the estimate


#: Static fallback cost when no NWS data exists: caller supplies a
#: function of (src_host, dst_host) -> seconds (e.g. derived from the
#: testbed topology), or we treat all unknown paths as equal.
StaticCost = Callable[[str, str], float]


class ReplicaSelector:
    """Ranks replicas by forecast transfer cost; proposes re-mappings.

    Combines the replica catalogue with NWS forecasts (or a static cost
    fallback) and applies hysteresis so transient measurements do not
    thrash a read-only handle between sources.
    """

    def __init__(
        self,
        catalog: ReplicaCatalog,
        nws: Optional[NetworkWeatherService] = None,
        static_cost: Optional[StaticCost] = None,
        hysteresis: float = 1.5,
    ):
        if hysteresis < 1.0:
            raise ValueError("hysteresis must be >= 1.0")
        self.catalog = catalog
        self.nws = nws
        self.static_cost = static_cost
        self.hysteresis = hysteresis

    # -- ranking ----------------------------------------------------------
    def _estimate(self, replica: Replica, dst: str, nbytes: int) -> Tuple[float, str]:
        if self.nws is not None and self.nws.has_data(replica.host, dst):
            fc = self.nws.forecast(replica.host, dst)
            return fc.transfer_time(nbytes), f"nws-{fc.method}"
        if self.static_cost is not None:
            return self.static_cost(replica.host, dst), "static"
        return math.inf, "unknown"

    def rank(
        self,
        logical_name: str,
        dst: str,
        nbytes: Optional[int] = None,
        exclude: Iterable[Tuple[str, str]] = (),
    ) -> List[ReplicaChoice]:
        """All replicas of ``logical_name``, cheapest first.

        Local replicas (same host as ``dst``) always rank first; ties
        and unknown paths keep registration order for determinism.
        ``exclude`` is a set of ``(host, path)`` keys to skip — failover
        uses it to never re-select a source that just died.
        """
        replicas = self.catalog.lookup(logical_name)
        if not replicas:
            raise NoReplicaError(logical_name)
        excluded = set(exclude)
        pool = [r for r in replicas if (r.host, r.path) not in excluded]
        if not pool:
            raise NoReplicaError(
                f"{logical_name}: all {len(replicas)} replicas excluded/failed"
            )
        size = nbytes if nbytes is not None else (pool[0].size or 0)
        choices = []
        for r in pool:
            if r.host == dst:
                choices.append(ReplicaChoice(r, 0.0, "local"))
            else:
                est, method = self._estimate(r, dst, size)
                choices.append(ReplicaChoice(r, est, method))
        return sorted(
            choices,
            key=lambda c: (c.predicted_seconds, replicas.index(c.replica)),
        )

    def best(
        self,
        logical_name: str,
        dst: str,
        nbytes: Optional[int] = None,
        exclude: Iterable[Tuple[str, str]] = (),
    ) -> ReplicaChoice:
        return self.rank(logical_name, dst, nbytes, exclude=exclude)[0]

    # -- dynamic re-mapping -------------------------------------------------
    def maybe_remap(
        self,
        logical_name: str,
        dst: str,
        current: Replica,
        nbytes: Optional[int] = None,
        exclude: Iterable[Tuple[str, str]] = (),
    ) -> Optional[ReplicaChoice]:
        """Suggest a better replica, or None to stay put.

        Only proposes a switch when the best alternative is at least
        ``hysteresis`` times cheaper than the current source's forecast,
        so transient NWS jitter does not thrash the mapping.
        """
        ranked = self.rank(logical_name, dst, nbytes, exclude=exclude)
        best = ranked[0]
        if best.replica.host == current.host and best.replica.path == current.path:
            return None
        current_cost, _ = self._estimate(current, dst, nbytes or (current.size or 0))
        if current_cost == math.inf and best.predicted_seconds < math.inf:
            return best
        if best.predicted_seconds * self.hysteresis <= current_cost:
            return best
        return None
