"""Pipelined remote-IO building blocks.

The paper's buffer/proxy modes win on low-latency links because blocks
are *pipelined* — the next block is already in flight while the
application consumes the current one.  This module supplies the three
mechanisms the FM's remote paths share to get that behaviour:

* :class:`BlockCache` — a thread-safe LRU of ``(path, block_no)``
  blocks, shared by every proxy file opened through one
  :class:`~repro.core.remote_client.RemoteFileClient`, with counters
  distinguishing demand hits from prefetch hits and wasted prefetches.
* :class:`BlockPrefetcher` — background threads that keep an adaptive
  window of sequential blocks in flight on their *own* RPC
  connections, so demand reads never queue behind read-ahead traffic.
* :class:`WriteCoalescer` — a write-behind buffer that merges small
  contiguous writes into block-sized flushes (one ``put_block`` RPC
  per block instead of one per legacy WRITE call).

None of these know about sockets directly: the prefetcher is handed a
``fetch`` callable bound to a dedicated channel, and the coalescer a
``flush`` callable, so the same machinery serves the GridFTP proxy
path and (for coalescing) the Grid Buffer writer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Iterable, Optional, Tuple

from .. import obs

__all__ = ["BlockCache", "BlockPrefetcher", "WriteCoalescer"]

BlockKey = Tuple[str, int]

# Registry twins of the per-instance counters below: the instance
# attributes stay (policy/benchmarks read them per cache), the registry
# series aggregate across every cache/prefetcher/coalescer in process.
_PREFETCH_HITS = obs.counter(
    "fm_prefetch_hits_total", "Reads served by a block the pipeline prefetched"
)
_PREFETCH_WASTED = obs.counter(
    "fm_prefetch_wasted_total", "Prefetched blocks discarded before any read used them"
)
_DEMAND_HITS = obs.counter(
    "fm_demand_hits_total", "Reads served by a previously demand-fetched cached block"
)
_PREFETCH_RPCS = obs.counter(
    "fm_prefetch_rpcs_total", "Block RPCs issued by background prefetch channels"
)
_WRITE_FLUSHES = obs.counter(
    "fm_write_flushes_total", "Block flushes issued by write-behind coalescers"
)
_WRITE_COALESCED = obs.counter(
    "fm_write_coalesced_total", "WRITE calls absorbed into a pending run without an RPC"
)
_BLOCKS_CACHED = obs.gauge(
    "fm_blocks_cached", "Blocks currently resident across FM block caches"
)


class _CacheEntry:
    __slots__ = ("data", "prefetched", "consumed")

    def __init__(self, data: bytes, prefetched: bool):
        self.data = data
        self.prefetched = prefetched
        self.consumed = False


class BlockCache:
    """Thread-safe LRU block cache keyed by ``(path, block_no)``.

    Shared between every proxy file of one remote client so concurrent
    readers of the same file benefit from each other's fetches.
    Counters:

    * ``prefetch_hits`` — reads served by a block a prefetcher loaded;
    * ``prefetch_wasted`` — prefetched blocks evicted or invalidated
      before any reader consumed them;
    * ``demand_hits`` — reads served by a previously demand-fetched block.
    """

    def __init__(self, capacity_blocks: int = 64):
        self._capacity = max(1, capacity_blocks)
        self._entries: "OrderedDict[BlockKey, _CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.prefetch_hits = 0
        self.prefetch_wasted = 0
        self.demand_hits = 0

    def get(self, path: str, block_no: int) -> Optional[bytes]:
        data, _ = self.fetch(path, block_no)
        return data

    def fetch(self, path: str, block_no: int) -> Tuple[Optional[bytes], bool]:
        """Like :meth:`get` but also reports pipeline credit.

        The second element is True when this lookup is the first consume
        of a prefetched block — i.e. the background pipeline, not a past
        demand fetch, paid for it.
        """
        with self._lock:
            entry = self._entries.get((path, block_no))
            if entry is None:
                return None, False
            self._entries.move_to_end((path, block_no))
            pipelined = entry.prefetched and not entry.consumed
            if pipelined:
                self.prefetch_hits += 1
                _PREFETCH_HITS.inc()
            elif not entry.prefetched:
                self.demand_hits += 1
                _DEMAND_HITS.inc()
            entry.consumed = True
            return entry.data, pipelined

    def put(self, path: str, block_no: int, data: bytes, prefetched: bool = False) -> None:
        with self._lock:
            if (path, block_no) not in self._entries:
                _BLOCKS_CACHED.inc()
            self._entries[(path, block_no)] = _CacheEntry(data, prefetched)
            self._entries.move_to_end((path, block_no))
            while len(self._entries) > self._capacity:
                _, evicted = self._entries.popitem(last=False)
                _BLOCKS_CACHED.dec()
                if evicted.prefetched and not evicted.consumed:
                    self.prefetch_wasted += 1
                    _PREFETCH_WASTED.inc()

    def contains(self, path: str, block_no: int) -> bool:
        with self._lock:
            return (path, block_no) in self._entries

    def invalidate(self, path: str, first_block: int, last_block: int) -> None:
        """Drop blocks ``first..last`` of ``path`` (a write dirtied them)."""
        with self._lock:
            for block_no in range(first_block, last_block + 1):
                entry = self._entries.pop((path, block_no), None)
                if entry is None:
                    continue
                _BLOCKS_CACHED.dec()
                if entry.prefetched and not entry.consumed:
                    self.prefetch_wasted += 1
                    _PREFETCH_WASTED.inc()

    def invalidate_path(self, path: str) -> None:
        with self._lock:
            for key in [k for k in self._entries if k[0] == path]:
                entry = self._entries.pop(key)
                _BLOCKS_CACHED.dec()
                if entry.prefetched and not entry.consumed:
                    self.prefetch_wasted += 1
                    _PREFETCH_WASTED.inc()

    def note_wasted(self, n: int = 1) -> None:
        """Account prefetched data discarded before it entered the cache."""
        with self._lock:
            self.prefetch_wasted += n
        _PREFETCH_WASTED.inc(n)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _InFlight:
    __slots__ = ("event", "stale")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.stale = False


class BlockPrefetcher:
    """Keeps a window of upcoming blocks in flight on dedicated channels.

    The owner (a proxy file) calls :meth:`schedule` with the block
    numbers it expects to need next; background worker threads fetch
    them through the ``fetch`` callables (each bound to its own RPC
    connection — the strict request/reply framing allows one
    outstanding RPC per connection, so in-flight depth equals the
    number of workers) and deposit them in the shared
    :class:`BlockCache` marked *prefetched*.  A reader about to
    demand-fetch a block first calls :meth:`claim` — if that block is
    in flight it waits for the pipeline instead of issuing a duplicate
    RPC.

    Writes call :meth:`invalidate` so an in-flight block dirtied under
    the prefetcher is discarded on arrival (counted as wasted) rather
    than poisoning the cache.
    """

    def __init__(
        self,
        path: str,
        fetch: "Callable[[int], bytes] | Iterable[Callable[[int], bytes]]",
        cache: BlockCache,
        name: str = "fm-prefetch",
    ):
        self._path = path
        fetches = [fetch] if callable(fetch) else list(fetch)
        if not fetches:
            raise ValueError("at least one fetch callable required")
        self._cache = cache
        self._cv = threading.Condition()
        self._queue: Deque[int] = deque()
        self._inflight: Dict[int, _InFlight] = {}
        self._stopped = False
        self.rpc_reads = 0  # RPCs issued by the prefetch channels
        self._threads = [
            threading.Thread(target=self._run, args=(fn,), name=f"{name}#{i}", daemon=True)
            for i, fn in enumerate(fetches)
        ]
        for t in self._threads:
            t.start()

    # -- owner-side API ----------------------------------------------------
    def schedule(self, block_nos: Iterable[int]) -> None:
        with self._cv:
            if self._stopped:
                return
            for block_no in block_nos:
                if block_no in self._inflight or block_no in self._queue:
                    continue
                if self._cache.contains(self._path, block_no):
                    continue
                self._queue.append(block_no)
            self._cv.notify()

    def claim(self, block_no: int, timeout: Optional[float] = None) -> bool:
        """Wait for ``block_no`` if it is in flight.

        Returns True when the block was (or is now) in the cache thanks
        to the pipeline; False means the caller must demand-fetch.  A
        queued-but-unstarted block is dropped from the queue so the
        demand fetch doesn't race a duplicate.
        """
        with self._cv:
            pending = self._inflight.get(block_no)
            if pending is None:
                try:
                    self._queue.remove(block_no)
                except ValueError:
                    pass
                return False
        if not pending.event.wait(timeout):
            return False
        return self._cache.contains(self._path, block_no)

    def invalidate(self, first_block: int, last_block: int) -> None:
        """A write dirtied ``first..last``: drop them from queue/flight."""
        with self._cv:
            for block_no in range(first_block, last_block + 1):
                try:
                    self._queue.remove(block_no)
                except ValueError:
                    pass
                pending = self._inflight.get(block_no)
                if pending is not None:
                    pending.stale = True

    def cancel_queued(self) -> None:
        """Random seek: the queued window is no longer the likely future."""
        with self._cv:
            self._queue.clear()

    def in_flight(self, block_no: int) -> bool:
        with self._cv:
            return block_no in self._inflight or block_no in self._queue

    def close(self) -> None:
        with self._cv:
            self._stopped = True
            self._queue.clear()
            self._cv.notify_all()
        for t in self._threads:
            t.join(timeout=5)

    # -- workers -----------------------------------------------------------
    def _run(self, fetch: Callable[[int], bytes]) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stopped:
                    self._cv.wait()
                if self._stopped:
                    # Wake any claim() waiters; entries owned by workers
                    # still mid-RPC are released by their finally blocks.
                    for pending in self._inflight.values():
                        pending.event.set()
                    return
                block_no = self._queue.popleft()
                pending = self._inflight[block_no] = _InFlight()
            try:
                data = fetch(block_no)
                _PREFETCH_RPCS.inc()
                with self._cv:
                    self.rpc_reads += 1
            except Exception:
                data = None  # demand path will retry and surface the error
            with self._cv:
                if data is not None:
                    if pending.stale:
                        self._cache.note_wasted()
                    else:
                        self._cache.put(self._path, block_no, data, prefetched=True)
                self._inflight.pop(block_no, None)
                pending.event.set()


class WriteCoalescer:
    """Write-behind buffer merging contiguous writes into block flushes.

    ``write(offset, data)`` extends the pending run when the write is
    contiguous with it; anything else (a backwards write, a hole, an
    explicit ``flush``) pushes the pending bytes out through ``flush_fn``
    first.  Runs longer than ``block_size`` are flushed eagerly in
    block-sized RPCs so the buffer never grows unboundedly.
    """

    def __init__(self, flush_fn: Callable[[int, bytes], None], block_size: int):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self._flush_fn = flush_fn
        self._block_size = block_size
        self._start = 0
        self._buf = bytearray()
        self.flushes = 0          # put RPCs issued
        self.writes_coalesced = 0  # WRITE calls absorbed without an RPC

    @property
    def pending(self) -> Tuple[int, int]:
        """``(offset, length)`` of the not-yet-flushed run."""
        return self._start, len(self._buf)

    def write(self, offset: int, data: bytes) -> None:
        if not data:
            return
        if self._buf and offset != self._start + len(self._buf):
            self.flush()
        if not self._buf:
            self._start = offset
        else:
            self.writes_coalesced += 1
            _WRITE_COALESCED.inc()
        self._buf += data
        while len(self._buf) >= self._block_size:
            chunk = bytes(self._buf[: self._block_size])
            self._flush_fn(self._start, chunk)
            self.flushes += 1
            _WRITE_FLUSHES.inc()
            del self._buf[: self._block_size]
            self._start += len(chunk)

    def flush(self) -> None:
        if self._buf:
            self._flush_fn(self._start, bytes(self._buf))
            self.flushes += 1
            _WRITE_FLUSHES.inc()
            self._start += len(self._buf)
            self._buf.clear()

    def overlaps(self, offset: int, length: int) -> bool:
        """Does pending data intersect ``[offset, offset+length)``?"""
        if not self._buf or length <= 0:
            return False
        return offset < self._start + len(self._buf) and self._start < offset + length
