"""Edge-case coverage across modules: error paths, boundaries, reuse."""

import pytest

from repro.sim.engine import Environment, SimulationError
from repro.sim.netsim import LinkSpec, Network


class TestEngineEdges:
    def test_mixed_environment_events_rejected_in_condition(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(SimulationError):
            env1.all_of([env1.event(), env2.event()])

    def test_process_waiting_on_foreign_event_fails(self):
        env1, env2 = Environment(), Environment()

        def proc(env):
            try:
                yield env2.event()
            except SimulationError:
                return "caught"

        p = env1.process(proc(env1))
        env1.run()
        assert p.value == "caught"

    def test_failed_event_without_defuse_crashes_run(self):
        env = Environment()
        evt = env.event()
        evt.fail(RuntimeError("unobserved failure"))
        with pytest.raises(RuntimeError, match="unobserved"):
            env.run()

    def test_step_on_empty_queue_raises(self):
        env = Environment()
        with pytest.raises(IndexError):
            env.step()

    def test_run_until_between_events(self):
        env = Environment()
        env.timeout(1.0)
        env.timeout(5.0)
        env.run(until=3.0)
        assert env.now == 3.0
        env.run()
        assert env.now == 5.0

    def test_timeout_value_delivered(self):
        env = Environment()

        def proc(env):
            value = yield env.timeout(1, "payload")
            return value

        p = env.process(proc(env))
        env.run()
        assert p.value == "payload"


class TestNetworkEdges:
    def test_zero_latency_link(self):
        env = Environment()
        net = Network(env)
        net.connect("a", "b", LinkSpec(bandwidth=1e6, latency=0.0))
        net.message("a", "b", 1_000_000)
        env.run()
        assert env.now == pytest.approx(1.0)

    def test_directional_override(self):
        """An explicit reverse entry overrides the symmetric default."""
        env = Environment()
        net = Network(env)
        net.connect("a", "b", LinkSpec(bandwidth=1e6, latency=0.1))
        net._specs[("b", "a")] = LinkSpec(bandwidth=2e6, latency=0.2)
        assert net.spec("a", "b").latency == 0.1
        assert net.spec("b", "a").latency == 0.2

    def test_set_spec_invalidates_both_directions(self):
        env = Environment()
        net = Network(env)
        net.connect("a", "b", LinkSpec(bandwidth=1e6, latency=0.1))
        _ = net.link("a", "b")
        _ = net.link("b", "a")
        net.set_spec("a", "b", LinkSpec(bandwidth=5e6, latency=0.01))
        assert net.link("a", "b").spec.bandwidth == 5e6
        assert net.link("b", "a").spec.bandwidth == 5e6


class TestCliEdges:
    def test_unknown_experiment_rejected(self, capsys):
        from repro.bench.cli import main

        with pytest.raises(SystemExit):
            main(["no-such-table"])

    def test_failing_check_sets_exit_code(self, monkeypatch):
        from repro.bench import cli
        from repro.bench.tables import TableBuilder

        def fake():
            t = TableBuilder("Fake", ["x"])
            t.add_check("always fails", False)
            return t

        monkeypatch.setitem(cli.ALL_EXPERIMENTS, "table1", fake)
        assert cli.main(["table1"]) == 1

    def test_out_dir_writes_tables(self, tmp_path):
        from repro.bench.cli import main

        assert main(["table1", "--out", str(tmp_path / "results")]) == 0
        text = (tmp_path / "results" / "table1.txt").read_text()
        assert "Table 1" in text and "brecca" in text


class TestGnsEdges:
    def test_announce_timeout_local_client(self):
        from repro.gns.client import LocalGnsClient
        from repro.gns.server import NameService

        client = LocalGnsClient(NameService())  # no locator: never located
        with pytest.raises(TimeoutError):
            client.announce("st", "writer", "m", timeout=0.05, poll_interval=0.01)

    def test_resolve_prefers_machine_specificity_over_path(self):
        from repro.gns.records import GnsRecord, IOMode
        from repro.gns.server import NameService

        ns = NameService()
        ns.add(GnsRecord(machine="m1", path="/*", mode=IOMode.LOCAL, local_path="/by-machine"))
        ns.add(GnsRecord(machine="*", path="/exact", mode=IOMode.LOCAL, local_path="/by-path"))
        # (machine exact, path glob) sorts above (machine glob, path exact).
        assert ns.resolve("m1", "/exact").local_path == "/by-machine"


class TestRemoteClientEdges:
    def test_proxy_read_empty_file(self, hosts, ftp_beta):
        from repro.core.remote_client import RemoteFileClient
        from repro.transport.gridftp import GridFtpClient

        hosts.host("beta").resolve("/empty.bin").write_bytes(b"")
        client = RemoteFileClient(GridFtpClient(*ftp_beta.address))
        f = client.open_proxy("/empty.bin", "r")
        assert f.read() == b""
        f.close()

    def test_copy_double_close_safe(self, hosts, ftp_beta, tmp_path):
        from repro.core.remote_client import RemoteFileClient
        from repro.transport.gridftp import GridFtpClient

        hosts.host("beta").resolve("/f.bin").write_bytes(b"data")
        client = RemoteFileClient(GridFtpClient(*ftp_beta.address), scratch_dir=tmp_path)
        f = client.open_copy("/f.bin", "r")
        f.close()
        f.close()  # idempotent


class TestSimRunnerEdges:
    def test_stage_with_no_files(self):
        from repro.workflow.scheduler import plan_workflow
        from repro.workflow.simrunner import simulate_plan
        from repro.workflow.spec import Stage, Workflow

        wf = Workflow("solo", [Stage("only", work=50, chunks=5)])
        report = simulate_plan(plan_workflow(wf, {"only": "brecca"}))
        assert report.makespan > 0

    def test_zero_work_stage(self):
        from repro.workflow.scheduler import plan_workflow
        from repro.workflow.simrunner import simulate_plan
        from repro.workflow.spec import FileUse, Stage, Workflow

        wf = Workflow(
            "zw",
            [
                Stage("p", writes=(FileUse("f", 1024),), work=0.0, chunks=1),
                Stage("q", reads=(FileUse("f", 1024),), work=10.0, chunks=1),
            ],
        )
        report = simulate_plan(plan_workflow(wf, {"p": "brecca", "q": "brecca"}))
        assert report.timings["p"].elapsed < report.timings["q"].elapsed
