"""Bench: regenerate Figure 6 — the stress distribution for a hole
shape (plate with circular hole under uniaxial tension).

Prints field statistics, the ASCII shade map of von Mises stress, and
writes ``fig6_stress.pgm`` next to the bench output for viewing.
"""

from pathlib import Path

from repro.apps.mecheng import (
    HoleShape,
    boundary_points,
    build_ring_mesh,
    solve_plane_stress,
)
from repro.bench.ascii_render import ascii_field, rasterize_von_mises, write_pgm
from repro.bench.experiments import run_fig6_stress


def test_fig6_stress_distribution(once):
    table = once(run_fig6_stress)
    table.print()
    assert table.all_checks_pass


def test_fig6_render(benchmark, tmp_path):
    mesh = build_ring_mesh(boundary_points(HoleShape(), 64), n_rings=16, half_width=6.0)
    result = solve_plane_stress(mesh)
    raster = benchmark.pedantic(
        rasterize_von_mises, args=(result,), kwargs={"resolution": 48}, rounds=1, iterations=1
    )
    print()
    print("Figure 6 — von Mises stress (ASCII render, hole blank):")
    print(ascii_field(raster))
    out = Path("fig6_stress.pgm")
    write_pgm(raster, out)
    print(f"(PGM image written to {out.resolve()})")
    assert out.exists()
