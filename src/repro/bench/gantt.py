"""ASCII Gantt rendering of simulated workflow runs.

Makes the overlap structure of a :class:`~repro.workflow.simrunner.SimReport`
visible at a glance — sequential stages stack diagonally, pipelined
stages form parallel bars, and copy transfers appear as their own rows.
"""

from __future__ import annotations

from typing import List

from ..workflow.simrunner import SimReport
from .tables import hms

__all__ = ["render_gantt"]


def render_gantt(report: SimReport, width: int = 64) -> str:
    """One bar per stage (plus copies), scaled to the makespan."""
    if not report.timings:
        return "(empty report)"
    makespan = report.makespan
    if makespan <= 0:
        return "(zero-length run)"

    rows: List[tuple[str, float, float]] = [
        (f"{t.stage}@{t.machine}", t.start, t.finish)
        for t in sorted(report.timings.values(), key=lambda t: (t.start, t.stage))
    ]
    for fname, (start, finish) in sorted(report.copy_times.items()):
        rows.append((f"copy:{fname}", start, finish))
        rows.sort(key=lambda r: (r[1], r[0]))

    label_width = max(len(r[0]) for r in rows) + 1
    lines = []
    for label, start, finish in rows:
        begin = int(round(start / makespan * (width - 1)))
        end = max(begin + 1, int(round(finish / makespan * (width - 1))))
        bar = " " * begin + "#" * (end - begin)
        lines.append(f"{label.ljust(label_width)}|{bar.ljust(width)}| {hms(finish)}")
    scale = f"{' ' * label_width}|0{' ' * (width - 10)}{hms(makespan):>8}|"
    lines.append(scale)
    return "\n".join(lines)
