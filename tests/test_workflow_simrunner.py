"""Behavioural tests for the simulated workflow runner."""

import pytest

from repro.grid.machine import Machine, MachineSpec
from repro.sim.engine import Environment
from repro.sim.netsim import LinkSpec, Network
from repro.workflow.scheduler import plan_workflow
from repro.workflow.simrunner import simulate_plan
from repro.workflow.spec import FileUse, Stage, Workflow

MB = 1024 * 1024


def simple_machines(env, names, speed=1.0, cores=1, **spec_kw):
    machines = {}
    for name in names:
        spec = MachineSpec(
            name=name,
            address=f"{name}.test",
            country="AU",
            cpu="test",
            mem_mb=1024,
            speed=speed,
            cores=cores,
            idle_io_fraction=0.0,
            buffer_cpu_per_mb=0.0,
            file_cpu_per_mb=0.0,
            **spec_kw,
        )
        machines[name] = Machine(env, spec)
    return machines


def fast_network(env, names):
    net = Network(env)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            net.connect(a, b, LinkSpec(bandwidth=1000 * MB, latency=1e-6))
    return net


def chain(work_p=100.0, work_q=100.0, nbytes=1 * MB, chunks=10):
    return Workflow(
        "chain",
        [
            Stage("p", writes=(FileUse("f", nbytes),), work=work_p, chunks=chunks),
            Stage("q", reads=(FileUse("f", nbytes),), work=work_q, chunks=chunks),
        ],
    )


def run(plan, names, speed=1.0, cores=1, net=None, **spec_kw):
    env = Environment()
    machines = simple_machines(env, names, speed=speed, cores=cores, **spec_kw)
    network = net(env) if net else fast_network(env, names)
    return simulate_plan(plan, machines=machines, network=network, env=env)


class TestSequentialSemantics:
    def test_local_runs_back_to_back(self):
        plan = plan_workflow(chain(), {"p": "m", "q": "m"})
        report = run(plan, ["m"])
        assert report.timings["q"].start >= report.timings["p"].finish
        assert report.makespan == pytest.approx(200, rel=0.05)

    def test_copy_inserts_transfer(self):
        wf = chain(nbytes=100 * MB)
        plan = plan_workflow(wf, {"p": "m1", "q": "m2"}, coupling={"f": "copy"})

        def slow_net(env):
            net = Network(env)
            net.connect("m1", "m2", LinkSpec(bandwidth=10 * MB, latency=0.01))
            return net

        report = run(plan, ["m1", "m2"], net=slow_net)
        assert "f" in report.copy_times
        start, finish = report.copy_times["f"]
        assert start >= report.timings["p"].finish
        # 100 MB at 10 MB/s link plus source-disk read and dest-disk write.
        assert 10.0 <= finish - start <= 20.0
        assert report.timings["q"].start >= finish


class TestPipelinedSemantics:
    def test_buffer_overlaps_stages(self):
        plan = plan_workflow(chain(), {"p": "m1", "q": "m2"}, coupling={"f": "buffer"})
        report = run(plan, ["m1", "m2"])
        # q starts immediately and finishes just after p (one chunk tail).
        assert report.timings["q"].start == 0.0
        assert report.makespan == pytest.approx(110, rel=0.05)

    def test_buffer_on_one_cpu_is_cpu_bound(self):
        plan = plan_workflow(chain(), {"p": "m", "q": "m"}, coupling={"f": "buffer"})
        report = run(plan, ["m"])
        # 200 work units on one unit-speed CPU: no speedup possible.
        assert report.makespan == pytest.approx(200, rel=0.05)

    def test_buffer_on_two_cores_overlaps(self):
        plan = plan_workflow(chain(), {"p": "m", "q": "m"}, coupling={"f": "buffer"})
        report = run(plan, ["m"], cores=2)
        assert report.makespan == pytest.approx(110, rel=0.1)

    def test_slow_consumer_paces_itself(self):
        wf = chain(work_p=10, work_q=100)
        plan = plan_workflow(wf, {"p": "m1", "q": "m2"}, coupling={"f": "buffer"})
        report = run(plan, ["m1", "m2"])
        assert report.makespan == pytest.approx(101, rel=0.05)

    def test_high_latency_stream_stalls_writer(self):
        """Backpressure: the paper's brecca→bouscat behaviour."""
        wf = chain(work_p=10, work_q=10, nbytes=10 * MB, chunks=20)
        plan = plan_workflow(wf, {"p": "m1", "q": "m2"}, coupling={"f": "buffer"})

        def wan(env):
            net = Network(env)
            net.connect("m1", "m2", LinkSpec(bandwidth=0.33 * MB, latency=0.32))
            return net

        report = run(plan, ["m1", "m2"], net=wan)
        # Far slower than the 20 work units: stream-dominated.
        assert report.makespan > 100

    def test_tail_fraction_serialises_after_stream(self):
        wf = Workflow(
            "t",
            [
                Stage("p", writes=(FileUse("f", 1 * MB),), work=100, chunks=10),
                Stage(
                    "q",
                    reads=(FileUse("f", 1 * MB),),
                    work=100,
                    chunks=10,
                    tail_fraction=0.5,
                ),
            ],
        )
        plan = plan_workflow(wf, {"p": "m1", "q": "m2"}, coupling={"f": "buffer"})
        report = run(plan, ["m1", "m2"])
        # Tail (50 units) can only run after p finishes at ~100.
        assert report.makespan == pytest.approx(100 + 50 + 5, rel=0.1)


class TestFileStreamSemantics:
    def test_file_stream_overlaps_but_costs_more_cpu(self):
        wf = chain(nbytes=50 * MB)
        same = {"p": "m", "q": "m"}
        buf_plan = plan_workflow(chain(nbytes=50 * MB), same, coupling={"f": "buffer"})
        fs_plan = plan_workflow(wf, same, coupling={"f": "file-stream"})
        env1 = Environment()
        m1 = simple_machines(env1, ["m"])
        m1["m"].spec = MachineSpec(
            name="m", address="m.t", country="AU", cpu="t", mem_mb=512,
            speed=1.0, file_cpu_per_mb=1.0, buffer_cpu_per_mb=0.1, idle_io_fraction=0.0,
        )
        r_fs = simulate_plan(fs_plan, machines=m1, network=fast_network(env1, ["m"]), env=env1)
        env2 = Environment()
        m2 = simple_machines(env2, ["m"])
        m2["m"].spec = m1["m"].spec
        r_buf = simulate_plan(buf_plan, machines=m2, network=fast_network(env2, ["m"]), env=env2)
        assert r_buf.makespan < r_fs.makespan

    def test_file_stream_sync_extends_producer(self):
        wf = chain(chunks=20)
        plan = plan_workflow(wf, {"p": "m", "q": "m"}, coupling={"f": "file-stream"})
        report = run(plan, ["m"], file_stream_sync=1.0)
        # 20 chunks x 1 s sync on the writer chain, on top of 200 work.
        assert report.makespan >= 215


class TestFanOutAndRereads:
    def test_broadcast_to_two_consumers(self):
        wf = Workflow(
            "fan",
            [
                Stage("src", writes=(FileUse("f", 1 * MB),), work=50, chunks=5),
                Stage("c1", reads=(FileUse("f", 1 * MB),), work=20, chunks=5),
                Stage("c2", reads=(FileUse("f", 1 * MB),), work=20, chunks=5),
            ],
        )
        plan = plan_workflow(
            wf, {"src": "m1", "c1": "m2", "c2": "m3"}, coupling={"f": "buffer"}
        )
        report = run(plan, ["m1", "m2", "m3"])
        assert set(report.timings) == {"src", "c1", "c2"}
        assert report.makespan == pytest.approx(54, rel=0.1)

    def test_reread_adds_disk_time(self):
        wf_plain = chain()
        wf_reread = Workflow(
            "chain",
            [
                Stage("p", writes=(FileUse("f", 1 * MB),), work=100, chunks=10),
                Stage(
                    "q",
                    reads=(FileUse("f", 1 * MB, reread_bytes=500 * MB),),
                    work=100,
                    chunks=10,
                ),
            ],
        )
        base = run(plan_workflow(wf_plain, {"p": "m", "q": "m"}), ["m"])
        rr = run(plan_workflow(wf_reread, {"p": "m", "q": "m"}), ["m"])
        assert rr.makespan > base.makespan + 5  # 500 MB re-read from disk


class TestDefaultTestbed:
    def test_runs_on_calibrated_testbed_by_default(self):
        plan = plan_workflow(chain(), {"p": "brecca", "q": "brecca"})
        report = simulate_plan(plan)
        assert report.makespan > 0
        assert report.timings["p"].machine == "brecca"
