"""Model-based (stateful hypothesis) test of the Grid Buffer service.

The reference model is trivial: a growing byte string.  The real
service — hash table, delete-on-read, cache file, EOF bookkeeping —
must behave exactly like reading that byte string, under any
interleaving of sequential writes, in-order reads, backwards re-reads
and the close."""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.gridbuffer.cache import BufferCache
from repro.gridbuffer.service import GridBufferService


class GridBufferModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        import tempfile
        from pathlib import Path

        self.svc = GridBufferService(default_capacity=None)
        cache_path = Path(tempfile.mkdtemp(prefix="gb-stateful-")) / "s.cache"
        self.cache = BufferCache(cache_path)
        self.svc.create_stream("s", cache=self.cache)
        self.svc.register_reader("s", "r")
        self.model = bytearray()   # everything written so far
        self.read_pos = 0          # the sequential reader's position
        self.closed = False

    @rule(data=st.binary(min_size=1, max_size=257))
    @precondition(lambda self: not self.closed)
    def write_chunk(self, data):
        self.svc.write("s", len(self.model), data)
        self.model.extend(data)

    @rule(size=st.integers(min_value=1, max_value=300))
    def sequential_read(self, size):
        want = min(size, len(self.model) - self.read_pos)
        if want <= 0:
            return  # would block (or EOF) — checked in eof rule
        got = self.svc.read("s", "r", self.read_pos, size, timeout=1)
        assert 0 < len(got) <= size
        assert bytes(got) == bytes(self.model[self.read_pos : self.read_pos + len(got)])
        self.read_pos += len(got)

    @rule(back=st.integers(min_value=1, max_value=400), size=st.integers(min_value=1, max_value=100))
    @precondition(lambda self: self.read_pos > 0)
    def reread_behind(self, back, size):
        """Backwards seek: must be served (from cache or table)."""
        offset = max(0, self.read_pos - back)
        limit = min(self.read_pos, len(self.model))
        want = min(size, limit - offset)
        if want <= 0:
            return
        got = self.svc.read("s", "r", offset, want, timeout=1)
        assert bytes(got) == bytes(self.model[offset : offset + len(got)])

    @rule()
    @precondition(lambda self: not self.closed and len(self.model) > 0)
    def close_writer(self):
        total = self.svc.close_writer("s")
        assert total == len(self.model)
        self.closed = True

    @rule(size=st.integers(min_value=1, max_value=100))
    @precondition(lambda self: self.closed)
    def read_at_or_past_eof(self, size):
        got = self.svc.read("s", "r", len(self.model), size, timeout=1)
        assert got == b""

    @invariant()
    def memory_bounded_by_unconsumed(self):
        stats = self.svc.stats("s")
        # The hash table never holds more than what was written and
        # never reports negative occupancy.
        assert 0 <= stats.bytes_in_table <= len(self.model)

    @invariant()
    def written_counter_consistent(self):
        assert self.svc.stats("s").bytes_written == len(self.model)

    def teardown(self):
        self.svc.drop_stream("s")
        self.cache.close(delete=True)


TestGridBufferModel = GridBufferModel.TestCase
TestGridBufferModel = pytest.mark.slow(TestGridBufferModel)
TestGridBufferModel.settings = settings(max_examples=40, stateful_step_count=30, deadline=None)
