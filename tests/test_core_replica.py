"""Unit tests for NWS-driven replica selection and re-mapping."""

import pytest

from repro.core.replica import NoReplicaError, ReplicaSelector
from repro.grid.nws import Measurement, NetworkWeatherService
from repro.grid.replica_catalog import Replica, ReplicaCatalog


def make_world():
    catalog = ReplicaCatalog()
    nws = NetworkWeatherService()
    catalog.register("lfn://d", Replica("fast-host", "/d", size=10_000_000))
    catalog.register("lfn://d", Replica("slow-host", "/d", size=10_000_000))
    for i in range(4):
        nws.record("fast-host", "client", Measurement(time=i, bandwidth=10e6, latency=0.01))
        nws.record("slow-host", "client", Measurement(time=i, bandwidth=1e6, latency=0.2))
    return catalog, nws


class TestRanking:
    def test_fastest_first(self):
        catalog, nws = make_world()
        selector = ReplicaSelector(catalog, nws)
        ranked = selector.rank("lfn://d", "client")
        assert [c.replica.host for c in ranked] == ["fast-host", "slow-host"]

    def test_best(self):
        catalog, nws = make_world()
        selector = ReplicaSelector(catalog, nws)
        assert selector.best("lfn://d", "client").replica.host == "fast-host"

    def test_local_replica_always_first(self):
        catalog, nws = make_world()
        catalog.register("lfn://d", Replica("client", "/local/d", size=10_000_000))
        selector = ReplicaSelector(catalog, nws)
        best = selector.best("lfn://d", "client")
        assert best.replica.host == "client"
        assert best.predicted_seconds == 0.0
        assert best.method == "local"

    def test_unknown_logical_name_raises(self):
        catalog, nws = make_world()
        selector = ReplicaSelector(catalog, nws)
        with pytest.raises(NoReplicaError):
            selector.best("lfn://missing", "client")

    def test_static_cost_fallback(self):
        catalog = ReplicaCatalog()
        catalog.register("f", Replica("far", "/f"))
        catalog.register("f", Replica("near", "/f"))
        selector = ReplicaSelector(
            catalog, static_cost=lambda src, dst: 10.0 if src == "far" else 1.0
        )
        assert selector.best("f", "client").replica.host == "near"

    def test_no_information_keeps_registration_order(self):
        catalog = ReplicaCatalog()
        catalog.register("f", Replica("first", "/f"))
        catalog.register("f", Replica("second", "/f"))
        selector = ReplicaSelector(catalog)
        assert selector.best("f", "client").replica.host == "first"


class TestRemap:
    def test_no_remap_when_current_is_best(self):
        catalog, nws = make_world()
        selector = ReplicaSelector(catalog, nws)
        current = catalog.lookup("lfn://d")[0]  # fast-host
        assert selector.maybe_remap("lfn://d", "client", current) is None

    def test_remap_when_current_degrades(self):
        catalog, nws = make_world()
        selector = ReplicaSelector(catalog, nws, hysteresis=1.5)
        current = catalog.lookup("lfn://d")[0]  # fast-host
        for i in range(10, 20):
            nws.record("fast-host", "client", Measurement(time=i, bandwidth=0.05e6, latency=0.5))
        choice = selector.maybe_remap("lfn://d", "client", current)
        assert choice is not None
        assert choice.replica.host == "slow-host"

    def test_hysteresis_prevents_thrash(self):
        """A marginally better alternative must NOT trigger a switch."""
        catalog = ReplicaCatalog()
        nws = NetworkWeatherService()
        catalog.register("f", Replica("a", "/f", size=1_000_000))
        catalog.register("f", Replica("b", "/f", size=1_000_000))
        for i in range(4):
            nws.record("a", "client", Measurement(time=i, bandwidth=1.0e6, latency=0.01))
            nws.record("b", "client", Measurement(time=i, bandwidth=1.1e6, latency=0.01))
        selector = ReplicaSelector(catalog, nws, hysteresis=1.5)
        current = catalog.lookup("f")[0]  # a — slightly worse than b
        assert selector.maybe_remap("f", "client", current) is None

    def test_hysteresis_validation(self):
        with pytest.raises(ValueError):
            ReplicaSelector(ReplicaCatalog(), hysteresis=0.5)

    def test_remap_away_from_unmeasured_source(self):
        catalog = ReplicaCatalog()
        nws = NetworkWeatherService()
        catalog.register("f", Replica("dark", "/f", size=1_000_000))
        catalog.register("f", Replica("lit", "/f", size=1_000_000))
        for i in range(3):
            nws.record("lit", "client", Measurement(time=i, bandwidth=5e6, latency=0.01))
        selector = ReplicaSelector(catalog, nws)
        current = catalog.lookup("f")[0]  # dark, no measurements
        choice = selector.maybe_remap("f", "client", current)
        assert choice is not None
        assert choice.replica.host == "lit"
