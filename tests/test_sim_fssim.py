"""Unit tests for simulated disks and file systems."""

import pytest

from repro.sim.engine import Environment
from repro.sim.fssim import Disk, DiskSpec, SimFileSystem


class TestDiskSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            DiskSpec(read_bandwidth=0)
        with pytest.raises(ValueError):
            DiskSpec(write_bandwidth=-1)
        with pytest.raises(ValueError):
            DiskSpec(seek_time=-0.1)


class TestDisk:
    def test_read_time(self):
        env = Environment()
        disk = Disk(env, DiskSpec(read_bandwidth=10e6, write_bandwidth=10e6, seek_time=0.01))
        disk.read(10_000_000)
        env.run()
        assert env.now == pytest.approx(0.01 + 1.0)

    def test_write_slower_than_read(self):
        spec = DiskSpec(read_bandwidth=40e6, write_bandwidth=20e6, seek_time=0.0)
        env1, env2 = Environment(), Environment()
        Disk(env1, spec).read(40_000_000)
        env1.run()
        Disk(env2, spec).write(40_000_000)
        env2.run()
        assert env2.now == pytest.approx(2 * env1.now)

    def test_concurrent_io_shares_bandwidth(self):
        env = Environment()
        disk = Disk(env, DiskSpec(read_bandwidth=10e6, write_bandwidth=10e6, seek_time=0.0))
        done = []

        def reader(env):
            yield disk.read(10_000_000)
            done.append(env.now)

        env.process(reader(env))
        env.process(reader(env))
        env.run()
        assert done == [pytest.approx(2.0)] * 2

    def test_negative_size_rejected(self):
        env = Environment()
        disk = Disk(env)
        with pytest.raises(ValueError):
            disk.read(-1)


class TestSimFileSystem:
    def test_write_creates_file(self):
        env = Environment()
        fs = SimFileSystem(env, host="m1")
        fs.write_file("/out.dat", 1000)
        env.run()
        assert fs.exists("/out.dat")
        assert fs.stat("/out.dat").size == 1000

    def test_append_grows_file(self):
        env = Environment()
        fs = SimFileSystem(env, host="m1")

        def proc(env):
            yield fs.write_file("/log", 100)
            yield fs.write_file("/log", 50, append=True)

        env.process(proc(env))
        env.run()
        assert fs.stat("/log").size == 150

    def test_overwrite_resets_size(self):
        env = Environment()
        fs = SimFileSystem(env, host="m1")

        def proc(env):
            yield fs.write_file("/f", 100)
            yield fs.write_file("/f", 10)

        env.process(proc(env))
        env.run()
        assert fs.stat("/f").size == 10

    def test_stat_missing_raises(self):
        env = Environment()
        fs = SimFileSystem(env, host="m1")
        with pytest.raises(FileNotFoundError):
            fs.stat("/nope")

    def test_unlink(self):
        env = Environment()
        fs = SimFileSystem(env, host="m1")
        fs.touch("/f", size=5)
        fs.unlink("/f")
        assert not fs.exists("/f")
        with pytest.raises(FileNotFoundError):
            fs.unlink("/f")

    def test_read_whole_file_timing(self):
        env = Environment()
        fs = SimFileSystem(
            env, host="m1", disk=Disk(env, DiskSpec(read_bandwidth=1e6, write_bandwidth=1e6, seek_time=0.0))
        )
        fs.touch("/data", size=2_000_000)
        fs.read_file("/data")
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_listdir_sorted(self):
        env = Environment()
        fs = SimFileSystem(env, host="m1")
        fs.touch("/b")
        fs.touch("/a")
        assert fs.listdir() == ["/a", "/b"]

    def test_mtime_tracks_clock(self):
        env = Environment()
        fs = SimFileSystem(env, host="m1")

        def proc(env):
            yield env.timeout(5)
            yield fs.write_file("/f", 10)

        env.process(proc(env))
        env.run()
        assert fs.stat("/f").mtime >= 5.0
