"""Unit tests for the virtual-host registry."""

import time

import pytest

from repro.transport.inmem import DelayModel, HostRegistry, VirtualHost


class TestVirtualHost:
    def test_resolve_inside_root(self, tmp_path):
        host = VirtualHost("h", tmp_path / "h")
        p = host.resolve("/data/file.txt")
        assert str(p).startswith(str((tmp_path / "h").resolve()))

    def test_escape_rejected(self, tmp_path):
        host = VirtualHost("h", tmp_path / "h")
        with pytest.raises(PermissionError):
            host.resolve("/../outside")

    def test_size_and_exists(self, tmp_path):
        host = VirtualHost("h", tmp_path / "h")
        target = host.resolve("/f.bin")
        target.write_bytes(b"12345")
        assert host.exists("/f.bin")
        assert host.size("/f.bin") == 5
        assert not host.exists("/g.bin")


class TestHostRegistry:
    def test_add_and_lookup(self, tmp_path):
        reg = HostRegistry(tmp_path)
        reg.add_host("a")
        assert reg.host("a").name == "a"
        assert reg.hosts() == ["a"]

    def test_add_idempotent(self, tmp_path):
        reg = HostRegistry(tmp_path)
        h1 = reg.add_host("a")
        h2 = reg.add_host("a")
        assert h1 is h2

    def test_unknown_host_raises(self, tmp_path):
        with pytest.raises(KeyError):
            HostRegistry(tmp_path).host("nope")

    def test_no_base_dir_requires_root(self):
        reg = HostRegistry()
        with pytest.raises(ValueError):
            reg.add_host("a")

    def test_copy_file_between_hosts(self, tmp_path):
        reg = HostRegistry(tmp_path)
        a, b = reg.add_host("a"), reg.add_host("b")
        a.resolve("/src.bin").write_bytes(b"payload")
        n = reg.copy_file("a", "/src.bin", "b", "/dst/copy.bin")
        assert n == 7
        assert b.resolve("/dst/copy.bin").read_bytes() == b"payload"

    def test_copy_missing_raises(self, tmp_path):
        reg = HostRegistry(tmp_path)
        reg.add_host("a")
        reg.add_host("b")
        with pytest.raises(FileNotFoundError):
            reg.copy_file("a", "/nope", "b", "/x")

    def test_read_block_cross_host(self, tmp_path):
        reg = HostRegistry(tmp_path)
        a = reg.add_host("a")
        reg.add_host("b")
        a.resolve("/f").write_bytes(b"0123456789")
        assert reg.read_block("a", "/f", 2, 4, "b") == b"2345"

    def test_delay_model_applied(self, tmp_path):
        reg = HostRegistry(tmp_path)
        a = reg.add_host("a")
        reg.add_host("b")
        a.resolve("/f").write_bytes(b"x" * 1000)
        reg.set_delay("a", "b", DelayModel(bandwidth=1e6, latency=0.02, scale=1.0))
        t0 = time.monotonic()
        reg.copy_file("a", "/f", "b", "/f")
        elapsed = time.monotonic() - t0
        assert elapsed >= 0.04  # two messages of latency

    def test_same_host_no_delay(self, tmp_path):
        reg = HostRegistry(tmp_path)
        reg.add_host("a")
        assert reg.delay("a", "a").latency == 0.0

    def test_delay_symmetric_by_default(self, tmp_path):
        reg = HostRegistry(tmp_path)
        reg.add_host("a")
        reg.add_host("b")
        model = DelayModel(latency=0.5)
        reg.set_delay("a", "b", model)
        assert reg.delay("b", "a").latency == 0.5

    def test_cleanup_removes_sandboxes(self, tmp_path):
        reg = HostRegistry(tmp_path)
        a = reg.add_host("a")
        root = a.root
        assert root.exists()
        reg.cleanup()
        assert not root.exists()
        assert reg.hosts() == []


class TestDelayModel:
    def test_scale_shrinks_sleep(self):
        model = DelayModel(bandwidth=1e6, latency=0.1, scale=0.0)
        t0 = time.monotonic()
        model.sleep_for(10_000_000, messages=5)
        assert time.monotonic() - t0 < 0.05

    def test_infinite_bandwidth_skips_serialisation(self):
        model = DelayModel(latency=0.0)
        t0 = time.monotonic()
        model.sleep_for(10**9)
        assert time.monotonic() - t0 < 0.05
