"""End-to-end integrity: per-frame CRC, bit-flip chaos, self-healing reads.

Covers the PR 9 machinery bottom-up:

- wire level: the ``FLAG_CRC`` preamble bit and 4-byte payload trailer
  (round-trip, mismatch -> ``IntegrityError``, unknown flag bits
  rejected),
- negotiation: the ``[version, "crc"]`` probe advert and every
  mixed-version pairing (new client / old server, old client / new
  server, opt-out, forced wire),
- transport healing: a corrupted *reply* is detected by the client and
  retried under the idempotency gate; a corrupted *request* is
  detected by the server, which drops the connection and the client
  redials,
- the fault injector itself: the ``corrupt`` action, loud parsing of
  malformed ``REPRO_FAULTS`` rules, and ``fire_async`` keeping delay
  rules off the shared event loop,
- shared-cache poison: a bit-flipped cached run is discarded at serve
  time (local hit and peer ``peek_range`` alike) and the reader falls
  through to the origin,
- copy-in self-heal: a post-wire corrupted fetch fails the whole-file
  checksum and is re-fetched,
- and the acceptance run: all six IO modes byte-identical under seeded
  corruption chaos, plus an 8-reader broadcast over a poisoned shared
  cache.

Every detection increments ``integrity_errors_total{layer,action}``.
"""

import asyncio
import random
import threading
import time

import pytest

from repro import faults, ioutil, obs
from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.core.remote_client import CopyInOutFile
from repro.core.replica import ReplicaSelector
from repro.faults import FaultRule
from repro.gns.client import LocalGnsClient
from repro.gns.records import BufferEndpoint, GnsRecord, IOMode
from repro.gns.server import NameService
from repro.grid.replica_catalog import Replica, ReplicaCatalog
from repro.gridbuffer.client import GridBufferClient, _SharedStreamCache
from repro.gridbuffer.server import GridBufferServer
from repro.transport.aio import read_frame_async
from repro.transport.gridftp import GridFtpClient, GridFtpServer
from repro.transport.inmem import HostRegistry
from repro.transport.tcp import (
    FrameError,
    IntegrityError,
    RpcClient,
    RpcServer,
    ThreadedRpcServer,
)
from repro.transport.wire import (
    CRC_TRAILER,
    FLAG_CRC,
    WIRE_VERSION,
    advert_has_crc,
    build_binary_frame,
    wire_advert,
)

pytestmark = pytest.mark.corrupt

SEED = 20260806


@pytest.fixture(autouse=True)
def _disarmed():
    faults.disarm()
    yield
    faults.disarm()


def _counter(name, labels=None):
    if labels is not None:
        return obs.value(name, labels) or 0.0
    family = obs.snapshot().get(name)
    if not family:
        return 0.0
    total = 0.0
    for series in family["series"]:
        value = series["value"]
        total += value["count"] if isinstance(value, dict) else value
    return total


def _integrity(layer, action):
    return _counter("integrity_errors_total", {"layer": layer, "action": action})


def _make_server(engine="async"):
    server = (RpcServer if engine == "async" else ThreadedRpcServer)("127.0.0.1", 0)
    server.register("echo", lambda header, payload: ({"echo": header.get("msg")}, payload))
    # Registered under an IDEMPOTENT_OPS name so the client may retry it.
    server.register("get_block", lambda header, payload: ({"ok": True}, payload))
    return server


# ---------------------------------------------------------------------------
# Wire level: trailer round-trip, mismatch, unknown flags
# ---------------------------------------------------------------------------
class TestWireCrcFrames:
    def _decode(self, raw: bytes):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_frame_async(reader)

        return asyncio.run(run())

    def _frame(self, payload: bytes, flags: int = FLAG_CRC, crc=None) -> bytes:
        scratch = bytearray()
        build_binary_frame(scratch, {"op": "echo", "k": 1}, len(payload), flags)
        raw = bytes(scratch) + payload
        if flags & FLAG_CRC:
            raw += CRC_TRAILER.pack(ioutil.crc32(payload) if crc is None else crc)
        return raw

    def test_crc_frame_round_trips_and_reports_codec(self):
        payload = b"block-of-bytes" * 100
        header, got, codec = self._decode(self._frame(payload))
        assert got == payload
        assert header["k"] == 1
        assert codec == "binary+crc"

    def test_plain_binary_frame_reports_plain_codec(self):
        _, got, codec = self._decode(self._frame(b"data", flags=0))
        assert codec == "binary"

    def test_flipped_payload_bit_raises_integrity_error(self):
        payload = bytearray(b"block-of-bytes" * 100)
        raw = bytearray(self._frame(bytes(payload)))
        raw[len(raw) - CRC_TRAILER.size - 10] ^= 0x04  # flip inside the payload
        with pytest.raises(IntegrityError):
            self._decode(bytes(raw))

    def test_wrong_trailer_raises_integrity_error(self):
        with pytest.raises(IntegrityError):
            self._decode(self._frame(b"payload", crc=0xDEADBEEF))

    def test_unknown_flag_bits_rejected(self):
        with pytest.raises(FrameError, match="unsupported wire flags"):
            self._decode(self._frame(b"payload", flags=0x80, crc=0))

    def test_crc_helper_is_masked_and_stable(self):
        assert ioutil.crc32(b"") == 0
        assert 0 <= ioutil.crc32(b"abc") <= 0xFFFFFFFF
        assert ioutil.crc32(b"abc") == ioutil.crc32(b"abc")


# ---------------------------------------------------------------------------
# Negotiation: advert shape and version-skew pairings
# ---------------------------------------------------------------------------
class TestCrcNegotiation:
    def test_advert_shape(self):
        advert = wire_advert()
        assert advert[0] == WIRE_VERSION
        assert advert_has_crc(advert)

    def test_old_style_adverts_mean_no_crc(self):
        # Pre-CRC servers echoed a bare version (or nothing): the new
        # client must read those as "binary, no trailer".
        assert not advert_has_crc(WIRE_VERSION)
        assert not advert_has_crc(None)
        assert not advert_has_crc([WIRE_VERSION])

    def test_new_client_new_server_pins_crc(self):
        with _make_server("async") as server, RpcClient(*server.address) as client:
            reply, data = client.call("echo", {"msg": "hi"}, payload=b"x" * 512)
            assert (reply["echo"], data) == ("hi", b"x" * 512)
            assert client._codec == "binary+crc"

    def test_new_client_old_server_stays_json(self):
        # Skew: a legacy JSON-only server never adverts the wire at
        # all; frames flow unchecked but correct.
        with _make_server("threaded") as server, RpcClient(*server.address) as client:
            reply, data = client.call("echo", {"msg": "hi"}, payload=b"y" * 512)
            assert (reply["echo"], data) == ("hi", b"y" * 512)
            assert client._codec == "json"

    def test_new_client_pre_crc_server_pins_plain_binary(self, monkeypatch):
        # Skew: a binary-capable server that predates the CRC flag
        # adverts a bare version int — simulate by patching the
        # server-side advert builder.
        from repro.transport import aio

        monkeypatch.setattr(aio, "wire_advert", lambda: WIRE_VERSION)
        with _make_server("async") as server, RpcClient(*server.address) as client:
            reply, data = client.call("echo", {"msg": "hi"}, payload=b"z" * 512)
            assert (reply["echo"], data) == ("hi", b"z" * 512)
            assert client._codec == "binary"

    def test_opted_out_client_new_server_pins_plain_binary(self):
        # Skew the other way: a client that does not want trailers
        # against a CRC-capable server.
        with _make_server("async") as server:
            with RpcClient(*server.address, crc=False) as client:
                reply, data = client.call("echo", {"msg": "hi"}, payload=b"w" * 512)
                assert (reply["echo"], data) == ("hi", b"w" * 512)
                assert client._codec == "binary"

    def test_forced_binary_wire_never_adds_crc(self):
        # wire="binary" skips the probe entirely, so there is no advert
        # to justify trailers; frames must stay flag-free.
        with _make_server("async") as server:
            with RpcClient(*server.address, wire="binary") as client:
                _, data = client.call("echo", {"msg": "hi"}, payload=b"v" * 64)
                assert data == b"v" * 64
                assert client._codec == "binary"


# ---------------------------------------------------------------------------
# Transport healing: corrupted frames are detected and retried
# ---------------------------------------------------------------------------
class TestTransportHealing:
    def test_corrupt_reply_detected_and_retried(self):
        payload = b"b" * 4096
        with _make_server("async") as server, RpcClient(*server.address) as client:
            client.call("echo", {"msg": "warm"})  # pin binary+crc
            before = _integrity("rpc.client", "retry")
            rule = FaultRule(layer="rpc.server", op="get_block", action="corrupt", nth=1)
            with faults.injected(rule, seed=SEED):
                reply, data = client.call("get_block", {"n": 1}, payload=payload)
            assert data == payload  # healed: retry got the clean bytes
            assert reply["ok"] is True
            assert _integrity("rpc.client", "retry") > before
            assert client._codec == "binary+crc"  # detection does not demote

    def test_corrupt_reply_on_non_idempotent_op_surfaces(self):
        with _make_server("async") as server, RpcClient(*server.address) as client:
            client.call("echo", {"msg": "warm"})
            rule = FaultRule(layer="rpc.server", op="echo", action="corrupt", times=0)
            with faults.injected(rule, seed=SEED):
                with pytest.raises(IntegrityError):
                    client.call("echo", {"msg": "hi"}, payload=b"p" * 2048)

    def test_corrupt_request_detected_by_server_and_redialed(self):
        payload = b"q" * 4096
        with _make_server("async") as server, RpcClient(*server.address) as client:
            client.call("echo", {"msg": "warm"})
            before = _integrity("rpc.server", "close")
            rule = FaultRule(layer="rpc.client", op="get_block", action="corrupt", nth=1)
            with faults.injected(rule, seed=SEED):
                _, data = client.call("get_block", {"n": 2}, payload=payload)
            assert data == payload
            assert _integrity("rpc.server", "close") > before

    def test_async_client_retries_corrupt_reply(self):
        from repro.transport.aio import AsyncRpcClient

        payload = b"a" * 4096

        async def run(addr):
            client = AsyncRpcClient(*addr)
            try:
                await client.call("echo", {"msg": "warm"})
                rule = FaultRule(
                    layer="rpc.server", op="get_block", action="corrupt", nth=1
                )
                with faults.injected(rule, seed=SEED):
                    return await client.call("get_block", {"n": 3}, payload=payload)
            finally:
                await client.close()

        with _make_server("async") as server:
            before = _integrity("rpc.client", "retry")
            reply, data = asyncio.run(run(server.address))
            assert data == payload
            assert _integrity("rpc.client", "retry") > before


# ---------------------------------------------------------------------------
# Fault injector: corrupt action, loud parsing, async delay
# ---------------------------------------------------------------------------
class TestCorruptAction:
    def test_corrupt_bytes_flips_exactly_one_bit_deterministically(self):
        injector = faults.FaultInjector(seed=SEED)
        data = bytes(256)
        out = injector.corrupt_bytes(data)
        assert len(out) == len(data)
        diff = [i for i in range(len(data)) if out[i] != data[i]]
        assert len(diff) == 1
        assert bin(out[diff[0]]).count("1") == 1  # single bit
        # Seeded: a fresh injector with the same seed flips the same bit.
        again = faults.FaultInjector(seed=SEED).corrupt_bytes(data)
        assert again == out

    def test_corrupt_bytes_empty_payload_unchanged(self):
        injector = faults.FaultInjector(seed=SEED)
        assert injector.corrupt_bytes(b"") == b""

    def test_corrupt_verdict_returned_and_counted(self):
        rule = FaultRule(layer="gridftp", op="get_block", action="corrupt", nth=1)
        with faults.injected(rule, seed=SEED) as injector:
            assert injector.fire("gridftp", "get_block", "p") == "corrupt"
            assert injector.fire("gridftp", "get_block", "p") is None  # times=1
            assert ("gridftp", "get_block", "p", "corrupt") in injector.fired


class TestLoudRuleParsing:
    def test_blank_spec_is_no_rules(self):
        assert faults.parse_rules("") == []
        assert faults.parse_rules("  ;  ") == []

    def test_unknown_action_names_the_rule(self):
        with pytest.raises(ValueError, match="explode"):
            faults.parse_rules("layer=rpc.client,action=explode")

    def test_non_integer_nth_names_the_rule(self):
        with pytest.raises(ValueError, match="nth='x'"):
            faults.parse_rules("layer=rpc.client,action=close,nth=x")

    def test_non_numeric_probability_names_the_rule(self):
        with pytest.raises(ValueError, match="probability='often'"):
            faults.parse_rules("action=close,probability=often")

    def test_non_integer_times_names_the_rule(self):
        with pytest.raises(ValueError, match="times='1.5'"):
            faults.parse_rules("action=close,times=1.5")

    def test_empty_rule_within_spec_rejected(self):
        with pytest.raises(ValueError, match="empty fault rule"):
            faults.parse_rules("layer=a,action=close;;layer=b,action=close")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="lyer"):
            faults.parse_rules("lyer=rpc.client,action=close")

    def test_bare_word_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            faults.parse_rules("close")


class TestFireAsyncDelay:
    def test_delay_rule_does_not_starve_the_loop(self):
        """A delay rule awaited via fire_async lets other tasks run."""
        rule = FaultRule(layer="gb.service", op="read", action="delay", delay=0.25)
        injector = faults.FaultInjector([rule], seed=SEED)
        ticks = []

        async def ticker():
            for _ in range(5):
                await asyncio.sleep(0.01)
                ticks.append(time.monotonic())

        async def run():
            t0 = time.monotonic()
            await asyncio.gather(
                injector.fire_async("gb.service", "read", "s"), ticker()
            )
            return t0

        t0 = run_start = asyncio.run(run())
        del run_start
        # The ticker's last tick landed while the delay was still
        # pending: the loop kept scheduling work through the sleep.
        assert ticks[-1] - t0 < 0.2


# ---------------------------------------------------------------------------
# Shared-cache poison: discard at serve time, fall through to origin
# ---------------------------------------------------------------------------
class TestSharedCachePoison:
    def _poisoned_cache(self):
        cache = _SharedStreamCache(name="s")
        data = bytes(random.Random(SEED).randbytes(8192))
        rule = FaultRule(layer="gb.cache", op="put", action="corrupt", nth=1)
        with faults.injected(rule, seed=SEED):
            cache.put(0, data)
        return cache, data

    def test_clean_run_serves(self):
        cache = _SharedStreamCache(name="s")
        cache.put(0, b"clean-bytes")
        assert cache.get(0) == b"clean-bytes"

    def test_poisoned_run_discarded_on_get(self):
        cache, _ = self._poisoned_cache()
        before = _integrity("gb.cache", "discard")
        assert cache.get(0) is None  # reader falls through to the origin
        assert _integrity("gb.cache", "discard") > before
        assert cache.get(0) is None  # entry is gone, not re-served

    def test_poisoned_run_is_a_peer_miss(self):
        cache, _ = self._poisoned_cache()
        before = _integrity("gb.cache", "discard")
        assert cache.peek_range(0, 4096) is None
        assert _integrity("gb.cache", "discard") > before

    def test_discard_queues_holder_drop(self):
        cache, data = self._poisoned_cache()
        cache.take_adv(force=True)  # drain the put-time hold
        assert cache.get(0) is None
        adv = cache.take_adv(force=True)
        assert adv is not None
        _, drops = adv
        assert [0, len(data)] in drops  # origin stops hinting peers at it

    def test_stitched_peek_stops_at_poisoned_run(self):
        cache = _SharedStreamCache(name="s")
        cache.put(0, b"a" * 1024)
        rule = FaultRule(layer="gb.cache", op="put", action="corrupt", nth=1)
        with faults.injected(rule, seed=SEED):
            cache.put(1024, b"b" * 1024)
        got = cache.peek_range(0, 2048)
        assert got == b"a" * 1024  # verified prefix only


# ---------------------------------------------------------------------------
# Copy-in self-heal: whole-file checksum catches post-wire corruption
# ---------------------------------------------------------------------------
class TestCopyInSelfHeal:
    @pytest.fixture()
    def export(self, tmp_path):
        root = tmp_path / "export"
        root.mkdir()
        payload = bytes(random.Random(SEED).randbytes(200_000))
        (root / "data.bin").write_bytes(payload)
        with GridFtpServer(root) as server:
            client = GridFtpClient(*server.address, block_size=32 * 1024)
            yield client, payload, tmp_path
            client.close()

    def test_transient_corruption_heals_by_refetch(self, export):
        client, payload, tmp_path = export
        before = _integrity("copyin", "refetch")
        # gridftp-layer corruption lands *after* the wire CRC was
        # verified — only the whole-file checksum can see it.
        rule = FaultRule(layer="gridftp", op="get_block", action="corrupt", nth=2, times=1)
        with faults.injected(rule, seed=SEED):
            f = CopyInOutFile(
                client, "data.bin", "rb", scratch_dir=tmp_path / "scratch", verify=True
            )
        try:
            assert f.read() == payload
        finally:
            f.close()
        assert _integrity("copyin", "refetch") > before

    def test_persistent_corruption_raises_after_refetches(self, export):
        client, payload, tmp_path = export
        rule = FaultRule(layer="gridftp", op="get_block", action="corrupt", times=0)
        with faults.injected(rule, seed=SEED):
            with pytest.raises(IOError, match="checksum"):
                CopyInOutFile(
                    client, "data.bin", "rb",
                    scratch_dir=tmp_path / "scratch", verify=True,
                )

    def test_clean_fetch_never_refetches(self, export):
        client, payload, tmp_path = export
        before = _integrity("copyin", "refetch")
        f = CopyInOutFile(
            client, "data.bin", "rb", scratch_dir=tmp_path / "scratch", verify=True
        )
        try:
            assert f.read() == payload
        finally:
            f.close()
        assert _integrity("copyin", "refetch") == before


# ---------------------------------------------------------------------------
# Acceptance: all six IO modes byte-identical under corruption chaos
# ---------------------------------------------------------------------------
@pytest.fixture()
def corrupt_world(tmp_path):
    hosts = HostRegistry(tmp_path / "hosts")
    for name in ("compute", "store1", "store2"):
        hosts.add_host(name)

    rng = random.Random(SEED)
    # The source stays under the 64 KiB transfer block so its copy-in
    # is single-stream: a parallel-stream clone's first frame is its
    # *probe* (JSON, unprotected), which a corrupt rule could flip
    # undetectably — the documented negotiation window, not a bug this
    # test is about.  The replica is multi-block so store1's
    # corrupt-forever rule fires mid-read and forces a failover.
    source = bytes(rng.randbytes(48 * 1024))
    replica_payload = bytes(rng.randbytes(640 * 1024))
    stream_payload = bytes(rng.randbytes(192 * 1024))

    src = hosts.host("store2").resolve("/in/source.dat")
    src.parent.mkdir(parents=True, exist_ok=True)
    src.write_bytes(source)
    for host in ("store1", "store2"):
        p = hosts.host(host).resolve("/replicas/big.dat")
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_bytes(replica_payload)

    servers = {
        name: GridFtpServer(hosts.host(name).root).start()
        for name in ("compute", "store1", "store2")
    }
    buffer_server = GridBufferServer(cache_dir=tmp_path / "cache").start()

    catalog = ReplicaCatalog()
    for host in ("store1", "store2"):
        catalog.register(
            "lfn://big", Replica(host, "/replicas/big.dat", size=len(replica_payload))
        )
    # Static costs prefer store1 — the host whose replies the chaos
    # rules corrupt persistently.
    selector = ReplicaSelector(
        catalog, static_cost=lambda s, d: 1.0 if s == "store1" else 2.0
    )

    ns = NameService(locate_buffer_server=lambda m: buffer_server.address)
    ns.add_all(
        [
            GnsRecord(
                machine="compute", path="/job/remote-in.dat", mode=IOMode.REMOTE,
                remote_host="store2", remote_path="/in/source.dat",
            ),
            GnsRecord(
                machine="compute", path="/job/copied-in.dat", mode=IOMode.COPY,
                remote_host="store2", remote_path="/in/source.dat",
            ),
            GnsRecord(
                machine="compute", path="/job/replica-remote.dat",
                mode=IOMode.REMOTE_REPLICA, logical_name="lfn://big",
            ),
            GnsRecord(
                machine="compute", path="/job/replica-local.dat",
                mode=IOMode.LOCAL_REPLICA, logical_name="lfn://big",
                local_path="/cache/big.dat",
            ),
            GnsRecord(
                machine="*", path="/job/stream.dat", mode=IOMode.BUFFER,
                buffer=BufferEndpoint(stream="corrupt-stream", cache=True),
            ),
        ]
    )
    gns = LocalGnsClient(ns)

    def ctx(machine):
        return GridContext(
            machine=machine,
            gns=gns,
            hosts=hosts,
            gridftp={name: s.address for name, s in servers.items()},
            buffer_locator=lambda m: buffer_server.address,
            selector=selector,
            scratch_dir=tmp_path / "scratch",
            io_timeout=30.0,
            prefetch=False,  # deterministic per-op fault counting
            verify_copies=True,  # copy-ins re-verify with the checksum op
        )

    fms = {name: FileMultiplexer(ctx(name)) for name in ("compute", "store2")}
    world = {
        "fms": fms,
        "servers": servers,
        "buffer_server": buffer_server,
        "payloads": {
            "source": source,
            "replica": replica_payload,
            "stream": stream_payload,
        },
    }
    yield world
    for fm in fms.values():
        fm.close()
    for s in servers.values():
        s.stop()
    buffer_server.stop()


class TestCorruptChaosSixModes:
    @pytest.mark.timeout(120)
    def test_all_modes_byte_identical_under_bit_flips(self, corrupt_world):
        fm = corrupt_world["fms"]["compute"]
        fm_store2 = corrupt_world["fms"]["store2"]
        payloads = corrupt_world["payloads"]
        store1_host, store1_port = corrupt_world["servers"]["store1"].address
        integrity_before = _counter("integrity_errors_total")
        retries_before = _integrity("rpc.client", "retry")

        # nth=2 everywhere keeps the corruption off each flow's very
        # first matching frame, which can be the unprotected JSON probe.
        rules = [
            # Replies from store1 corrupt *forever*: mode 4 must fail
            # over mid-read, mode 5's copy-in must exclude store1.
            FaultRule(
                layer="rpc.server", op="get_block",
                peer=f"{store1_host}:{store1_port}",
                action="corrupt", nth=2, times=0,
            ),
            # Transient reply corruption on every other file server.
            FaultRule(layer="rpc.server", op="get_block", action="corrupt", nth=3, times=2),
            # Grid Buffer reads: corrupted replies, healed by retry.
            FaultRule(layer="rpc.server", op="gb.read*", action="corrupt", nth=2, times=2),
            # Writer requests corrupted in flight: the server drops the
            # connection and the token-deduped retry lands once.  nth=1
            # is safe here: the writer's client pinned binary+crc on
            # gb.create, so its first write frame is already protected.
            FaultRule(layer="rpc.client", op="gb.write*", action="corrupt", nth=1, times=1),
        ]
        modes_used = []
        with faults.injected(*rules, seed=SEED) as injector:
            # 1. LOCAL
            f = fm.open("/job/local.dat", "w")
            modes_used.append(f.io_mode)
            f.write(payloads["source"][:1024])
            f.close()
            f = fm.open("/job/local.dat", "r")
            assert f.read() == payloads["source"][:1024]
            f.close()

            # 2. COPY through corrupted frames, re-verified end to end.
            f = fm.open("/job/copied-in.dat", "r")
            modes_used.append(f.io_mode)
            assert f.read() == payloads["source"]
            f.close()

            # 3. REMOTE proxy reads through corrupted replies.
            f = fm.open("/job/remote-in.dat", "r")
            modes_used.append(f.io_mode)
            assert f.read() == payloads["source"]
            f.close()

            # 4. REMOTE_REPLICA: store1 (preferred) corrupts every
            # reply; the handle must fail over to store2 and keep its
            # offset.
            f = fm.open("/job/replica-remote.dat", "r")
            modes_used.append(f.io_mode)
            got = b""
            while True:
                chunk = f.read(16 * 1024)
                if not chunk:
                    break
                got += chunk
            f.close()
            assert got == payloads["replica"]
            assert f.stats.failovers >= 1

            # 5. LOCAL_REPLICA: the copy-in must land from store2 (the
            # store1 attempt dies on integrity errors) byte-identical.
            f = fm.open("/job/replica-local.dat", "r")
            modes_used.append(f.io_mode)
            assert f.read() == payloads["replica"]
            f.close()

            # 6. BUFFER through corrupted reads and writes.
            stream = payloads["stream"]

            def produce():
                w = fm_store2.open("/job/stream.dat", "w")
                half = len(stream) // 2
                w.write(stream[:half])
                w.flush()  # force a wire write mid-stream
                w.write(stream[half:])
                w.close()

            t = threading.Thread(target=produce, daemon=True)
            t.start()
            r = fm.open("/job/stream.dat", "r")
            modes_used.append(r.io_mode)
            got = b""
            while len(got) < len(stream):
                chunk = r.read(32 * 1024)
                if not chunk:
                    break
                got += chunk
            r.close()
            t.join(timeout=15)
            assert not t.is_alive()
            assert got == stream

            fired_layers = {layer for layer, _, _, _ in injector.fired}
            assert {"rpc.server", "rpc.client"} <= fired_layers

        assert set(modes_used) == set(IOMode), "all six IO modes must run"
        # Detections happened and were healed invisibly.
        assert _counter("integrity_errors_total") > integrity_before
        assert _integrity("rpc.client", "retry") > retries_before


class TestPoisonedBroadcast:
    @pytest.mark.timeout(120)
    def test_eight_reader_broadcast_heals_poisoned_cache(self, tmp_path):
        """8 co-located readers; every cached run is poisoned at put.

        Each shared-cache hit detects the flip, discards the run, and
        re-reads from the origin — all eight readers still see the
        stream byte-identically.
        """
        payload = bytes(random.Random(SEED).randbytes(512 * 1024))
        with GridBufferServer(cache_dir=tmp_path / "cache") as server:
            ctl = GridBufferClient(*server.address)
            w = ctl.open_writer("bcast", n_readers=8, cache=True)
            w.write(payload)
            w.close()

            before = _integrity("gb.cache", "discard")
            results = {}
            errors = []

            def read_one(i):
                client = GridBufferClient(*server.address)
                try:
                    reader = client.open_reader(
                        "bcast",
                        reader_id=f"r{i}",
                        shared_cache=True,
                        read_ahead=True,
                        read_ahead_bytes=64 * 1024,
                    )
                    got = b""
                    while True:
                        chunk = reader.read(64 * 1024)
                        if not chunk:
                            break
                        got += chunk
                    reader.close()
                    results[i] = got
                except Exception as exc:  # pragma: no cover - fail loud
                    errors.append((i, exc))
                finally:
                    client.close()

            rule = FaultRule(layer="gb.cache", op="put", action="corrupt", times=0)
            with faults.injected(rule, seed=SEED):
                threads = [
                    threading.Thread(target=read_one, args=(i,)) for i in range(8)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=60)
            assert not errors, f"reader crashed: {errors!r}"
            assert len(results) == 8
            for i in range(8):
                assert results[i] == payload, f"reader {i} saw corrupted bytes"
            # At least one poisoned run was actually served-and-caught.
            assert _integrity("gb.cache", "discard") > before
            ctl.close()
