"""Workflow engine: specs, scheduling, real and simulated execution."""

from .autoplace import PlacementResult, exhaustive_placement, greedy_placement, links_from_network
from .economy import EconomyResult, QosGoal, economy_schedule, plan_cost
from .external import ExternalInput
from .localio import MemoryStageIO, run_workflow_in_memory
from .runner import GridDeployment, RealRunner, RunResult, StageIO, records_for_plan
from .scheduler import (
    Coupling,
    ExecutionPlan,
    choose_coupling,
    estimate_makespan,
    plan_workflow,
)
from .simrunner import SimReport, StageTiming, simulate_plan
from .spec import FileUse, Stage, Workflow, WorkflowError

__all__ = [
    "PlacementResult",
    "exhaustive_placement",
    "greedy_placement",
    "links_from_network",
    "EconomyResult",
    "QosGoal",
    "economy_schedule",
    "plan_cost",
    "ExternalInput",
    "MemoryStageIO",
    "run_workflow_in_memory",
    "GridDeployment",
    "RealRunner",
    "RunResult",
    "StageIO",
    "records_for_plan",
    "Coupling",
    "ExecutionPlan",
    "choose_coupling",
    "estimate_makespan",
    "plan_workflow",
    "SimReport",
    "StageTiming",
    "simulate_plan",
    "FileUse",
    "Stage",
    "Workflow",
    "WorkflowError",
]
