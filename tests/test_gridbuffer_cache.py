"""Unit + property tests for IntervalSet and BufferCache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridbuffer.cache import BufferCache, IntervalSet


class TestIntervalSet:
    def test_empty_covers_nothing(self):
        ivs = IntervalSet()
        assert not ivs.covers(0, 1)
        assert ivs.covers(5, 5)  # empty range trivially covered
        assert not ivs

    def test_single_interval(self):
        ivs = IntervalSet([(10, 20)])
        assert ivs.covers(10, 20)
        assert ivs.covers(12, 15)
        assert not ivs.covers(9, 11)
        assert not ivs.covers(19, 21)

    def test_adjacent_merge(self):
        ivs = IntervalSet()
        ivs.add(0, 10)
        ivs.add(10, 20)
        assert ivs.intervals() == [(0, 20)]

    def test_overlapping_merge(self):
        ivs = IntervalSet()
        ivs.add(0, 15)
        ivs.add(10, 30)
        ivs.add(25, 40)
        assert ivs.intervals() == [(0, 40)]

    def test_disjoint_kept_sorted(self):
        ivs = IntervalSet()
        ivs.add(30, 40)
        ivs.add(0, 10)
        assert ivs.intervals() == [(0, 10), (30, 40)]

    def test_bridge_merge(self):
        ivs = IntervalSet([(0, 10), (20, 30)])
        ivs.add(5, 25)
        assert ivs.intervals() == [(0, 30)]

    def test_first_gap(self):
        ivs = IntervalSet([(0, 10), (20, 30)])
        assert ivs.first_gap(0, 30) == (10, 20)
        assert ivs.first_gap(0, 10) is None
        assert ivs.first_gap(5, 15) == (10, 15)
        assert ivs.first_gap(40, 50) == (40, 50)

    def test_total(self):
        ivs = IntervalSet([(0, 10), (20, 25)])
        assert ivs.total() == 15

    def test_invalid_add_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet().add(5, 4)

    def test_zero_length_add_is_noop(self):
        ivs = IntervalSet()
        ivs.add(5, 5)
        assert not ivs

    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.integers(1, 50)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_set_model(self, raw):
        """Property: IntervalSet behaves exactly like a set of integers."""
        ivs = IntervalSet()
        model = set()
        for start, length in raw:
            ivs.add(start, start + length)
            model.update(range(start, start + length))
        assert ivs.total() == len(model)
        # Coverage of random probe ranges must match the model.
        for start, length in raw:
            probe = range(max(0, start - 3), start + length + 3)
            expected = all(p in model for p in probe)
            assert ivs.covers(probe.start, probe.stop) == expected
        # Intervals must be disjoint, sorted, and non-adjacent.
        spans = ivs.intervals()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 < s2

    @given(
        st.lists(st.tuples(st.integers(0, 200), st.integers(1, 40)), min_size=1, max_size=15),
        st.integers(0, 250),
        st.integers(1, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_first_gap_is_really_first(self, raw, probe_start, probe_len):
        ivs = IntervalSet()
        model = set()
        for start, length in raw:
            ivs.add(start, start + length)
            model.update(range(start, start + length))
        gap = ivs.first_gap(probe_start, probe_start + probe_len)
        missing = [p for p in range(probe_start, probe_start + probe_len) if p not in model]
        if not missing:
            assert gap is None
        else:
            assert gap is not None
            assert gap[0] == missing[0]
            assert gap[0] < gap[1]
            # Everything inside the reported gap really is missing.
            assert all(p not in model for p in range(gap[0], gap[1]))


class TestBufferCache:
    def test_store_and_load(self, tmp_path):
        cache = BufferCache(tmp_path / "c.cache")
        cache.store(0, b"hello")
        assert cache.load(0, 5) == b"hello"
        assert cache.has(1, 3)

    def test_load_gap_raises(self, tmp_path):
        cache = BufferCache(tmp_path / "c.cache")
        cache.store(0, b"ab")
        cache.store(10, b"cd")
        with pytest.raises(KeyError):
            cache.load(0, 12)

    def test_sparse_store(self, tmp_path):
        cache = BufferCache(tmp_path / "c.cache")
        cache.store(1000, b"tail")
        assert cache.load(1000, 4) == b"tail"
        assert not cache.has(0, 1)

    def test_out_of_order_store(self, tmp_path):
        cache = BufferCache(tmp_path / "c.cache")
        cache.store(5, b"world")
        cache.store(0, b"hello")
        assert cache.load(0, 10) == b"helloworld"

    def test_valid_upto(self, tmp_path):
        cache = BufferCache(tmp_path / "c.cache")
        cache.store(0, b"x" * 100)
        cache.store(200, b"y" * 10)
        assert cache.valid_upto(0) == 100
        assert cache.valid_upto(200) == 210

    def test_total_cached(self, tmp_path):
        cache = BufferCache(tmp_path / "c.cache")
        cache.store(0, b"12345")
        cache.store(3, b"678")  # overlap counted once
        assert cache.total_cached() == 6

    def test_empty_store_noop(self, tmp_path):
        cache = BufferCache(tmp_path / "c.cache")
        cache.store(0, b"")
        assert cache.total_cached() == 0

    def test_negative_offset_rejected(self, tmp_path):
        cache = BufferCache(tmp_path / "c.cache")
        with pytest.raises(ValueError):
            cache.store(-1, b"x")

    def test_close_delete(self, tmp_path):
        path = tmp_path / "c.cache"
        cache = BufferCache(path)
        cache.store(0, b"x")
        cache.close(delete=True)
        assert not path.exists()
        cache.close(delete=True)  # idempotent

    def test_fresh_cache_truncates_existing_file(self, tmp_path):
        path = tmp_path / "c.cache"
        path.write_bytes(b"stale data")
        cache = BufferCache(path)
        assert cache.total_cached() == 0
        assert path.stat().st_size == 0
