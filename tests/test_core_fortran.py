"""Tests for Fortran unformatted sequential record handling."""

import io
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fortran import (
    FortranRecordReader,
    FortranRecordWriter,
    translate_fortran_stream,
)
from repro.core.heterogeneity import FieldType, HeterogeneityError, RecordSchema


def schema() -> RecordSchema:
    return RecordSchema([FieldType("step", "int32"), FieldType("value", "float64")])


class TestFraming:
    def test_roundtrip(self):
        buf = io.BytesIO()
        w = FortranRecordWriter(buf)
        w.write_record(b"first")
        w.write_record(b"second record")
        buf.seek(0)
        r = FortranRecordReader(buf)
        assert r.read_record() == b"first"
        assert r.read_record() == b"second record"
        assert r.read_record() is None
        assert r.records_read == 2

    def test_wire_format_little_endian(self):
        buf = io.BytesIO()
        FortranRecordWriter(buf, byte_order="little").write_record(b"abc")
        raw = buf.getvalue()
        assert raw == struct.pack("<I", 3) + b"abc" + struct.pack("<I", 3)

    def test_wire_format_big_endian(self):
        buf = io.BytesIO()
        FortranRecordWriter(buf, byte_order="big").write_record(b"abc")
        raw = buf.getvalue()
        assert raw == struct.pack(">I", 3) + b"abc" + struct.pack(">I", 3)

    def test_iteration(self):
        buf = io.BytesIO()
        w = FortranRecordWriter(buf)
        for i in range(5):
            w.write_record(bytes([i]) * (i + 1))
        buf.seek(0)
        records = list(FortranRecordReader(buf))
        assert [len(r) for r in records] == [1, 2, 3, 4, 5]

    def test_truncated_payload_detected(self):
        buf = io.BytesIO(struct.pack("<I", 100) + b"short")
        with pytest.raises(HeterogeneityError, match="truncated"):
            FortranRecordReader(buf).read_record()

    def test_marker_mismatch_detected(self):
        buf = io.BytesIO(struct.pack("<I", 3) + b"abc" + struct.pack("<I", 99))
        with pytest.raises(HeterogeneityError, match="marker mismatch"):
            FortranRecordReader(buf).read_record()

    def test_wrong_byte_order_detected_via_limit(self):
        """Reading LE markers as BE gives an absurd length -> clear error."""
        buf = io.BytesIO()
        FortranRecordWriter(buf, byte_order="little").write_record(b"x" * 300)
        buf.seek(0)
        with pytest.raises(HeterogeneityError, match="byte order"):
            FortranRecordReader(buf, byte_order="big", max_record=1 << 20).read_record()

    def test_invalid_order_rejected(self):
        with pytest.raises(HeterogeneityError):
            FortranRecordWriter(io.BytesIO(), byte_order="pdp")


class TestSchemaValues:
    def test_values_roundtrip_native(self):
        buf = io.BytesIO()
        w = FortranRecordWriter(buf)
        w.write_values(schema(), {"step": 3, "value": 2.5})
        buf.seek(0)
        rec = FortranRecordReader(buf).read_values(schema())
        assert rec == {"step": 3, "value": 2.5}

    def test_values_cross_endian(self):
        """A 'big-endian machine' writes; a little-endian reader decodes."""
        buf = io.BytesIO()
        FortranRecordWriter(buf, byte_order="big").write_values(
            schema(), {"step": 7, "value": -1.25}
        )
        # The wire really is big-endian:
        raw = buf.getvalue()
        assert raw[:4] == struct.pack(">I", 12)
        assert struct.unpack(">id", raw[4:16]) == (7, -1.25)
        buf.seek(0)
        rec = FortranRecordReader(buf, byte_order="big").read_values(schema())
        assert rec == {"step": 7, "value": -1.25}

    def test_values_eof_returns_none(self):
        assert FortranRecordReader(io.BytesIO()).read_values(schema()) is None


class TestTranslation:
    def test_translate_le_to_be_and_back(self):
        src = io.BytesIO()
        w = FortranRecordWriter(src, byte_order="little")
        for i in range(4):
            w.write_values(schema(), {"step": i, "value": i * 0.5})
        src.seek(0)
        mid = io.BytesIO()
        n = translate_fortran_stream(src, mid, schema(), "little", "big")
        assert n == 4
        mid.seek(0)
        back = io.BytesIO()
        translate_fortran_stream(mid, back, schema(), "big", "little")
        assert back.getvalue() == src.getvalue()

    def test_translate_same_order_is_identity(self):
        src = io.BytesIO()
        w = FortranRecordWriter(src)
        w.write_values(schema(), {"step": 1, "value": 1.0})
        src.seek(0)
        dst = io.BytesIO()
        translate_fortran_stream(src, dst, schema(), "little", "little")
        assert dst.getvalue() == src.getvalue()

    def test_max_records_limit(self):
        src = io.BytesIO()
        w = FortranRecordWriter(src)
        for i in range(10):
            w.write_values(schema(), {"step": i, "value": 0.0})
        src.seek(0)
        dst = io.BytesIO()
        assert translate_fortran_stream(src, dst, schema(), "little", "little", max_records=3) == 3

    @given(
        values=st.lists(
            st.tuples(
                st.integers(min_value=-(2**31), max_value=2**31 - 1),
                st.floats(allow_nan=False, allow_infinity=False, width=64),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_translation_preserves_values(self, values):
        s = schema()
        src = io.BytesIO()
        w = FortranRecordWriter(src, byte_order="little")
        for step, value in values:
            w.write_values(s, {"step": step, "value": value})
        src.seek(0)
        dst = io.BytesIO()
        translate_fortran_stream(src, dst, s, "little", "big")
        dst.seek(0)
        r = FortranRecordReader(dst, byte_order="big")
        got = []
        while True:
            rec = r.read_values(s)
            if rec is None:
                break
            got.append((rec["step"], rec["value"]))
        assert got == [(s_, v) for s_, v in values]


class TestThroughGridBuffer:
    def test_fortran_records_over_a_stream(self, buffer_server):
        """Fortran framing works over a live Grid Buffer stream."""
        from repro.gridbuffer.client import GridBufferClient

        client = GridBufferClient(*buffer_server.address)
        bw = client.open_writer("fortran", cache=True)
        w = FortranRecordWriter(bw)
        for i in range(20):
            w.write_values(schema(), {"step": i, "value": float(i) ** 0.5})
        bw.close()
        br = client.open_reader("fortran", read_timeout=10)
        import io as _io

        r = FortranRecordReader(_io.BufferedReader(br))
        steps = []
        while True:
            rec = r.read_values(schema())
            if rec is None:
                break
            steps.append(rec["step"])
        assert steps == list(range(20))
        client.close()
