"""Integration tests for the File Multiplexer: all six IO modes."""

import threading

import pytest

from repro.core.multiplexer import FileMultiplexer, FMError, GridContext
from repro.core.replica import ReplicaSelector
from repro.gns.records import BufferEndpoint, GnsRecord, IOMode
from repro.grid.nws import Measurement, NetworkWeatherService
from repro.grid.replica_catalog import Replica, ReplicaCatalog


@pytest.fixture()
def grid(hosts, ftp_beta, buffer_server, name_service, gns, tmp_path):
    """A fully wired two-machine grid; returns (fm_alpha, fm_beta, env)."""
    beta = hosts.host("beta")
    beta.resolve("/exports/data.bin").parent.mkdir(parents=True, exist_ok=True)
    beta.resolve("/exports/data.bin").write_bytes(b"B" * 5000)

    catalog = ReplicaCatalog()
    nws = NetworkWeatherService()
    selector = ReplicaSelector(catalog, nws)

    def ctx(machine):
        return GridContext(
            machine=machine,
            gns=gns,
            hosts=hosts,
            gridftp={"beta": ftp_beta.address},
            buffer_locator=lambda m: buffer_server.address,
            selector=selector,
            scratch_dir=tmp_path / "scratch",
        )

    fm_a = FileMultiplexer(ctx("alpha"))
    fm_b = FileMultiplexer(ctx("beta"))
    yield {
        "fm_alpha": fm_a,
        "fm_beta": fm_b,
        "ns": name_service,
        "catalog": catalog,
        "nws": nws,
        "hosts": hosts,
    }
    fm_a.close()
    fm_b.close()


class TestLocalMode:
    def test_default_open_is_local(self, grid):
        fm = grid["fm_alpha"]
        f = fm.open("/plain.txt", "w")
        assert f.io_mode is IOMode.LOCAL
        f.write(b"x")
        f.close()
        assert grid["hosts"].host("alpha").resolve("/plain.txt").read_bytes() == b"x"

    def test_local_path_rewrite(self, grid):
        grid["ns"].add(
            GnsRecord(machine="alpha", path="/virtual.txt", mode=IOMode.LOCAL, local_path="/real.txt")
        )
        fm = grid["fm_alpha"]
        f = fm.open("/virtual.txt", "w")
        f.write(b"moved")
        f.close()
        assert grid["hosts"].host("alpha").resolve("/real.txt").read_bytes() == b"moved"


class TestRemoteModes:
    def test_remote_proxy_read(self, grid):
        grid["ns"].add(
            GnsRecord(
                machine="alpha",
                path="/r/data.bin",
                mode=IOMode.REMOTE,
                remote_host="beta",
                remote_path="/exports/data.bin",
            )
        )
        f = grid["fm_alpha"].open("/r/data.bin", "r")
        assert f.io_mode is IOMode.REMOTE
        assert f.read(10) == b"B" * 10
        f.close()

    def test_copy_in_read(self, grid):
        grid["ns"].add(
            GnsRecord(
                machine="alpha",
                path="/c/data.bin",
                mode=IOMode.COPY,
                remote_host="beta",
                remote_path="/exports/data.bin",
            )
        )
        f = grid["fm_alpha"].open("/c/data.bin", "r")
        assert len(f.read()) == 5000
        f.close()

    def test_copy_out_on_close(self, grid):
        grid["ns"].add(
            GnsRecord(
                machine="alpha",
                path="/c/out.bin",
                mode=IOMode.COPY,
                remote_host="beta",
                remote_path="/exports/out.bin",
            )
        )
        f = grid["fm_alpha"].open("/c/out.bin", "w")
        f.write(b"pushed")
        f.close()
        assert grid["hosts"].host("beta").resolve("/exports/out.bin").read_bytes() == b"pushed"


class TestReplicaModes:
    def _register(self, grid, data_alpha=None):
        beta = grid["hosts"].host("beta")
        beta.resolve("/rep/fileA").parent.mkdir(parents=True, exist_ok=True)
        beta.resolve("/rep/fileA").write_bytes(b"beta-replica")
        grid["catalog"].register("lfn://fileA", Replica("beta", "/rep/fileA", size=12))
        if data_alpha is not None:
            alpha = grid["hosts"].host("alpha")
            alpha.resolve("/rep/fileA").parent.mkdir(parents=True, exist_ok=True)
            alpha.resolve("/rep/fileA").write_bytes(data_alpha)
            grid["catalog"].register("lfn://fileA", Replica("alpha", "/rep/fileA", size=len(data_alpha)))
        grid["nws"].record("beta", "alpha", Measurement(time=0, bandwidth=1e6, latency=0.05))

    def test_remote_replica_read(self, grid):
        self._register(grid)
        grid["ns"].add(
            GnsRecord(
                machine="alpha",
                path="/rep/fileA",
                mode=IOMode.REMOTE_REPLICA,
                logical_name="lfn://fileA",
            )
        )
        f = grid["fm_alpha"].open("/rep/fileA", "r")
        assert f.read() == b"beta-replica"
        f.close()

    def test_local_replica_preferred_when_present(self, grid):
        self._register(grid, data_alpha=b"alpha-replica")
        grid["ns"].add(
            GnsRecord(
                machine="alpha",
                path="/rep/fileA",
                mode=IOMode.REMOTE_REPLICA,
                logical_name="lfn://fileA",
            )
        )
        f = grid["fm_alpha"].open("/rep/fileA", "r")
        assert f.read() == b"alpha-replica"
        f.close()

    def test_local_replica_mode_copies_in(self, grid):
        self._register(grid)
        grid["ns"].add(
            GnsRecord(
                machine="alpha",
                path="/rep/fileA",
                mode=IOMode.LOCAL_REPLICA,
                logical_name="lfn://fileA",
                local_path="/cache/fileA",
            )
        )
        f = grid["fm_alpha"].open("/rep/fileA", "r")
        assert f.read() == b"beta-replica"
        f.close()
        assert grid["hosts"].host("alpha").resolve("/cache/fileA").exists()

    def test_replica_write_rejected(self, grid):
        self._register(grid)
        grid["ns"].add(
            GnsRecord(
                machine="alpha",
                path="/rep/fileA",
                mode=IOMode.REMOTE_REPLICA,
                logical_name="lfn://fileA",
            )
        )
        with pytest.raises(FMError, match="read-only"):
            grid["fm_alpha"].open("/rep/fileA", "w")

    def test_missing_selector_raises(self, grid, gns, hosts):
        grid["ns"].add(
            GnsRecord(
                machine="alpha",
                path="/rep/x",
                mode=IOMode.REMOTE_REPLICA,
                logical_name="lfn://x",
            )
        )
        fm = FileMultiplexer(GridContext(machine="alpha", gns=gns, hosts=hosts))
        with pytest.raises(FMError, match="ReplicaSelector"):
            fm.open("/rep/x", "r")


class TestBufferMode:
    def test_writer_reader_across_machines(self, grid):
        grid["ns"].add(
            GnsRecord(
                machine="*",
                path="/stream/live",
                mode=IOMode.BUFFER,
                buffer=BufferEndpoint(stream="live", cache=True),
            )
        )

        def produce():
            w = grid["fm_beta"].open("/stream/live", "w")
            for i in range(5):
                w.write(bytes([i]) * 100)
            w.close()

        t = threading.Thread(target=produce)
        t.start()
        r = grid["fm_alpha"].open("/stream/live", "r")
        assert r.io_mode is IOMode.BUFFER
        data = bytearray()
        while True:
            chunk = r.read(100)
            if not chunk:
                break
            data.extend(chunk)
        assert len(data) == 500
        r.seek(0)
        assert r.read(100) == b"\x00" * 100  # cache re-read
        r.close()
        t.join(timeout=10)

    def test_bidirectional_mode_rejected(self, grid):
        grid["ns"].add(
            GnsRecord(
                machine="*",
                path="/stream/x",
                mode=IOMode.BUFFER,
                buffer=BufferEndpoint(stream="x"),
            )
        )
        with pytest.raises(FMError, match="unidirectional"):
            grid["fm_alpha"].open("/stream/x", "r+")


class TestStatsAndDispatch:
    def test_open_stats_recorded(self, grid):
        fm = grid["fm_alpha"]
        f = fm.open("/stats.bin", "w")
        f.write(b"12345")
        f.close()
        f = fm.open("/stats.bin", "r")
        f.read(3)
        f.seek(0)
        f.read(2)
        f.close()
        write_stats = fm.open_history[-2]
        read_stats = fm.open_history[-1]
        assert write_stats.bytes_written == 5
        assert read_stats.bytes_read == 5
        assert read_stats.seeks == 1
        assert read_stats.io_mode == "local"

    def test_each_open_independent_choice(self, grid):
        """Section 3.1: 'one file may be local and another remote'."""
        grid["ns"].add(
            GnsRecord(
                machine="alpha",
                path="/mix/remote.bin",
                mode=IOMode.REMOTE,
                remote_host="beta",
                remote_path="/exports/data.bin",
            )
        )
        fm = grid["fm_alpha"]
        local = fm.open("/mix/local.bin", "w")
        remote = fm.open("/mix/remote.bin", "r")
        assert local.io_mode is IOMode.LOCAL
        assert remote.io_mode is IOMode.REMOTE
        local.close()
        remote.close()

    def test_missing_gridftp_locator_raises(self, grid, gns, hosts):
        grid["ns"].add(
            GnsRecord(
                machine="alpha",
                path="/r/x",
                mode=IOMode.REMOTE,
                remote_host="beta",
                remote_path="/x",
            )
        )
        fm = FileMultiplexer(GridContext(machine="alpha", gns=gns, hosts=hosts))
        with pytest.raises(FMError, match="no GridFTP locator"):
            fm.open("/r/x", "r")
