"""Microbenchmarks of the real components (not paper tables).

Timed with pytest-benchmark's normal statistics so regressions in the
hot paths (framing, buffer service, FM dispatch, DES engine) are
visible across commits.  The pipelined remote-IO A/B additionally
emits ``BENCH_remote_io.json`` at the repo root so the prefetch /
parallel-stream trajectory is tracked from commit to commit.
"""

import hashlib
import json
import time
from pathlib import Path

import pytest

from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.core.remote_client import RemoteFileClient
from repro.gns.client import LocalGnsClient
from repro.gns.server import NameService
from repro.gridbuffer.service import GridBufferService
from repro.sim.engine import Environment
from repro.transport.gridftp import GridFtpClient, GridFtpServer
from repro.transport.inmem import HostRegistry

PAYLOAD = b"x" * 4096


def test_gridbuffer_service_write_read_pair(benchmark):
    svc = GridBufferService(default_capacity=None)
    svc.create_stream("s")
    svc.register_reader("s", "r")
    state = {"offset": 0}

    def op():
        off = state["offset"]
        svc.write("s", off, PAYLOAD)
        svc.read("s", "r", off, len(PAYLOAD))
        state["offset"] = off + len(PAYLOAD)

    benchmark(op)


def test_fm_local_open_read_close(benchmark, tmp_path):
    hosts = HostRegistry(tmp_path)
    hosts.add_host("m")
    fm = FileMultiplexer(
        GridContext(machine="m", gns=LocalGnsClient(NameService()), hosts=hosts)
    )
    f = fm.open("/bench.bin", "w")
    f.write(PAYLOAD * 16)
    f.close()

    def op():
        f = fm.open("/bench.bin", "r")
        f.read(4096)
        f.close()

    benchmark(op)
    fm.close()


def test_plain_open_baseline(benchmark, tmp_path):
    """Baseline for the FM overhead comparison above."""
    target = tmp_path / "plain.bin"
    target.write_bytes(PAYLOAD * 16)

    def op():
        with open(target, "rb") as f:
            f.read(4096)

    benchmark(op)


def test_des_engine_event_throughput(benchmark):
    def run_sim():
        env = Environment()

        def proc(env):
            for _ in range(1000):
                yield env.timeout(1.0)

        for _ in range(10):
            env.process(proc(env))
        env.run()
        return env.now

    result = benchmark(run_sim)
    assert result == 1000.0


def test_gns_resolution(benchmark):
    from repro.gns.records import GnsRecord, IOMode

    ns = NameService()
    for i in range(200):
        ns.add(GnsRecord(machine=f"m{i % 10}", path=f"/data/file{i}.dat", mode=IOMode.LOCAL))
    ns.add(GnsRecord(machine="*", path="/data/*", mode=IOMode.LOCAL))

    def op():
        return ns.resolve("m3", "/data/file33.dat")

    record = benchmark(op)
    assert record.path == "/data/file33.dat"


# -- pipelined remote IO over a simulated-latency link ---------------------

LINK_LATENCY = 0.005          # one-way seconds injected per RPC
AB_BLOCK = 8192
AB_FILE_BYTES = AB_BLOCK * 48  # 384 KiB → 48 block RPCs unpipelined


def _drain(f, chunk=AB_BLOCK):
    h = hashlib.sha256()
    total = 0
    while True:
        data = f.read(chunk)
        if not data:
            break
        h.update(data)
        total += len(data)
    return total, h.hexdigest()


@pytest.mark.slow
def test_remote_io_prefetch_ab(tmp_path, obs_snapshot):
    """Sequential proxy read, prefetch on vs off, over a 5 ms link.

    Acceptance: ≥ 2x throughput with the pipeline engaged
    (``prefetch_hits > 0``) and byte-identical data either way.
    """
    root = tmp_path / "export"
    root.mkdir()
    payload = bytes(i % 256 for i in range(AB_FILE_BYTES))
    (root / "ab.bin").write_bytes(payload)
    want = hashlib.sha256(payload).hexdigest()

    results = {}
    with GridFtpServer(root, simulated_latency=LINK_LATENCY) as server:
        for label, prefetch in (("prefetch_off", False), ("prefetch_on", True)):
            client = GridFtpClient(*server.address, block_size=AB_BLOCK)
            remote = RemoteFileClient(client, scratch_dir=tmp_path / f"scratch-{label}")
            f = remote.open_proxy("/ab.bin", "r", block_size=AB_BLOCK, prefetch=prefetch)
            t0 = time.perf_counter()
            total, digest = _drain(f)
            elapsed = time.perf_counter() - t0
            f.close()
            client.close()
            assert total == AB_FILE_BYTES
            assert digest == want, f"{label}: corrupted transfer"
            results[label] = {
                "seconds": elapsed,
                "mib_per_s": AB_FILE_BYTES / elapsed / (1 << 20),
                "rpc_reads": f.rpc_reads,
                "prefetch_hits": f.prefetch_hits,
                "prefetch_wasted": f.prefetch_wasted,
            }

        # Parallel-stream store A/B on the same link.
        src = tmp_path / "upload.bin"
        src.write_bytes(payload)
        for label, streams in (("store_1_stream", 1), ("store_4_streams", 4)):
            with GridFtpClient(
                *server.address, block_size=AB_BLOCK, parallel_streams=streams
            ) as client:
                t0 = time.perf_counter()
                n = client.store_file(src, f"/{label}.bin")
                elapsed = time.perf_counter() - t0
            assert n == AB_FILE_BYTES
            stored = (root / f"{label}.bin").read_bytes()
            assert hashlib.sha256(stored).hexdigest() == want
            results[label] = {
                "seconds": elapsed,
                "mib_per_s": AB_FILE_BYTES / elapsed / (1 << 20),
            }

    read_speedup = results["prefetch_off"]["seconds"] / results["prefetch_on"]["seconds"]
    store_speedup = (
        results["store_1_stream"]["seconds"] / results["store_4_streams"]["seconds"]
    )
    assert results["prefetch_on"]["prefetch_hits"] > 0, "pipeline never engaged"
    assert read_speedup >= 2.0, f"prefetch speedup only {read_speedup:.2f}x"

    out = {
        "bench": "remote_io_pipelining",
        "link_latency_s": LINK_LATENCY,
        "file_bytes": AB_FILE_BYTES,
        "block_size": AB_BLOCK,
        "read_speedup": round(read_speedup, 3),
        "store_speedup": round(store_speedup, 3),
        "results": {
            k: {kk: (round(vv, 5) if isinstance(vv, float) else vv) for kk, vv in v.items()}
            for k, v in results.items()
        },
    }
    if obs_snapshot is not None:
        out["metrics"] = obs_snapshot()
    (Path(__file__).resolve().parents[1] / "BENCH_remote_io.json").write_text(
        json.dumps(out, indent=2) + "\n"
    )
