"""Heterogeneity handling: byte order and neutral record encoding.

Section 3.3: the FM "handles formatted ASCII data, and binary data only
if the two end points have the same byte ordering.  However, we are
experimenting with a scheme for describing the record structure so that
the FM can reorder the bytes dynamically.  The data would then be
mapped into a neutral form as is done in XDR."

This module implements that experiment: a :class:`RecordSchema`
describes a fixed binary record (field names + scalar types); records
are converted to/from a big-endian *neutral form* (XDR's convention),
so a little-endian writer and big-endian reader interoperate.  ASCII
("text") payloads pass through untouched, and same-endian binary can be
declared pass-through too.
"""

from __future__ import annotations

import struct
import sys
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "NATIVE_BYTE_ORDER",
    "FieldType",
    "RecordSchema",
    "HeterogeneityError",
    "needs_swap",
]

#: "little" or "big" for the machine running this process.
NATIVE_BYTE_ORDER = sys.byteorder


class HeterogeneityError(ValueError):
    """Schema mismatch or undecodable payload."""


# XDR-ish scalar vocabulary: name -> struct code (sizes per XDR where
# applicable; int is 4 bytes, hyper is 8, float 4, double 8).
_TYPES: Dict[str, str] = {
    "int32": "i",
    "uint32": "I",
    "int64": "q",
    "uint64": "Q",
    "float32": "f",
    "float64": "d",
    "char": "c",
}


@dataclass(frozen=True)
class FieldType:
    """One field of a record: a named scalar or fixed array."""

    name: str
    kind: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _TYPES:
            raise HeterogeneityError(
                f"unknown field kind {self.kind!r}; expected one of {sorted(_TYPES)}"
            )
        if self.count < 1:
            raise HeterogeneityError("count must be >= 1")

    @property
    def struct_code(self) -> str:
        code = _TYPES[self.kind]
        return code if self.count == 1 else f"{self.count}{code}"


class RecordSchema:
    """A fixed-layout binary record usable for byte-order translation.

    >>> schema = RecordSchema([FieldType("step", "int32"),
    ...                        FieldType("values", "float64", 3)])
    >>> raw = schema.pack_native({"step": 7, "values": (1.0, 2.0, 3.0)})
    >>> neutral = schema.to_neutral(raw)
    >>> schema.unpack_native(schema.from_neutral(neutral))["step"]
    7
    """

    def __init__(self, fields: Sequence[FieldType]):
        if not fields:
            raise HeterogeneityError("schema needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise HeterogeneityError(f"duplicate field names in {names}")
        self.fields = list(fields)
        body = "".join(f.struct_code for f in self.fields)
        self._le = struct.Struct("<" + body)
        self._be = struct.Struct(">" + body)
        self._native = self._le if sys.byteorder == "little" else self._be
        self._neutral = self._be  # big-endian, XDR-style

    @property
    def record_size(self) -> int:
        return self._native.size

    # -- value <-> native bytes --------------------------------------------
    def _flatten(self, record: Dict[str, object]) -> List[object]:
        flat: List[object] = []
        for f in self.fields:
            if f.name not in record:
                raise HeterogeneityError(f"record missing field {f.name!r}")
            value = record[f.name]
            if f.count == 1:
                flat.append(value)
            else:
                seq = list(value)  # type: ignore[arg-type]
                if len(seq) != f.count:
                    raise HeterogeneityError(
                        f"field {f.name!r} expects {f.count} values, got {len(seq)}"
                    )
                flat.extend(seq)
        return flat

    def _unflatten(self, flat: Tuple[object, ...]) -> Dict[str, object]:
        out: Dict[str, object] = {}
        idx = 0
        for f in self.fields:
            if f.count == 1:
                out[f.name] = flat[idx]
                idx += 1
            else:
                out[f.name] = tuple(flat[idx : idx + f.count])
                idx += f.count
        return out

    def pack_native(self, record: Dict[str, object]) -> bytes:
        return self._native.pack(*self._flatten(record))

    def unpack_native(self, raw: bytes) -> Dict[str, object]:
        if len(raw) != self._native.size:
            raise HeterogeneityError(
                f"expected {self._native.size} bytes, got {len(raw)}"
            )
        return self._unflatten(self._native.unpack(raw))

    # -- native bytes <-> neutral (big-endian) bytes ------------------------------
    def to_neutral(self, raw: bytes) -> bytes:
        """Re-encode one or more native records into neutral byte order."""
        return self._transcode(raw, self._native, self._neutral)

    def from_neutral(self, raw: bytes) -> bytes:
        """Re-encode neutral records into this machine's native order."""
        return self._transcode(raw, self._neutral, self._native)

    def convert(self, raw: bytes, src_order: str, dst_order: str) -> bytes:
        """Re-encode records between two explicit byte orders."""
        structs = {"little": self._le, "big": self._be}
        for order in (src_order, dst_order):
            if order not in structs:
                raise HeterogeneityError(
                    f"byte order must be 'little' or 'big', got {order!r}"
                )
        if src_order == dst_order:
            if len(raw) % structs[src_order].size != 0:
                raise HeterogeneityError(
                    f"payload length {len(raw)} is not a multiple of record size"
                )
            return raw
        return self._transcode(raw, structs[src_order], structs[dst_order])

    @staticmethod
    def _transcode(raw: bytes, src: struct.Struct, dst: struct.Struct) -> bytes:
        if len(raw) % src.size != 0:
            raise HeterogeneityError(
                f"payload length {len(raw)} is not a multiple of record size {src.size}"
            )
        out = bytearray()
        for off in range(0, len(raw), src.size):
            out += dst.pack(*src.unpack_from(raw, off))
        return bytes(out)


def needs_swap(writer_order: str, reader_order: str) -> bool:
    """Whether binary data must be re-ordered between two endpoints.

    The pre-schema behaviour in the paper: same order passes through,
    different orders are only usable via a schema (or ASCII).
    """
    for order in (writer_order, reader_order):
        if order not in ("little", "big"):
            raise HeterogeneityError(f"byte order must be 'little' or 'big', got {order!r}")
    return writer_order != reader_order
