"""Tests for the climate case study (models + end-to-end equivalence)."""

import io as _io

import numpy as np
import pytest

from repro.apps.climate.ccam import (
    GlobalModel,
    StretchedGrid,
    read_history_header,
    write_history_header,
)
from repro.apps.climate.cc2lam import (
    LamDomain,
    interpolate_to_domain,
    read_lam_header,
    write_lam_header,
)
from repro.apps.climate.darlam import RegionalModel
from repro.apps.climate.pipeline import climate_sim_workflow, climate_workflow
from repro.workflow.runner import RealRunner
from repro.workflow.scheduler import plan_workflow

PARAMS = {"nlon": 48, "nlat": 24, "nsteps": 6, "lam_nx": 36, "lam_ny": 30, "lam_refine": 2}


class TestStretchedGrid:
    def test_axes_monotone(self):
        grid = StretchedGrid(nlon=64, nlat=32)
        assert np.all(np.diff(grid.lons()) > 0)
        assert np.all(np.diff(grid.lats()) > 0)

    def test_stretching_concentrates_near_focus(self):
        grid = StretchedGrid(nlon=96, nlat=48, focus_lon=135.0, stretch=2.0)
        lons = grid.lons()
        spacing = np.diff(lons)
        near = spacing[np.argmin(np.abs(lons[:-1] - 135.0))]
        far = spacing[np.argmin(np.abs(lons[:-1] - 315.0))]
        assert near < far

    def test_bounds_respected(self):
        grid = StretchedGrid()
        assert grid.lons().min() >= 0.0 and grid.lons().max() <= 360.0
        assert grid.lats().min() >= -90.0 and grid.lats().max() <= 90.0

    def test_too_small_axis_rejected(self):
        with pytest.raises(ValueError):
            StretchedGrid(nlon=2).lons()


class TestGlobalModel:
    def test_step_conserves_shape_and_stays_finite(self):
        model = GlobalModel(StretchedGrid(nlon=48, nlat=24))
        for _ in range(20):
            field = model.step()
        assert field.shape == (24, 48)
        assert np.all(np.isfinite(field))

    def test_diffusion_smooths(self):
        """With winds off, the diffusion operator must reduce roughness."""
        model = GlobalModel(StretchedGrid(nlon=48, nlat=24), diffusivity=1.0)
        model.u[:] = 0.0
        model.v[:] = 0.0
        rough_before = np.abs(np.diff(model.field, axis=1)).mean()
        for _ in range(30):
            model.step()
        rough_after = np.abs(np.diff(model.field, axis=1)).mean()
        assert rough_after < rough_before

    def test_advection_diffusion_bounded(self):
        """The full stepper stays bounded over a long run (stability)."""
        model = GlobalModel(StretchedGrid(nlon=48, nlat=24), diffusivity=1.0)
        start_max = np.abs(model.field).max()
        for _ in range(200):
            model.step()
        assert np.abs(model.field).max() < 2 * start_max

    def test_deterministic_given_seed(self):
        a = GlobalModel(StretchedGrid(nlon=32, nlat=16), seed=3)
        b = GlobalModel(StretchedGrid(nlon=32, nlat=16), seed=3)
        for _ in range(5):
            a.step()
            b.step()
        assert np.array_equal(a.field, b.field)

    def test_history_header_roundtrip(self):
        buf = _io.BytesIO()
        write_history_header(buf, 96, 48, 240)
        buf.seek(0)
        assert read_history_header(buf) == (96, 48, 240)

    def test_bad_magic_rejected(self):
        buf = _io.BytesIO(b"WRONGMAGIC\x00\x00\x00\x00")
        with pytest.raises(ValueError):
            read_history_header(buf)


class TestCc2lam:
    def test_domain_validation(self):
        with pytest.raises(ValueError):
            LamDomain(lon_min=160, lon_max=110)
        with pytest.raises(ValueError):
            LamDomain(nx=2)

    def test_interpolation_exact_on_linear_field(self):
        """Bilinear interpolation reproduces an affine field exactly."""
        grid = StretchedGrid(nlon=64, nlat=32)
        lons, lats = grid.lons(), grid.lats()
        lon2d, lat2d = np.meshgrid(lons, lats)
        field = 2.0 * lon2d + 0.5 * lat2d + 3.0
        domain = LamDomain(nx=16, ny=12)
        out = interpolate_to_domain(field, lons, lats, domain)
        tgt_lon, tgt_lat = np.meshgrid(domain.lons(), domain.lats())
        expected = 2.0 * tgt_lon + 0.5 * tgt_lat + 3.0
        assert np.allclose(out, expected, rtol=1e-9)

    def test_lam_header_roundtrip(self):
        buf = _io.BytesIO()
        write_lam_header(buf, 72, 60, 240)
        buf.seek(0)
        assert read_lam_header(buf) == (72, 60, 240)

    def test_interpolated_values_within_source_range(self):
        grid = StretchedGrid(nlon=48, nlat=24)
        model = GlobalModel(grid)
        domain = LamDomain(nx=20, ny=16)
        out = interpolate_to_domain(model.field, grid.lons(), grid.lats(), domain)
        assert out.min() >= model.field.min() - 1e-9
        assert out.max() <= model.field.max() + 1e-9


class TestRegionalModel:
    def test_refinement_dimensions(self):
        model = RegionalModel(nx=10, ny=8, refine=3)
        assert (model.ny, model.nx) == (24, 30)

    def test_boundary_forcing_applied(self):
        model = RegionalModel(nx=10, ny=8, refine=2, nudge=0.0)
        driving = np.full((8, 10), 5.0)
        model.step(driving)  # initialises
        field = model.step(driving * 2)
        assert np.allclose(field[0, :], 10.0)
        assert np.allclose(field[-1, :], 10.0)

    def test_nudging_pulls_toward_target(self):
        model = RegionalModel(nx=10, ny=8, refine=2, nudge=0.5)
        model.step(np.zeros((8, 10)))
        for _ in range(20):
            field = model.step(np.full((8, 10), 10.0))
        assert abs(field.mean() - 10.0) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RegionalModel(nx=4, ny=4, refine=0)
        with pytest.raises(ValueError):
            RegionalModel(nx=4, ny=4, nudge=1.5)


class TestEndToEnd:
    def _run(self, placement, coupling):
        wf = climate_workflow()
        plan = plan_workflow(wf, placement, coupling=coupling)
        runner = RealRunner(plan, params=PARAMS, stage_timeout=120)
        result = runner.run()
        assert result.ok, result.errors
        host = runner.deployment.hosts.host(placement["darlam"])
        data = host.resolve("/wf/climate/darlam_out").read_bytes()
        runner.deployment.stop()
        return data

    @pytest.mark.slow
    def test_files_and_buffers_byte_identical(self):
        """The FM guarantee: coupling choice cannot change results."""
        same = {s: "m1" for s in ("ccam", "cc2lam", "darlam")}
        split = {"ccam": "m1", "cc2lam": "m1", "darlam": "m2"}
        out_local = self._run(same, {"ccam_hist": "local", "lam_input": "local"})
        out_buffer = self._run(split, {"ccam_hist": "buffer", "lam_input": "buffer"})
        out_copy = self._run(split, {"ccam_hist": "local", "lam_input": "copy"})
        assert out_local == out_buffer == out_copy
        assert len(out_local) > 0

    def test_darlam_reread_works_through_buffer_cache(self):
        """DARLAM seeks back to record 0 — served by the cache file when
        the stream's hash-table copy is gone (paper Section 5.3)."""
        split = {"ccam": "m1", "cc2lam": "m1", "darlam": "m2"}
        out = self._run(split, {"ccam_hist": "buffer", "lam_input": "buffer"})
        # The final drift record exists (8 bytes after per-step records).
        assert len(out) > 8


class TestSimWorkflowAnnotations:
    def test_calibrated_works(self):
        wf = climate_sim_workflow()
        assert wf.stages["ccam"].work == pytest.approx(994.0)
        assert wf.stages["darlam"].work == pytest.approx(466.0)
        assert wf.stages["cc2lam"].work < 20

    def test_darlam_rereads(self):
        wf = climate_sim_workflow()
        fu = wf.file_use("darlam", "lam_input", "read")
        assert fu.reread_bytes > 0
