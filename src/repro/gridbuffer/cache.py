"""Cache file behind a Grid Buffer stream.

The Grid Buffer's in-memory hash table deletes blocks as they are
consumed; the cache file is what lets a reader *re-read* earlier data
or seek backwards (Section 3.1: DARLAM re-reads input that has already
been deleted from the hash table "and it is read from the cache file
instead... transparently").

A cache is a sparse local file plus an interval set recording which
byte ranges are valid.  It can sit at either end of the connection
(writer-end or reader-end, Section 4).
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

__all__ = ["IntervalSet", "BufferCache"]


class IntervalSet:
    """Sorted set of disjoint half-open integer intervals [start, end).

    Supports add (with merging), containment and coverage queries.
    Used to track which byte ranges of a cache file hold valid data.
    """

    def __init__(self, intervals: Optional[Iterable[Tuple[int, int]]] = None):
        self._ivs: List[Tuple[int, int]] = []
        if intervals:
            for s, e in intervals:
                self.add(s, e)

    def add(self, start: int, end: int) -> None:
        """Insert [start, end), merging overlapping/adjacent intervals."""
        if end < start:
            raise ValueError(f"end ({end}) < start ({start})")
        if end == start:
            return
        out: List[Tuple[int, int]] = []
        placed = False
        for s, e in self._ivs:
            if e < start or s > end:  # disjoint, not even adjacent
                if s > end and not placed:
                    out.append((start, end))
                    placed = True
                out.append((s, e))
            else:  # overlaps or touches: merge
                start = min(start, s)
                end = max(end, e)
        if not placed:
            out.append((start, end))
        out.sort()
        self._ivs = out

    def covers(self, start: int, end: int) -> bool:
        """True if every byte of [start, end) is present."""
        if end <= start:
            return True
        for s, e in self._ivs:
            if s <= start < e:
                if end <= e:
                    return True
                start = e  # continue from where this interval stops
            elif s > start:
                return False
        return False

    def first_gap(self, start: int, end: int) -> Optional[Tuple[int, int]]:
        """The first missing sub-range of [start, end), or None."""
        if end <= start:
            return None
        pos = start
        for s, e in self._ivs:
            if e <= pos:
                continue
            if s > pos:
                return (pos, min(s, end))
            pos = e
            if pos >= end:
                return None
        return (pos, end) if pos < end else None

    def intervals(self) -> List[Tuple[int, int]]:
        return list(self._ivs)

    def total(self) -> int:
        return sum(e - s for s, e in self._ivs)

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntervalSet) and self._ivs == other._ivs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntervalSet({self._ivs!r})"


class BufferCache:
    """Sparse file + validity map for one buffered stream."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Create/truncate: each stream owns a fresh cache file.
        with open(self.path, "wb"):
            pass
        self._valid = IntervalSet()
        self._lock = threading.Lock()

    def store(self, offset: int, data: bytes) -> None:
        """Record ``data`` at ``offset`` as valid cache contents."""
        if offset < 0:
            raise ValueError("offset must be >= 0")
        if not data:
            return
        with self._lock:
            with open(self.path, "r+b") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() < offset:
                    fh.truncate(offset)  # grow sparsely
                fh.seek(offset)
                fh.write(data)
            self._valid.add(offset, offset + len(data))

    def has(self, offset: int, length: int) -> bool:
        with self._lock:
            return self._valid.covers(offset, offset + length)

    def load(self, offset: int, length: int) -> bytes:
        """Read a fully valid range; raises KeyError on any gap."""
        with self._lock:
            if not self._valid.covers(offset, offset + length):
                gap = self._valid.first_gap(offset, offset + length)
                raise KeyError(f"cache miss at {gap}")
            with open(self.path, "rb") as fh:
                fh.seek(offset)
                return fh.read(length)

    def valid_upto(self, start: int = 0) -> int:
        """Largest ``n`` such that [start, n) is fully cached."""
        with self._lock:
            gap = self._valid.first_gap(start, 1 << 62)
            return (1 << 62) if gap is None else gap[0]

    def total_cached(self) -> int:
        with self._lock:
            return self._valid.total()

    def close(self, delete: bool = False) -> None:
        if delete:
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass
