"""Benchmark harness: experiment drivers, table formatting, rendering."""

from .ascii_render import ascii_field, rasterize_von_mises, write_pgm
from .gantt import render_gantt
from .experiments import (
    ALL_EXPERIMENTS,
    run_fig6_stress,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from .tables import ShapeCheck, TableBuilder, hms, parse_hms

__all__ = [
    "render_gantt",
    "ascii_field",
    "rasterize_von_mises",
    "write_pgm",
    "ALL_EXPERIMENTS",
    "run_fig6_stress",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "ShapeCheck",
    "TableBuilder",
    "hms",
    "parse_hms",
]
