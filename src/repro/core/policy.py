"""Remote-access policy heuristics.

Section 3.1: "The choice of mode should be based on information about
the access patterns and the file size.  For example, if an application
reads a small fraction of the remote file, it may not warrant copying
it to the local file system.  Further, if the file is very large, it
may not be possible to copy it... On the other hand, if a file is small
and the latency to the remote system is high, then it is more efficient
to copy the file."

:class:`AccessPolicy` turns those sentences into a cost model: copying
costs one bulk transfer of the whole file; proxy access costs one
round trip per block over the fraction actually read.  The cheaper
predicted option wins, with a hard cap above which copying is
impossible (no local space / too large).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs

__all__ = ["AccessEstimate", "AccessPolicy", "RemoteDecision", "observed_estimate"]

_DECISIONS = obs.counter(
    "fm_policy_decisions_total",
    "Copy-vs-proxy verdicts by outcome and deciding rule",
    labelnames=("mode", "reason"),
)


@dataclass(frozen=True)
class AccessEstimate:
    """What the FM knows (or guesses) about an upcoming open.

    ``read_fraction`` is the expected fraction of the file the
    application will touch; 1.0 (read everything) is the conservative
    default for sequential legacy codes.
    """

    file_size: int
    bandwidth: float          # bytes/s to the remote host
    latency: float            # one-way seconds to the remote host
    read_fraction: float = 1.0
    block_size: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.file_size < 0:
            raise ValueError("file_size must be >= 0")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")


@dataclass(frozen=True)
class RemoteDecision:
    """The policy's verdict plus its predicted costs (for logging)."""

    mode: str                 # "copy" | "proxy"
    copy_cost: float
    proxy_cost: float
    reason: str


def observed_estimate(
    monitor,
    peer: str,
    file_size: int,
    read_fraction: float = 1.0,
    block_size: int = 64 * 1024,
    default_bandwidth: float = 10 * 1024 * 1024,
    default_latency: float = 0.005,
) -> AccessEstimate:
    """Build an :class:`AccessEstimate` from *measured* link numbers.

    ``monitor`` is a :class:`repro.core.trace.TransferMonitor` (duck
    typed: anything with ``bandwidth(peer)`` / ``latency(peer)``).
    Before any transfer has been observed the defaults stand in, so the
    estimate degrades gracefully to a configured guess — the paper's
    NWS plays the same role with forecasts.
    """
    bandwidth = latency = None
    if monitor is not None:
        bandwidth = monitor.bandwidth(peer)
        latency = monitor.latency(peer)
    return AccessEstimate(
        file_size=file_size,
        bandwidth=bandwidth if bandwidth else default_bandwidth,
        latency=latency if latency is not None else default_latency,
        read_fraction=read_fraction,
        block_size=block_size,
    )


class AccessPolicy:
    """Cost-model based copy-vs-proxy decision.

    Parameters
    ----------
    max_copy_bytes:
        Files larger than this are never copied ("if the file is very
        large, it may not be possible to copy it").
    copy_setup_rtts:
        Round trips charged to start a bulk (GridFTP) copy.
    """

    def __init__(self, max_copy_bytes: int = 2 * 1024**3, copy_setup_rtts: float = 2.0):
        if max_copy_bytes < 0:
            raise ValueError("max_copy_bytes must be >= 0")
        self.max_copy_bytes = max_copy_bytes
        self.copy_setup_rtts = copy_setup_rtts

    def copy_cost(self, est: AccessEstimate) -> float:
        """Predicted seconds to copy the whole file locally."""
        rtt = 2.0 * est.latency
        return self.copy_setup_rtts * rtt + est.file_size / est.bandwidth

    def proxy_cost(self, est: AccessEstimate) -> float:
        """Predicted seconds to read ``read_fraction`` via block RPCs."""
        touched = est.file_size * est.read_fraction
        nblocks = max(1, int(-(-touched // est.block_size))) if touched > 0 else 0
        rtt = 2.0 * est.latency
        return nblocks * rtt + touched / est.bandwidth

    def decide_observed(
        self,
        monitor,
        peer: str,
        file_size: int,
        read_fraction: float = 1.0,
        block_size: int = 64 * 1024,
    ) -> RemoteDecision:
        """:meth:`decide` fed by measured link numbers for ``peer``.

        This is the §3.1 loop closed: the FM's own transfer monitor
        (rather than static configuration) supplies bandwidth/latency.
        """
        est = observed_estimate(
            monitor, peer, file_size, read_fraction=read_fraction, block_size=block_size
        )
        return self.decide(est)

    def decide(self, est: AccessEstimate) -> RemoteDecision:
        c_copy = self.copy_cost(est)
        c_proxy = self.proxy_cost(est)
        if est.file_size > self.max_copy_bytes:
            decision = RemoteDecision("proxy", c_copy, c_proxy, "file exceeds max_copy_bytes")
            _DECISIONS.labels(mode=decision.mode, reason="size_cap").inc()
        elif c_copy <= c_proxy:
            decision = RemoteDecision("copy", c_copy, c_proxy, "bulk copy predicted cheaper")
            _DECISIONS.labels(mode=decision.mode, reason="copy_cheaper").inc()
        else:
            decision = RemoteDecision(
                "proxy", c_copy, c_proxy, "partial proxy access predicted cheaper"
            )
            _DECISIONS.labels(mode=decision.mode, reason="proxy_cheaper").inc()
        obs.event(
            "policy.decide",
            mode=decision.mode,
            copy_cost=decision.copy_cost,
            proxy_cost=decision.proxy_cost,
            reason=decision.reason,
        )
        return decision

    def crossover_fraction(self, est: AccessEstimate, tol: float = 1e-4) -> float:
        """The read fraction at which copy and proxy costs break even.

        Useful for the ablation bench: below this fraction, proxy
        access wins; above it, copying wins.  Returns 1.0 if copying
        never wins, 0.0 if it always does.
        """
        lo, hi = 0.0, 1.0

        def proxy_minus_copy(fraction: float) -> float:
            e = AccessEstimate(
                file_size=est.file_size,
                bandwidth=est.bandwidth,
                latency=est.latency,
                read_fraction=fraction,
                block_size=est.block_size,
            )
            return self.proxy_cost(e) - self.copy_cost(e)

        if proxy_minus_copy(1.0) <= 0:
            return 1.0
        if proxy_minus_copy(0.0) >= 0:
            return 0.0
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            if proxy_minus_copy(mid) < 0:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)
