#!/usr/bin/env python3
"""Hole-shape design study — what the durability pipeline is *for*.

Sweeps superellipse (power, aspect) hole shapes through the full
CHAMMY→PAFEC→MAKE_SF_FILES→FAST→OBJECTIVE pipeline and reports the
fatigue-life landscape, then refines the best point with Nelder-Mead.
Also demonstrates the paper's observation (Section 5.2, citing [7])
that the life optimum and the stress optimum need not coincide — we
report both.

Run:  python examples/hole_shape_study.py
"""

import time

from repro.apps.mecheng import (
    HoleShape,
    best_by_life,
    best_by_stress,
    grid_study,
    optimize_shape,
)


def main() -> None:
    powers = [2.0, 2.5, 3.0, 4.0, 5.0]
    aspects = [0.7, 0.85, 1.0, 1.2]
    print(f"evaluating {len(powers) * len(aspects)} hole shapes "
          "(each = one full FEM + crack-growth pipeline run)...")
    t0 = time.perf_counter()
    points = grid_study(powers, aspects)
    elapsed = time.perf_counter() - t0
    print(f"done in {elapsed:.1f}s ({elapsed / len(points):.2f}s per design)\n")

    print("life (cycles, higher is better); rows = power, cols = aspect")
    header = "power\\aspect " + "".join(f"{a:>10.2f}" for a in aspects)
    print(header)
    it = iter(points)
    for power in powers:
        row = [next(it) for _ in aspects]
        print(f"{power:>11.1f}  " + "".join(f"{p.life:>10.2e}" for p in row))

    by_life = best_by_life(points)
    by_stress = best_by_stress(points)
    print(f"\nbest by life  : power={by_life.shape.power:.2f} "
          f"aspect={by_life.shape.aspect:.2f} life={by_life.life:.3e}")
    print(f"best by stress: power={by_stress.shape.power:.2f} "
          f"aspect={by_stress.shape.aspect:.2f} "
          f"peak={by_stress.peak_stress / 1e6:.0f} MPa")
    if (by_life.shape.power, by_life.shape.aspect) != (
        by_stress.shape.power,
        by_stress.shape.aspect,
    ):
        print("  -> the life optimum differs from the stress optimum, as [7] reports")

    print("\nrefining the life optimum with Nelder-Mead...")
    refined = optimize_shape(start=by_life.shape, max_evals=25)
    gain = refined.life / by_life.life
    print(f"refined: power={refined.shape.power:.3f} aspect={refined.shape.aspect:.3f} "
          f"life={refined.life:.3e} ({gain:.2f}x the grid optimum)")


if __name__ == "__main__":
    main()
