"""``python -m repro.obs.top`` — live fleet table over the ops plane.

Polls each named peer's ``_obs.health`` and ``_obs.metrics`` ops and
renders one row per peer: identity, uptime, request totals and rate,
event-loop lag and stall count.  The moral equivalent of ``top`` for a
GriddLeS fleet; no agent, no scrape config — any process that opened
an RPC server answers.

Usage::

    python -m repro.obs.top HOST:PORT [HOST:PORT ...] \
        [--interval 2.0] [--iterations N] [--once]

``--once`` (or ``--iterations``) makes output scriptable/testable;
without either it refreshes forever with an ANSI clear between frames.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["poll_peer", "render_table", "main"]


def _series_sum(snapshot: Dict[str, Any], name: str) -> Optional[float]:
    fam = snapshot.get(name)
    if not fam:
        return None
    total = 0.0
    for entry in fam.get("series", ()):
        value = entry.get("value")
        if isinstance(value, dict):  # histogram: count observations
            total += value.get("count", 0)
        else:
            total += float(value)
    return total


def poll_peer(addr: str, timeout: float = 2.0) -> Dict[str, Any]:
    """One health + metrics round trip; never raises (errors in-band)."""
    from ..transport.tcp import RpcClient

    host, _, port = addr.rpartition(":")
    row: Dict[str, Any] = {"peer": addr}
    try:
        client = RpcClient(host or "127.0.0.1", int(port), timeout=timeout)
        try:
            health, _ = client.call("_obs.health")
            _, body = client.call("_obs.metrics")
        finally:
            client.close()
        snapshot = json.loads(body) if body else {}
        row.update(
            status=health.get("status", "?"),
            proc=health.get("proc", "?"),
            pid=health.get("pid"),
            uptime=float(health.get("uptime_s", 0.0)),
            requests=_series_sum(snapshot, "rpc_server_requests_total") or 0.0,
            loop_lag=_series_sum(snapshot, "rpc_loop_lag_seconds"),
            stalls=_series_sum(snapshot, "loop_stall_total") or 0.0,
            parked=_series_sum(snapshot, "buffer_async_parked"),
        )
    except Exception as exc:  # noqa: BLE001 - a dead peer is a table row, not a crash
        row.update(status="down", error=f"{type(exc).__name__}: {exc}")
    return row


_COLUMNS = ("PEER", "PROC", "STATUS", "UP(s)", "REQS", "REQ/S", "LAG(ms)", "STALL", "PARK")


def render_table(rows: List[Dict[str, Any]], rates: Dict[str, float]) -> str:
    table: List[Tuple[str, ...]] = [_COLUMNS]
    for row in rows:
        if row.get("status") == "down":
            table.append((row["peer"], "-", "down", "-", "-", "-", "-", "-", "-"))
            continue
        lag = row.get("loop_lag")
        parked = row.get("parked")
        table.append((
            row["peer"],
            str(row.get("proc", "?")),
            str(row.get("status", "?")),
            f"{row.get('uptime', 0.0):.0f}",
            f"{row.get('requests', 0.0):.0f}",
            f"{rates.get(row['peer'], 0.0):.1f}",
            "-" if lag is None else f"{lag * 1000:.1f}",
            f"{row.get('stalls', 0.0):.0f}",
            "-" if parked is None else f"{parked:.0f}",
        ))
    widths = [max(len(r[i]) for r in table) for i in range(len(_COLUMNS))]
    lines = []
    for r in table:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)).rstrip())
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top", description="live ops-plane fleet table"
    )
    parser.add_argument("peers", nargs="+", metavar="HOST:PORT")
    parser.add_argument("--interval", type=float, default=2.0)
    parser.add_argument("--timeout", type=float, default=2.0)
    parser.add_argument("--iterations", type=int, default=0,
                        help="stop after N frames (0 = run forever)")
    parser.add_argument("--once", action="store_true", help="single frame, no clear")
    args = parser.parse_args(argv)

    iterations = 1 if args.once else args.iterations
    prev: Dict[str, Tuple[float, float]] = {}  # peer -> (requests, monotonic)
    frame = 0
    while True:
        frame += 1
        rows = [poll_peer(p, timeout=args.timeout) for p in args.peers]
        now = time.monotonic()
        rates: Dict[str, float] = {}
        for row in rows:
            if "requests" not in row:
                continue
            last = prev.get(row["peer"])
            if last is not None and now > last[1]:
                rates[row["peer"]] = max(0.0, row["requests"] - last[0]) / (now - last[1])
            prev[row["peer"]] = (row["requests"], now)
        if not args.once and frame > 1:
            sys.stdout.write("\x1b[2J\x1b[H")
        up = sum(1 for r in rows if r.get("status") == "ok")
        print(f"repro.obs.top — {up}/{len(rows)} peers up (frame {frame})")
        print(render_table(rows, rates))
        sys.stdout.flush()
        if iterations and frame >= iterations:
            return 0 if up == len(rows) else 1
        time.sleep(args.interval)


if __name__ == "__main__":
    raise SystemExit(main())
