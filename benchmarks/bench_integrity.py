"""Per-frame CRC overhead A/B: Grid Buffer streaming, trailer on vs off.

The negotiated payload-CRC trailer (PR 9) must be cheap enough to stay
on by default.  This bench streams one pre-written Grid Buffer stream
through a read-ahead reader against an origin with
``simulated_latency=5ms`` — the WAN-ish regime the repo's other
benches model, where framing overhead has to hide behind the link
latency — once with the trailer negotiated (``REPRO_WIRE_CRC=1``, the
default) and once opted out (``REPRO_WIRE_CRC=0``, which pins plain
binary frames).

Acceptance (full mode): best-of-N wall time with CRC on is within
``MAX_OVERHEAD`` (5%) of CRC off.  ``--smoke`` (the CI mode) streams a
small file once per arm and only asserts correctness plus that the CRC
arm really negotiated ``binary+crc``.

Emits ``BENCH_integrity.json`` at the repo root.  Also runnable via
pytest (``pytest benchmarks/bench_integrity.py``).
"""

import argparse
import hashlib
import json
import os
import random
import time
from pathlib import Path

from repro.gridbuffer.client import GridBufferClient
from repro.gridbuffer.server import GridBufferServer

LATENCY_S = 0.005
FULL_BYTES = 8 * 1024 * 1024
FULL_CHUNK = 128 * 1024
SMOKE_BYTES = 1 * 1024 * 1024
SMOKE_CHUNK = 64 * 1024
FULL_REPS = 3
MAX_OVERHEAD = 0.05
SEED = 20260809

_REPO_ROOT = Path(__file__).resolve().parents[1]


def _payload(n_bytes: int) -> bytes:
    return random.Random(SEED).randbytes(n_bytes)


def _stream_once(server, stream: str, data: bytes, chunk: int) -> float:
    """Write the stream, read it back with read-ahead; returns read wall."""
    sha = hashlib.sha256(data).hexdigest()
    ctl = GridBufferClient(*server.address, timeout=60.0)
    try:
        writer = ctl.open_writer(
            stream, n_readers=1, capacity_bytes=2 * len(data), coalesce_bytes=256 * 1024
        )
        writer.write(data)
        writer.close()

        t0 = time.perf_counter()
        reader = ctl.open_reader(
            stream, read_ahead=True, read_ahead_bytes=chunk, read_ahead_depth=4
        )
        hasher = hashlib.sha256()
        got = 0
        while True:
            block = reader.read(chunk)
            if not block:
                break
            hasher.update(block)
            got += len(block)
        wall = time.perf_counter() - t0
        reader.close()
        assert got == len(data), f"short read: {got} of {len(data)}"
        assert hasher.hexdigest() == sha, "stream bytes corrupted"
        assert ctl._rpc._codec == ("binary+crc" if _crc_wanted() else "binary"), (
            f"arm negotiated {ctl._rpc._codec!r}, REPRO_WIRE_CRC="
            f"{os.environ.get('REPRO_WIRE_CRC')!r}"
        )
        ctl.drop_stream(stream)
        return wall
    finally:
        ctl.close()


def _crc_wanted() -> bool:
    return os.environ.get("REPRO_WIRE_CRC", "1") != "0"


def run_arm(crc_on: bool, n_bytes: int, chunk: int, reps: int) -> dict:
    data = _payload(n_bytes)
    prev = os.environ.get("REPRO_WIRE_CRC")
    os.environ["REPRO_WIRE_CRC"] = "1" if crc_on else "0"
    walls = []
    try:
        with GridBufferServer(simulated_latency=LATENCY_S) as server:
            for rep in range(reps):
                stream = f"crc-{'on' if crc_on else 'off'}-{rep}"
                walls.append(_stream_once(server, stream, data, chunk))
    finally:
        if prev is None:
            os.environ.pop("REPRO_WIRE_CRC", None)
        else:
            os.environ["REPRO_WIRE_CRC"] = prev
    best = min(walls)
    return {
        "arm": "crc" if crc_on else "plain",
        "bytes": n_bytes,
        "walls_s": [round(w, 5) for w in walls],
        "best_wall_s": round(best, 5),
        "mb_s": round(n_bytes / best / 1e6, 2),
    }


def run(smoke: bool = False, write_json: bool = True) -> dict:
    n_bytes = SMOKE_BYTES if smoke else FULL_BYTES
    chunk = SMOKE_CHUNK if smoke else FULL_CHUNK
    reps = 1 if smoke else FULL_REPS

    plain = run_arm(False, n_bytes, chunk, reps)
    crc = run_arm(True, n_bytes, chunk, reps)
    overhead = crc["best_wall_s"] / plain["best_wall_s"] - 1.0

    for arm in (plain, crc):
        print(f"{arm['arm']:>5}: best {arm['best_wall_s']*1e3:8.1f} ms, {arm['mb_s']:7.2f} MB/s")
    print(f"crc overhead: {overhead*100:+.2f}% (budget {MAX_OVERHEAD*100:.0f}%)")

    out = {
        "bench": "integrity_crc_overhead",
        "smoke": smoke,
        "origin_latency_ms": LATENCY_S * 1e3,
        "chunk": chunk,
        "arms": [plain, crc],
        "overhead_pct": round(overhead * 100, 2),
        "budget_pct": MAX_OVERHEAD * 100,
    }

    if not smoke:
        assert overhead <= MAX_OVERHEAD, (
            f"CRC trailer costs {overhead*100:.2f}% on the 5 ms streaming bench "
            f"(budget {MAX_OVERHEAD*100:.0f}%)"
        )

    if write_json:
        path = _REPO_ROOT / "BENCH_integrity.json"
        path.write_text(json.dumps(out, indent=2) + "\n")
        print(f"wrote {path}")
    return out


def test_integrity_overhead():
    run(smoke=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="CI mode: small file, correctness only"
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing BENCH_integrity.json"
    )
    args = parser.parse_args()
    run(smoke=args.smoke, write_json=not args.no_json)


if __name__ == "__main__":
    main()
