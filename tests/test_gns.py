"""Unit + integration tests for the GriddLeS Name Service."""

import pytest

from repro.gns.client import GnsClient, LocalGnsClient
from repro.gns.matcher import ConnectionMatcher
from repro.gns.records import BufferEndpoint, GnsRecord, IOMode
from repro.gns.server import GnsServer, NameService


class TestIOMode:
    def test_parse_string(self):
        assert IOMode.parse("local") is IOMode.LOCAL
        assert IOMode.parse("remote-replica") is IOMode.REMOTE_REPLICA

    def test_parse_enum_passthrough(self):
        assert IOMode.parse(IOMode.BUFFER) is IOMode.BUFFER

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown IO mode"):
            IOMode.parse("carrier-pigeon")

    def test_six_modes(self):
        assert len(IOMode) == 6


class TestGnsRecord:
    def test_remote_requires_host_and_path(self):
        with pytest.raises(ValueError):
            GnsRecord(machine="m", path="/f", mode=IOMode.REMOTE)

    def test_replica_requires_logical_name(self):
        with pytest.raises(ValueError):
            GnsRecord(machine="m", path="/f", mode=IOMode.LOCAL_REPLICA)

    def test_buffer_requires_endpoint(self):
        with pytest.raises(ValueError):
            GnsRecord(machine="m", path="/f", mode=IOMode.BUFFER)

    def test_glob_matching(self):
        rec = GnsRecord(machine="*", path="/data/*.dat", mode=IOMode.LOCAL)
        assert rec.matches("anyhost", "/data/x.dat")
        assert not rec.matches("anyhost", "/data/x.txt")

    def test_exact_machine_matching(self):
        rec = GnsRecord(machine="m1", path="/f", mode=IOMode.LOCAL)
        assert rec.matches("m1", "/f")
        assert not rec.matches("m2", "/f")

    def test_specificity_ordering(self):
        exact = GnsRecord(machine="m1", path="/f", mode=IOMode.LOCAL)
        machine_glob = GnsRecord(machine="*", path="/f", mode=IOMode.LOCAL)
        path_glob = GnsRecord(machine="m1", path="/*", mode=IOMode.LOCAL)
        all_glob = GnsRecord(machine="*", path="/*", mode=IOMode.LOCAL)
        assert exact.specificity() > machine_glob.specificity()
        assert exact.specificity() > path_glob.specificity()
        assert path_glob.specificity() > all_glob.specificity()

    def test_dict_roundtrip(self):
        rec = GnsRecord(
            machine="m",
            path="/f",
            mode=IOMode.BUFFER,
            buffer=BufferEndpoint(stream="st", n_readers=2, placement="writer"),
        )
        back = GnsRecord.from_dict(rec.to_dict())
        assert back == rec

    def test_buffer_endpoint_validation(self):
        with pytest.raises(ValueError):
            BufferEndpoint(stream="s", placement="middle")
        with pytest.raises(ValueError):
            BufferEndpoint(stream="s", n_readers=0)


class TestNameService:
    def test_no_match_defaults_to_local(self):
        ns = NameService()
        rec = ns.resolve("m1", "/whatever")
        assert rec.mode is IOMode.LOCAL

    def test_most_specific_wins(self):
        ns = NameService()
        ns.add(GnsRecord(machine="*", path="/data/*", mode=IOMode.LOCAL))
        ns.add(
            GnsRecord(
                machine="m1",
                path="/data/special.dat",
                mode=IOMode.REMOTE,
                remote_host="other",
                remote_path="/d/special.dat",
            )
        )
        assert ns.resolve("m1", "/data/special.dat").mode is IOMode.REMOTE
        assert ns.resolve("m1", "/data/other.dat").mode is IOMode.LOCAL
        assert ns.resolve("m2", "/data/special.dat").mode is IOMode.LOCAL

    def test_later_record_wins_ties(self):
        ns = NameService()
        ns.add(GnsRecord(machine="m1", path="/f", mode=IOMode.LOCAL, local_path="/old"))
        ns.add(GnsRecord(machine="m1", path="/f", mode=IOMode.LOCAL, local_path="/new"))
        assert ns.resolve("m1", "/f").local_path == "/new"

    def test_remove(self):
        ns = NameService()
        ns.add(GnsRecord(machine="m1", path="/f", mode=IOMode.LOCAL))
        assert ns.remove("m1", "/f") == 1
        assert ns.remove("m1", "/f") == 0

    def test_clear_and_records(self):
        ns = NameService()
        ns.add(GnsRecord(machine="m1", path="/f", mode=IOMode.LOCAL))
        assert len(ns.records()) == 1
        ns.clear()
        assert ns.records() == []


class TestConnectionMatcher:
    def test_reader_end_placement(self):
        matcher = ConnectionMatcher(lambda machine: (f"{machine}.addr", 999))
        binding = matcher.announce("st", "writer", "w-host")
        assert not binding.located  # reader-end: waits for a reader
        binding = matcher.announce("st", "reader", "r-host")
        assert binding.located
        assert binding.host == "r-host.addr"

    def test_writer_end_placement(self):
        matcher = ConnectionMatcher(lambda machine: (f"{machine}.addr", 999))
        binding = matcher.announce("st", "writer", "w-host", placement="writer")
        assert binding.located
        assert binding.host == "w-host.addr"

    def test_two_writers_rejected(self):
        matcher = ConnectionMatcher()
        matcher.announce("st", "writer", "h1")
        with pytest.raises(ValueError, match="already has writer"):
            matcher.announce("st", "writer", "h2")

    def test_same_writer_reannounce_ok(self):
        matcher = ConnectionMatcher()
        matcher.announce("st", "writer", "h1")
        matcher.announce("st", "writer", "h1")

    def test_pin(self):
        matcher = ConnectionMatcher()
        binding = matcher.pin("st", "fixed-host", 1234)
        assert binding.located
        assert matcher.lookup("st").host == "fixed-host"

    def test_bad_role_rejected(self):
        with pytest.raises(ValueError):
            ConnectionMatcher().announce("st", "observer", "h")

    def test_streams_listing(self):
        matcher = ConnectionMatcher()
        matcher.announce("b", "writer", "h")
        matcher.announce("a", "reader", "h")
        assert matcher.streams() == ["a", "b"]


class TestGnsOverTcp:
    @pytest.fixture()
    def server(self):
        ns = NameService(locate_buffer_server=lambda machine: ("buf-host", 7777))
        with GnsServer(ns) as srv:
            yield srv

    def test_resolve_remote(self, server):
        with GnsClient(*server.address) as client:
            client.add(
                GnsRecord(
                    machine="m1",
                    path="/f",
                    mode=IOMode.COPY,
                    remote_host="m2",
                    remote_path="/real/f",
                )
            )
            rec = client.resolve("m1", "/f")
            assert rec.mode is IOMode.COPY
            assert rec.remote_host == "m2"

    def test_list_and_remove(self, server):
        with GnsClient(*server.address) as client:
            client.add(GnsRecord(machine="m", path="/a", mode=IOMode.LOCAL))
            client.add(GnsRecord(machine="m", path="/b", mode=IOMode.LOCAL))
            assert len(client.list_records()) == 2
            assert client.remove("m", "/a") == 1
            assert len(client.list_records()) == 1

    def test_announce_blocks_until_located(self, server):
        import threading

        with GnsClient(*server.address) as client:
            result = {}

            def writer_side():
                c = GnsClient(*server.address)
                result["addr"] = c.announce("st", "writer", "w-host", timeout=5)
                c.close()

            t = threading.Thread(target=writer_side)
            t.start()
            # Reader announces; the matcher can now place the buffer.
            client.announce("st", "reader", "r-host", timeout=5)
            t.join(timeout=5)
            assert result["addr"] == ("buf-host", 7777)

    def test_announce_nowait(self, server):
        with GnsClient(*server.address) as client:
            host, port = client.announce("lonely", "writer", "w", wait=False)
            assert (host, port) == ("", 0)

    def test_pin_stream(self, server):
        with GnsClient(*server.address) as client:
            client.pin_stream("st2", "pinhost", 4321)
            assert client.announce("st2", "reader", "r", wait=False) == ("pinhost", 4321)

    def test_bad_record_rejected(self, server):
        from repro.transport.tcp import RpcClient, RpcError

        with RpcClient(*server.address) as rpc:
            with pytest.raises(RpcError, match="bad-record"):
                rpc.call("gns.add", {"record": {"machine": "m", "path": "/f", "mode": "nope"}})


class TestLocalGnsClient:
    def test_mirrors_service(self):
        ns = NameService()
        client = LocalGnsClient(ns)
        client.add(GnsRecord(machine="m", path="/f", mode=IOMode.LOCAL, local_path="/x"))
        assert client.resolve("m", "/f").local_path == "/x"
        assert len(client.list_records()) == 1
        assert client.remove("m", "/f") == 1
