"""Versioned, persistent record store behind the Name Service.

The paper's headline claim — a workflow is re-wired *only* by editing
GNS entries — only works at runtime if those edits are observable.
:class:`RecordStore` turns the flat record list into a control-plane
database:

* every namespace carries a **monotonic revision**; each mutation is a
  row in an **append-only change log** (SQLite, in-memory by default,
  file-backed when given a path);
* mutations are **atomic transactions** (:meth:`txn`): a batch of
  add/remove operations commits with consecutive revisions or not at
  all, closing the classic remove-then-add window where a resolver
  could observe *neither* record;
* watchers replay the log from any revision (:meth:`changes_since`),
  block for new changes (:meth:`wait_changes`), and survive
  **compaction** (:meth:`compact`) via a reset snapshot;
* per-namespace **bearer tokens** (:meth:`set_token` /
  :meth:`check_token`) isolate tenants sharing one deployment;
* transactions carry an optional **dedupe token** so an RPC retry that
  replays an already-committed txn returns the original revision
  instead of double-applying it (same pattern as ``gb.write``).

Thread model: one SQLite connection guarded by a condition variable;
the materialized per-namespace record lists make reads (resolve /
records / changes_since) cheap snapshots.  Change listeners registered
with :meth:`add_listener` fire after commit, outside the lock — the
GNS server uses one to wake long-polls parked on the asyncio loop.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .records import GnsRecord

__all__ = [
    "DEFAULT_NAMESPACE",
    "GnsAuthError",
    "RecordStore",
    "normalize_txn_ops",
]

DEFAULT_NAMESPACE = "default"

#: Change events and txn operations use these action names on the wire.
_ACTION_ADD = "add"
_ACTION_REMOVE = "remove"

#: Bound on the remembered txn dedupe tokens (per store).
_DEDUPE_CAP = 4096

ChangeEvent = Dict[str, Any]
ChangeListener = Callable[[str, int], None]


class GnsAuthError(Exception):
    """A namespace token check failed (missing or wrong bearer token)."""


def normalize_txn_ops(ops: Iterable[Any]) -> List[Tuple[str, Any, str, str]]:
    """Normalize txn operations to ``(action, record, machine, path)``.

    Accepts the ergonomic tuple forms ``("add", record)`` and
    ``("remove", machine, path)`` as well as the wire dict forms
    ``{"action": "add", "record": {...}}`` / ``{"action": "remove",
    "machine": m, "path": p}``.  Raises ``ValueError`` on anything
    else, *before* any state is touched — a malformed txn is rejected
    whole.
    """
    out: List[Tuple[str, Any, str, str]] = []
    for op in ops:
        if isinstance(op, dict):
            action = op.get("action")
            if action == _ACTION_ADD:
                rec = op.get("record")
                record = rec if isinstance(rec, GnsRecord) else GnsRecord.from_dict(rec)
                out.append((_ACTION_ADD, record, record.machine, record.path))
                continue
            if action == _ACTION_REMOVE:
                out.append((_ACTION_REMOVE, None, str(op["machine"]), str(op["path"])))
                continue
            raise ValueError(f"unknown txn action: {action!r}")
        if isinstance(op, (tuple, list)):
            if len(op) == 2 and op[0] == _ACTION_ADD:
                rec = op[1]
                record = rec if isinstance(rec, GnsRecord) else GnsRecord.from_dict(rec)
                out.append((_ACTION_ADD, record, record.machine, record.path))
                continue
            if len(op) == 3 and op[0] == _ACTION_REMOVE:
                out.append((_ACTION_REMOVE, None, str(op[1]), str(op[2])))
                continue
        raise ValueError(f"malformed txn op: {op!r}")
    return out


class RecordStore:
    """SQLite-backed versioned GNS record store (see module docstring)."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._con = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # ns -> ordered [(revision_added, record)]; insertion order is
        # load-bearing (ties in specificity resolve to the later add).
        self._current: Dict[str, List[Tuple[int, GnsRecord]]] = {}
        self._revision: Dict[str, int] = {}
        self._compacted: Dict[str, int] = {}
        self._tokens: Dict[str, str] = {}
        self._applied: "OrderedDict[str, int]" = OrderedDict()
        self._listeners: List[ChangeListener] = []
        with self._lock:
            self._init_schema()
            self._load()

    # -- schema / load ------------------------------------------------------
    def _init_schema(self) -> None:
        cur = self._con.cursor()
        cur.executescript(
            """
            CREATE TABLE IF NOT EXISTS gns_meta (
                ns TEXT PRIMARY KEY,
                revision INTEGER NOT NULL,
                compacted INTEGER NOT NULL
            );
            CREATE TABLE IF NOT EXISTS gns_changes (
                ns TEXT NOT NULL,
                revision INTEGER NOT NULL,
                action TEXT NOT NULL,
                machine TEXT NOT NULL,
                path TEXT NOT NULL,
                record TEXT,
                PRIMARY KEY (ns, revision)
            );
            CREATE TABLE IF NOT EXISTS gns_snapshot (
                ns TEXT NOT NULL,
                seq INTEGER NOT NULL,
                revision INTEGER NOT NULL,
                record TEXT NOT NULL,
                PRIMARY KEY (ns, seq)
            );
            CREATE TABLE IF NOT EXISTS gns_tokens (
                ns TEXT PRIMARY KEY,
                token TEXT NOT NULL
            );
            """
        )
        self._con.commit()

    def _load(self) -> None:
        """Rebuild the materialized state: snapshot + change-log replay."""
        cur = self._con.cursor()
        for ns, revision, compacted in cur.execute(
            "SELECT ns, revision, compacted FROM gns_meta"
        ).fetchall():
            self._revision[ns] = int(revision)
            self._compacted[ns] = int(compacted)
            entries: List[Tuple[int, GnsRecord]] = [
                (int(rev), GnsRecord.from_dict(json.loads(blob)))
                for rev, blob in cur.execute(
                    "SELECT revision, record FROM gns_snapshot WHERE ns=? ORDER BY seq",
                    (ns,),
                ).fetchall()
            ]
            for rev, action, machine, path, blob in cur.execute(
                "SELECT revision, action, machine, path, record FROM gns_changes"
                " WHERE ns=? ORDER BY revision",
                (ns,),
            ).fetchall():
                if action == _ACTION_ADD:
                    entries.append((int(rev), GnsRecord.from_dict(json.loads(blob))))
                else:
                    entries = [
                        e for e in entries if not (e[1].machine == machine and e[1].path == path)
                    ]
            self._current[ns] = entries
        for ns, token in cur.execute("SELECT ns, token FROM gns_tokens").fetchall():
            self._tokens[ns] = token

    # -- tenancy ------------------------------------------------------------
    def set_token(self, ns: str, token: Optional[str]) -> None:
        """Set (or clear, with ``None``) the bearer token for ``ns``."""
        with self._lock:
            cur = self._con.cursor()
            if token is None:
                self._tokens.pop(ns, None)
                cur.execute("DELETE FROM gns_tokens WHERE ns=?", (ns,))
            else:
                self._tokens[ns] = token
                cur.execute(
                    "INSERT INTO gns_tokens (ns, token) VALUES (?, ?)"
                    " ON CONFLICT(ns) DO UPDATE SET token=excluded.token",
                    (ns, token),
                )
            self._con.commit()

    def check_token(self, ns: str, token: Optional[str]) -> None:
        """Raise :class:`GnsAuthError` unless ``token`` opens ``ns``.

        Namespaces without a configured token are open — that is the
        silent-skew path: an old peer sends no ``auth`` header, lands
        in the default namespace, and keeps working as long as that
        namespace is not tokened.
        """
        with self._lock:
            expected = self._tokens.get(ns)
        if expected is not None and token != expected:
            raise GnsAuthError(f"bad or missing token for namespace {ns!r}")

    # -- listeners ----------------------------------------------------------
    def add_listener(self, fn: ChangeListener) -> None:
        with self._lock:
            self._listeners.append(fn)

    def remove_listener(self, fn: ChangeListener) -> None:
        with self._lock:
            try:
                self._listeners.remove(fn)
            except ValueError:
                pass

    # -- reads --------------------------------------------------------------
    def namespaces(self) -> List[str]:
        with self._lock:
            return sorted(set(self._current) | set(self._revision))

    def revision(self, ns: str = DEFAULT_NAMESPACE) -> int:
        with self._lock:
            return self._revision.get(ns, 0)

    def compacted(self, ns: str = DEFAULT_NAMESPACE) -> int:
        with self._lock:
            return self._compacted.get(ns, 0)

    def records(self, ns: str = DEFAULT_NAMESPACE) -> List[GnsRecord]:
        """Current record set, in insertion order (an atomic snapshot)."""
        with self._lock:
            return [rec for _, rec in self._current.get(ns, ())]

    def entries(self, ns: str = DEFAULT_NAMESPACE) -> List[Tuple[int, GnsRecord]]:
        """``(revision_added, record)`` pairs — one consistent snapshot."""
        with self._lock:
            return list(self._current.get(ns, ()))

    def changes_since(
        self, ns: str, from_revision: int
    ) -> Tuple[List[ChangeEvent], int, bool]:
        """Change events after ``from_revision``: ``(events, revision, reset)``.

        If the log before ``from_revision`` has been compacted away the
        caller cannot be replayed incrementally; it gets the full
        current record set as synthetic ``add`` events with
        ``reset=True`` and must replace its view wholesale.
        """
        with self._lock:
            return self._changes_since_locked(ns, from_revision)

    def _changes_since_locked(
        self, ns: str, from_revision: int
    ) -> Tuple[List[ChangeEvent], int, bool]:
        revision = self._revision.get(ns, 0)
        compacted = self._compacted.get(ns, 0)
        if from_revision < compacted:
            events = [
                {"revision": rev, "action": _ACTION_ADD, "record": rec.to_dict()}
                for rev, rec in self._current.get(ns, ())
            ]
            return events, revision, True
        if from_revision >= revision:
            return [], revision, False
        events = []
        for rev, action, machine, path, blob in self._con.execute(
            "SELECT revision, action, machine, path, record FROM gns_changes"
            " WHERE ns=? AND revision>? ORDER BY revision",
            (ns, from_revision),
        ).fetchall():
            event: ChangeEvent = {"revision": int(rev), "action": action}
            if action == _ACTION_ADD:
                event["record"] = json.loads(blob)
            else:
                event["machine"] = machine
                event["path"] = path
            events.append(event)
        return events, revision, False

    def wait_changes(
        self, ns: str, from_revision: int, timeout: float
    ) -> Tuple[List[ChangeEvent], int, bool]:
        """Blocking :meth:`changes_since`: parks until a change or timeout."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._cond:
            while True:
                events, revision, reset = self._changes_since_locked(ns, from_revision)
                if events or reset:
                    return events, revision, reset
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], revision, False
                self._cond.wait(remaining)

    # -- mutations ----------------------------------------------------------
    def txn(
        self,
        ops: Iterable[Any],
        ns: str = DEFAULT_NAMESPACE,
        token: Optional[str] = None,
    ) -> int:
        """Apply a batch of operations atomically; return the new revision.

        ``token`` is an optional client-chosen dedupe id: replaying a
        committed txn (an RPC retry after the reply was lost) returns
        the original revision without re-applying the operations.
        An empty batch is a no-op returning the current revision.
        """
        parsed = normalize_txn_ops(ops)
        with self._cond:
            if token:
                hit = self._applied.get(token)
                if hit is not None:
                    self._applied.move_to_end(token)
                    return hit
            revision = self._revision.get(ns, 0)
            staged = list(self._current.get(ns, ()))
            rows = []
            for action, record, machine, path in parsed:
                revision += 1
                if action == _ACTION_ADD:
                    staged.append((revision, record))
                    rows.append(
                        (ns, revision, action, machine, path, json.dumps(record.to_dict()))
                    )
                else:
                    staged = [
                        e for e in staged if not (e[1].machine == machine and e[1].path == path)
                    ]
                    rows.append((ns, revision, action, machine, path, None))
            if rows:
                cur = self._con.cursor()
                try:
                    cur.executemany(
                        "INSERT INTO gns_changes (ns, revision, action, machine, path, record)"
                        " VALUES (?, ?, ?, ?, ?, ?)",
                        rows,
                    )
                    cur.execute(
                        "INSERT INTO gns_meta (ns, revision, compacted) VALUES (?, ?, ?)"
                        " ON CONFLICT(ns) DO UPDATE SET revision=excluded.revision",
                        (ns, revision, self._compacted.get(ns, 0)),
                    )
                    self._con.commit()
                except sqlite3.Error:
                    self._con.rollback()
                    raise
                self._current[ns] = staged
                self._revision[ns] = revision
            if token:
                self._applied[token] = revision
                while len(self._applied) > _DEDUPE_CAP:
                    self._applied.popitem(last=False)
            self._cond.notify_all()
            listeners = list(self._listeners)
        if rows:
            for fn in listeners:
                fn(ns, revision)
        return revision

    def compact(self, ns: str = DEFAULT_NAMESPACE) -> int:
        """Fold the change log into a snapshot; return the compaction floor.

        After compaction, watchers at or past the floor replay nothing
        (they are current); watchers behind it receive a reset snapshot
        on their next poll.
        """
        with self._cond:
            revision = self._revision.get(ns, 0)
            entries = self._current.get(ns, ())
            cur = self._con.cursor()
            try:
                cur.execute("DELETE FROM gns_changes WHERE ns=? AND revision<=?", (ns, revision))
                cur.execute("DELETE FROM gns_snapshot WHERE ns=?", (ns,))
                cur.executemany(
                    "INSERT INTO gns_snapshot (ns, seq, revision, record) VALUES (?, ?, ?, ?)",
                    [
                        (ns, seq, rev, json.dumps(rec.to_dict()))
                        for seq, (rev, rec) in enumerate(entries)
                    ],
                )
                cur.execute(
                    "INSERT INTO gns_meta (ns, revision, compacted) VALUES (?, ?, ?)"
                    " ON CONFLICT(ns) DO UPDATE SET compacted=excluded.compacted",
                    (ns, revision, revision),
                )
                self._con.commit()
            except sqlite3.Error:
                self._con.rollback()
                raise
            self._compacted[ns] = revision
            return revision

    def close(self) -> None:
        with self._lock:
            self._con.close()
