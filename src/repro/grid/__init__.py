"""Grid substrate: testbed machines, WAN model, NWS, replica catalogue."""

from .machine import Machine, MachineSpec
from .network import MB, SiteTopology, build_network
from .nws import Forecast, Forecaster, Measurement, NetworkWeatherService
from .probes import ProbeDaemon
from .replica_catalog import Replica, ReplicaCatalog
from .testbed import TESTBED, make_machines, make_network, paper_table1_rows, testbed_topology

__all__ = [
    "Machine",
    "MachineSpec",
    "MB",
    "SiteTopology",
    "build_network",
    "Forecast",
    "Forecaster",
    "Measurement",
    "NetworkWeatherService",
    "ProbeDaemon",
    "Replica",
    "ReplicaCatalog",
    "TESTBED",
    "make_machines",
    "make_network",
    "paper_table1_rows",
    "testbed_topology",
]
