"""Tests for the metrics registry (repro.obs.metrics)."""

import json
import threading

import pytest

from repro import obs
from repro.obs.metrics import MetricsError, MetricsRegistry


@pytest.fixture()
def reg():
    return MetricsRegistry()


class TestRegistration:
    def test_counter_roundtrip(self, reg):
        c = reg.counter("ops_total", "ops", labelnames=("op",))
        c.labels(op="read").inc()
        c.labels(op="read").inc(2)
        assert reg.value("ops_total", {"op": "read"}) == 3
        assert reg.value("ops_total", {"op": "write"}) is None

    def test_redeclare_same_schema_returns_same_family(self, reg):
        a = reg.counter("x_total", labelnames=("k",))
        b = reg.counter("x_total", labelnames=("k",))
        assert a is b

    def test_conflicting_schema_raises(self, reg):
        reg.counter("y_total", labelnames=("k",))
        with pytest.raises(MetricsError):
            reg.gauge("y_total", labelnames=("k",))
        with pytest.raises(MetricsError):
            reg.counter("y_total", labelnames=("other",))

    def test_invalid_names_rejected(self, reg):
        with pytest.raises(MetricsError):
            reg.counter("bad name")
        with pytest.raises(MetricsError):
            reg.counter("ok_total", labelnames=("bad-label",))

    def test_wrong_labels_rejected(self, reg):
        c = reg.counter("z_total", labelnames=("a", "b"))
        with pytest.raises(MetricsError):
            c.labels(a="1")
        with pytest.raises(MetricsError):
            c.inc()  # labelled family has no default child

    def test_unlabelled_family_is_its_own_child(self, reg):
        c = reg.counter("plain_total")
        c.inc(5)
        assert c.value == 5
        assert reg.value("plain_total") == 5


class TestKinds:
    def test_counter_monotonic(self, reg):
        c = reg.counter("mono_total")
        with pytest.raises(MetricsError):
            c.inc(-1)

    def test_gauge_up_down(self, reg):
        g = reg.gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_histogram_buckets_cumulative(self, reg):
        h = reg.histogram("lat_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(5.555)
        [(labels, export)] = list(reg.get("lat_seconds").series())
        assert labels == {}
        assert export["buckets"] == {"0.01": 1, "0.1": 2, "1": 3, "+Inf": 4}

    def test_histogram_time_context(self, reg):
        h = reg.histogram("dur_seconds")
        with h.time():
            pass
        assert h.count == 1


class TestExport:
    def test_snapshot_is_json_serialisable(self, reg):
        reg.counter("a_total", "help a", labelnames=("k",)).labels(k="v").inc()
        reg.histogram("b_seconds").observe(0.2)
        snap = reg.snapshot()
        parsed = json.loads(json.dumps(snap))
        assert parsed["a_total"]["type"] == "counter"
        assert parsed["a_total"]["series"][0] == {"labels": {"k": "v"}, "value": 1.0}
        assert parsed["b_seconds"]["series"][0]["value"]["count"] == 1

    def test_snapshot_skips_empty_families(self, reg):
        reg.counter("never_total")
        assert "never_total" not in reg.snapshot()

    def test_render_text_format(self, reg):
        reg.counter("c_total", "a counter", labelnames=("op",)).labels(op="r").inc(2)
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        text = reg.render_text()
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{op="r"} 2' in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum 0.5" in text
        assert "h_seconds_count 1" in text

    def test_label_value_escaping(self, reg):
        reg.counter("e_total", labelnames=("p",)).labels(p='a"b\\c').inc()
        text = reg.render_text()
        assert 'p="a\\"b\\\\c"' in text


class TestLifecycle:
    def test_reset_keeps_families(self, reg):
        fam = reg.counter("r_total", labelnames=("k",))
        fam.labels(k="v").inc(7)
        reg.reset()
        assert reg.value("r_total", {"k": "v"}) is None
        fam.labels(k="v").inc()  # import-time binding still live
        assert reg.value("r_total", {"k": "v"}) == 1

    def test_disabled_makes_mutation_noop(self):
        fam = obs.counter("test_disabled_total")
        before = fam.value
        with obs.disabled():
            fam.inc(100)
        assert fam.value == before
        fam.inc()
        assert fam.value == before + 1

    def test_thread_safety(self, reg):
        c = reg.counter("t_total")
        h = reg.histogram("t_seconds", buckets=(0.5,))

        def work():
            for _ in range(1000):
                c.inc()
                h.observe(0.1)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000
        assert h.count == 8000


class TestDefaultRegistry:
    def test_module_conveniences_share_one_registry(self):
        fam = obs.counter("conv_total", labelnames=("k",))
        fam.labels(k="a").inc()
        assert obs.value("conv_total", {"k": "a"}) >= 1
        assert obs.get_registry().get("conv_total") is fam

    def test_instrumented_families_registered_at_import(self):
        import repro.core.trace  # noqa: F401 - registers transport_transfer_*
        import repro.workflow.runner  # noqa: F401 - registers workflow_* et al

        # A sample from each instrumented layer must exist by import.
        for name in (
            "fm_ops_total",
            "fm_policy_decisions_total",
            "fm_prefetch_hits_total",
            "gridftp_rpc_seconds",
            "rpc_client_calls_total",
            "buffer_bytes_written_total",
            "workflow_tasks_total",
            "workflow_coupling_total",
            "transport_transfer_bytes_total",
        ):
            assert obs.get_registry().get(name) is not None, name


class TestLabelCardinalityCap:
    def test_excess_combinations_collapse_into_overflow(self, reg):
        from repro.obs.metrics import OVERFLOW_LABEL

        c = reg.counter("peers_total", labelnames=("peer",))
        c.max_children = 4
        for i in range(10):
            c.labels(peer=f"10.0.0.{i}:500{i}").inc()
        snap = reg.snapshot()["peers_total"]["series"]
        assert len(snap) == 5  # 4 real children + the shared overflow child
        overflow = [s for s in snap if s["labels"] == {"peer": OVERFLOW_LABEL}]
        assert overflow and overflow[0]["value"] == 6.0

    def test_overflow_counter_names_the_offender(self, reg):
        c = reg.counter("noisy_total", labelnames=("k",))
        c.max_children = 2
        for i in range(5):
            c.labels(k=str(i)).inc()
        assert reg.value("obs_label_overflow_total", {"metric": "noisy_total"}) == 3

    def test_existing_children_unaffected_past_the_cap(self, reg):
        c = reg.counter("stable_total", labelnames=("k",))
        c.max_children = 2
        c.labels(k="a").inc()
        c.labels(k="b").inc()
        c.labels(k="c").inc()  # overflows
        c.labels(k="a").inc()  # still the real child, not overflow
        assert reg.value("stable_total", {"k": "a"}) == 2
        assert reg.value("obs_label_overflow_total", {"metric": "stable_total"}) == 1

    def test_default_cap_is_1024(self, reg):
        from repro.obs.metrics import DEFAULT_MAX_CHILDREN

        assert DEFAULT_MAX_CHILDREN == 1024
        assert reg.counter("anything_total", labelnames=("x",)).max_children == 1024

    def test_unlabelled_families_never_overflow(self, reg):
        c = reg.counter("plain2_total")
        c.max_children = 0  # pathological: must not break the single child
        c.inc()
        c.inc()
        assert reg.value("plain2_total") == 2
        assert reg.value("obs_label_overflow_total", {"metric": "plain2_total"}) is None

    def test_overflow_is_thread_safe(self, reg):
        c = reg.counter("race_total", labelnames=("k",))
        c.max_children = 8
        errors = []

        def hammer(base):
            try:
                for i in range(200):
                    c.labels(k=f"{base}-{i}").inc()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = sum(
            s["value"] for s in reg.snapshot()["race_total"]["series"]
        )
        assert total == 800  # every inc landed somewhere, none double-counted
