"""The Grid Buffer service.

Implements Section 4's design: the service "acts as a sink for WRITE
operations and a source for READs", storing data "in a hash table
rather than a sequential buffer" so random reads and writes work.
Additional paper semantics implemented here:

* **blocking reads** — a read of data not yet written waits for the
  writer ("if a block has not been written, the reader must wait").
* **delete-on-read** — once every registered reader has consumed a
  block it is removed from the hash table, bounding memory.
* **cache file** — if configured, every written block is also recorded
  in a :class:`~repro.gridbuffer.cache.BufferCache`; re-reads and
  backwards seeks are served from it after the table copy is gone.
* **broadcast** — one writer, many readers; a block is only dropped
  when *all* readers have consumed it.
* **bounded capacity / backpressure** — writers block while the table
  holds ``capacity_bytes``; this is what propagates a slow WAN reader
  back to the upstream model in the Table 5 experiments.

The service is thread-safe; the TCP server in
:mod:`repro.gridbuffer.server` simply exposes these methods remotely.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass
from typing import Dict, Optional

from .. import obs
from .cache import BufferCache, IntervalSet

__all__ = [
    "GridBufferError",
    "StreamClosed",
    "StreamFailed",
    "StreamStats",
    "GridBufferService",
]


logger = logging.getLogger("repro.gridbuffer")

_BYTES_WRITTEN = obs.counter(
    "buffer_bytes_written_total", "Bytes accepted by buffer streams", labelnames=("stream",)
)
_BLOCKS_STORED = obs.counter(
    "buffer_blocks_stored_total", "Blocks stored into buffer hash tables", labelnames=("stream",)
)
_BYTES_READ = obs.counter(
    "buffer_bytes_read_total", "Bytes delivered to buffer readers", labelnames=("stream",)
)
_CACHE_HITS = obs.counter(
    "buffer_cache_hits_total", "Reads served from a stream's cache file", labelnames=("stream",)
)
_CACHE_MISSES = obs.counter(
    "buffer_cache_misses_total",
    "Reads of consumed data with no cache file to fall back on",
    labelnames=("stream",),
)
_WRITER_STALLS = obs.counter(
    "buffer_writer_stalls_total",
    "Writer waits on a capacity-full buffer (backpressure events)",
    labelnames=("stream",),
)
_READER_WAITS = obs.counter(
    "buffer_reader_waits_total",
    "Reader waits for data not yet written",
    labelnames=("stream",),
)
_BLOCKS_CACHED = obs.gauge(
    "buffer_blocks_cached", "Blocks currently held in a stream's hash table", labelnames=("stream",)
)
_BYTES_CACHED = obs.gauge(
    "buffer_bytes_cached", "Bytes currently held in a stream's hash table", labelnames=("stream",)
)
_READERS = obs.gauge(
    "buffer_readers", "Readers registered on a stream (broadcast fan-out)", labelnames=("stream",)
)
_READER_LAG = obs.gauge(
    "buffer_reader_lag_bytes",
    "Bytes between the writer's high-water mark and a reader's read frontier",
    labelnames=("stream", "reader"),
)


class GridBufferError(RuntimeError):
    """Protocol violation or unavailable data."""


class StreamClosed(GridBufferError):
    """Write to a stream whose writer already closed it."""


class StreamFailed(GridBufferError):
    """The stream was aborted by a writer-side fault."""


@dataclass
class StreamStats:
    """Observable counters for one stream (for tests and benchmarks)."""

    bytes_written: int = 0
    bytes_read: int = 0
    blocks_in_table: int = 0
    bytes_in_table: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    writer_stalls: int = 0
    reader_waits: int = 0


class _Stream:
    def __init__(
        self,
        name: str,
        n_readers: int,
        capacity_bytes: Optional[int],
        cache: Optional[BufferCache],
    ):
        self.name = name
        self.n_readers = n_readers
        self.capacity = capacity_bytes
        self.cache = cache
        self.blocks: Dict[int, bytes] = {}
        self.in_table = IntervalSet()
        self.written = IntervalSet()
        self.consumed: Dict[str, IntervalSet] = {}
        self.eof_total: Optional[int] = None
        self.failed: Optional[str] = None
        self.mem_bytes = 0
        self.cond = threading.Condition()
        self.stats = StreamStats()
        # Per-stream metric children bound once; hot paths pay a lock + add.
        self.m_bytes_written = _BYTES_WRITTEN.labels(stream=name)
        self.m_blocks_stored = _BLOCKS_STORED.labels(stream=name)
        self.m_bytes_read = _BYTES_READ.labels(stream=name)
        self.m_cache_hits = _CACHE_HITS.labels(stream=name)
        self.m_cache_misses = _CACHE_MISSES.labels(stream=name)
        self.m_writer_stalls = _WRITER_STALLS.labels(stream=name)
        self.m_reader_waits = _READER_WAITS.labels(stream=name)
        self.m_blocks_cached = _BLOCKS_CACHED.labels(stream=name)
        self.m_bytes_cached = _BYTES_CACHED.labels(stream=name)
        self.m_readers = _READERS.labels(stream=name)

    def sync_table_gauges(self) -> None:
        """Push table occupancy into the registry (callers hold ``cond``)."""
        self.m_blocks_cached.set(len(self.blocks))
        self.m_bytes_cached.set(self.mem_bytes)

    def sync_reader_lag(self, reader_id: str) -> None:
        """Publish writer-frontier minus reader-frontier (callers hold ``cond``)."""
        ivs = self.written.intervals()
        top = ivs[-1][1] if ivs else 0
        done = self.consumed[reader_id].intervals()
        frontier = done[-1][1] if done else 0
        _READER_LAG.labels(stream=self.name, reader=reader_id).set(max(0, top - frontier))


def _remove_interval(ivs: IntervalSet, start: int, end: int) -> None:
    """Remove [start, end) from an interval set (rebuild)."""
    remaining = []
    for s, e in ivs.intervals():
        if e <= start or s >= end:
            remaining.append((s, e))
        else:
            if s < start:
                remaining.append((s, start))
            if e > end:
                remaining.append((end, e))
    ivs._ivs = remaining  # noqa: SLF001 - module-private helper


class GridBufferService:
    """In-process Grid Buffer holding any number of named streams."""

    def __init__(self, default_capacity: Optional[int] = 32 * 1024 * 1024):
        self.default_capacity = default_capacity
        self._streams: Dict[str, _Stream] = {}
        self._lock = threading.Lock()

    # -- stream lifecycle ----------------------------------------------------
    def create_stream(
        self,
        name: str,
        n_readers: int = 1,
        capacity_bytes: Optional[int] = None,
        cache: Optional[BufferCache] = None,
    ) -> None:
        """Declare a stream before use.  Idempotent for identical config."""
        if n_readers < 1:
            raise ValueError("n_readers must be >= 1")
        with self._lock:
            existing = self._streams.get(name)
            if existing is not None:
                if existing.n_readers != n_readers:
                    raise GridBufferError(f"stream {name!r} already exists with different config")
                return
            cap = capacity_bytes if capacity_bytes is not None else self.default_capacity
            self._streams[name] = _Stream(name, n_readers, cap, cache)
            logger.debug(
                "stream %s created (readers=%d capacity=%s cache=%s)",
                name, n_readers, cap, cache is not None,
            )

    def _stream(self, name: str) -> _Stream:
        with self._lock:
            try:
                return self._streams[name]
            except KeyError:
                raise GridBufferError(f"unknown stream {name!r}") from None

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._streams

    def register_reader(self, name: str, reader_id: str) -> None:
        """Attach a reader; at most ``n_readers`` distinct ids allowed."""
        st = self._stream(name)
        with st.cond:
            if reader_id in st.consumed:
                return
            if len(st.consumed) >= st.n_readers:
                raise GridBufferError(
                    f"stream {name!r} already has {st.n_readers} readers"
                )
            st.consumed[reader_id] = IntervalSet()
            st.m_readers.set(len(st.consumed))
            st.cond.notify_all()

    def stats(self, name: str) -> StreamStats:
        st = self._stream(name)
        with st.cond:
            st.stats.blocks_in_table = len(st.blocks)
            st.stats.bytes_in_table = st.mem_bytes
            return StreamStats(**vars(st.stats))

    def drop_stream(self, name: str) -> None:
        with self._lock:
            st = self._streams.pop(name, None)
        if st is not None and st.cache is not None:
            st.cache.close()

    # -- writer side ----------------------------------------------------------
    def write(self, name: str, offset: int, data: bytes, timeout: Optional[float] = None) -> None:
        """Store a block at ``offset``; blocks while capacity is exhausted."""
        if offset < 0:
            raise ValueError("offset must be >= 0")
        st = self._stream(name)
        if not data:
            return
        with st.cond:
            if st.failed is not None:
                raise StreamFailed(f"stream {name!r} failed: {st.failed}")
            if st.eof_total is not None:
                raise StreamClosed(f"stream {name!r} writer already closed")
            if st.capacity is not None and len(data) > st.capacity:
                raise GridBufferError(
                    f"block of {len(data)} bytes exceeds stream capacity {st.capacity}"
                )
            while st.capacity is not None and st.mem_bytes + len(data) > st.capacity:
                st.stats.writer_stalls += 1
                st.m_writer_stalls.inc()
                if not st.cond.wait(timeout=timeout):
                    raise TimeoutError(f"write stalled on full buffer {name!r}")
            if st.written.covers(offset, offset + len(data)) and st.cache is None:
                # Overwrite of in-flight data: replace table contents.
                self._drop_blocks_overlapping(st, offset, offset + len(data))
            st.blocks[offset] = bytes(data)
            st.in_table.add(offset, offset + len(data))
            st.written.add(offset, offset + len(data))
            st.mem_bytes += len(data)
            st.stats.bytes_written += len(data)
            st.m_bytes_written.inc(len(data))
            st.m_blocks_stored.inc()
            st.sync_table_gauges()
            if st.cache is not None:
                st.cache.store(offset, data)
            st.cond.notify_all()

    def close_writer(self, name: str) -> int:
        """Mark EOF; returns the stream's total length.

        The stream must be contiguous from offset 0 — a gap means some
        range was never written and readers would block forever.
        """
        st = self._stream(name)
        with st.cond:
            if st.eof_total is not None:
                return st.eof_total
            gap = st.written.first_gap(0, 1 << 62)
            ivs = st.written.intervals()
            total = ivs[-1][1] if ivs else 0
            if gap is not None and gap[0] < total:
                raise GridBufferError(
                    f"stream {name!r} has unwritten gap at {gap}; cannot close"
                )
            st.eof_total = total
            st.cond.notify_all()
            return total

    # -- fault handling ---------------------------------------------------------
    def abort_writer(self, name: str, reason: str = "writer aborted") -> None:
        """Mark the stream failed; waiting readers raise StreamFailed.

        A stream with no EOF whose writer dies would otherwise block its
        readers forever (Section 4 motivates the cache partly as fault
        flexibility — this is the explicit failure signal).
        """
        st = self._stream(name)
        with st.cond:
            st.failed = reason
            logger.warning("stream %s aborted: %s", name, reason)
            st.cond.notify_all()

    def resume_writer(self, name: str) -> int:
        """Clear a failure and return the offset to resume writing from.

        The resume point is the contiguous high-water mark: everything
        below it was durably delivered (table or cache).  A restarted
        writer seeks its source to this offset and continues.
        """
        st = self._stream(name)
        with st.cond:
            if st.eof_total is not None:
                raise StreamClosed(f"stream {name!r} already completed")
            st.failed = None
            st.cond.notify_all()
            gap = st.written.first_gap(0, 1 << 62)
            ivs = st.written.intervals()
            top = ivs[-1][1] if ivs else 0
            return gap[0] if gap is not None and gap[0] < top else top

    def high_water(self, name: str) -> int:
        """Contiguous bytes written from offset 0 (resume/monitor aid)."""
        st = self._stream(name)
        with st.cond:
            gap = st.written.first_gap(0, 1 << 62)
            ivs = st.written.intervals()
            top = ivs[-1][1] if ivs else 0
            return gap[0] if gap is not None and gap[0] < top else top

    # -- reader side ----------------------------------------------------------
    def read(
        self,
        name: str,
        reader_id: str,
        offset: int,
        length: int,
        timeout: Optional[float] = None,
    ) -> bytes:
        """Read up to ``length`` bytes at ``offset`` for ``reader_id``.

        POSIX semantics: blocks only while *nothing* is available at
        ``offset``; otherwise returns the available prefix (possibly
        fewer than ``length`` bytes).  Returns ``b""`` exactly when
        ``offset`` is at/after EOF.  Blocking for the full range would
        deadlock against a capacity-stalled writer.
        """
        if offset < 0 or length < 0:
            raise ValueError("offset/length must be >= 0")
        st = self._stream(name)
        with st.cond:
            if reader_id not in st.consumed:
                raise GridBufferError(
                    f"reader {reader_id!r} not registered on stream {name!r}"
                )
            while True:
                if st.failed is not None:
                    raise StreamFailed(f"stream {name!r} failed: {st.failed}")
                end = offset + length
                if st.eof_total is not None:
                    if offset >= st.eof_total:
                        return b""
                    end = min(end, st.eof_total)
                avail_end = self._available_upto(st, offset, end)
                if avail_end > offset:
                    data = self._assemble(st, reader_id, offset, avail_end)
                    st.stats.bytes_read += len(data)
                    st.m_bytes_read.inc(len(data))
                    st.sync_reader_lag(reader_id)
                    st.cond.notify_all()
                    return data
                self._check_recoverable(st, offset, end)
                st.stats.reader_waits += 1
                st.m_reader_waits.inc()
                if not st.cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"read of [{offset},{end}) timed out on stream {name!r}"
                    )

    # -- internals -----------------------------------------------------------
    def _check_recoverable(self, st: _Stream, start: int, end: int) -> None:
        """Raise if some wanted byte was written, consumed and uncached.

        Without this a re-read on a cache-less stream would block
        forever waiting for data that will never reappear.
        """
        pos = start
        while pos < end:
            if st.in_table.covers(pos, pos + 1):
                gap = st.in_table.first_gap(pos, end)
                pos = end if gap is None else gap[0]
                continue
            if st.cache is not None and st.cache.has(pos, 1):
                pos = min(st.cache.valid_upto(pos), end)
                continue
            if st.written.covers(pos, pos + 1):
                raise GridBufferError(
                    f"range [{pos},{end}) of stream {st.name!r} was consumed and no "
                    "cache file is configured (sequential-only stream)"
                )
            return  # genuinely unwritten: caller should wait

    def _available_upto(self, st: _Stream, start: int, end: int) -> int:
        """Furthest position in [start, end) servable contiguously now."""
        pos = start
        while pos < end:
            if st.in_table.covers(pos, pos + 1):
                gap = st.in_table.first_gap(pos, end)
                pos = end if gap is None else gap[0]
            elif st.cache is not None and st.cache.has(pos, 1):
                pos = min(st.cache.valid_upto(pos), end)
            else:
                break
        return pos

    def _assemble(self, st: _Stream, reader_id: str, start: int, end: int) -> bytes:
        out = bytearray()
        pos = start
        touched: list[int] = []
        while pos < end:
            block_off = self._covering_block(st, pos)
            if block_off is not None:
                data = st.blocks[block_off]
                take_from = pos - block_off
                take = min(len(data) - take_from, end - pos)
                out += data[take_from : take_from + take]
                touched.append(block_off)
                pos += take
                continue
            if st.cache is not None and st.cache.has(pos, 1):
                upto = min(st.cache.valid_upto(pos), end)
                out += st.cache.load(pos, upto - pos)
                st.stats.cache_hits += 1
                st.m_cache_hits.inc()
                pos = upto
                continue
            st.stats.cache_misses += 1
            st.m_cache_misses.inc()
            raise GridBufferError(
                f"range [{pos},{end}) of stream {st.name!r} was consumed and no "
                "cache file is configured (sequential-only stream)"
            )
        st.consumed[reader_id].add(start, end)
        self._gc_blocks(st, touched)
        st.sync_table_gauges()
        return bytes(out)

    def _covering_block(self, st: _Stream, pos: int) -> Optional[int]:
        # Block offsets are sparse; scan candidates via the interval set
        # first to avoid touching the dict when clearly absent.
        if not st.in_table.covers(pos, pos + 1):
            return None
        for off, data in st.blocks.items():
            if off <= pos < off + len(data):
                return off
        return None

    def _gc_blocks(self, st: _Stream, offsets: list[int]) -> None:
        """Drop table blocks fully consumed by every registered reader.

        Until all ``n_readers`` readers have registered, nothing is
        dropped (a late-joining reader must still see the data).
        """
        if len(st.consumed) < st.n_readers:
            return
        for off in set(offsets):
            data = st.blocks.get(off)
            if data is None:
                continue
            end = off + len(data)
            if all(c.covers(off, end) for c in st.consumed.values()):
                del st.blocks[off]
                st.mem_bytes -= len(data)
                _remove_interval(st.in_table, off, end)

    def _drop_blocks_overlapping(self, st: _Stream, start: int, end: int) -> None:
        for off in [o for o, d in st.blocks.items() if o < end and o + len(d) > start]:
            data = st.blocks.pop(off)
            st.mem_bytes -= len(data)
            _remove_interval(st.in_table, off, off + len(data))
