"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Environment, Interrupt, SimulationError


class TestEventBasics:
    def test_event_starts_pending(self):
        env = Environment()
        evt = env.event()
        assert not evt.triggered
        assert evt.ok is None

    def test_succeed_delivers_value(self):
        env = Environment()
        evt = env.event()
        evt.succeed(42)
        assert evt.triggered
        assert evt.ok is True
        assert evt.value == 42

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_double_trigger_raises(self):
        env = Environment()
        evt = env.event()
        evt.succeed()
        with pytest.raises(SimulationError):
            evt.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)


class TestClock:
    def test_time_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_timeout_advances_clock(self):
        env = Environment()
        env.timeout(3.5)
        env.run()
        assert env.now == 3.5

    def test_run_until_caps_clock(self):
        env = Environment()
        env.timeout(10.0)
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_past_raises(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_peek_empty_queue_is_inf(self):
        env = Environment()
        env.run()
        assert env.peek() == float("inf")


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            return "done"

        p = env.process(proc(env))
        env.run()
        assert p.value == "done"

    def test_processes_interleave_by_time(self):
        env = Environment()
        log = []

        def proc(env, name, delay):
            yield env.timeout(delay)
            log.append((env.now, name))

        env.process(proc(env, "late", 2.0))
        env.process(proc(env, "early", 1.0))
        env.run()
        assert log == [(1.0, "early"), (2.0, "late")]

    def test_same_time_fifo_order(self):
        env = Environment()
        log = []

        def proc(env, name):
            yield env.timeout(1.0)
            log.append(name)

        for name in "abc":
            env.process(proc(env, name))
        env.run()
        assert log == ["a", "b", "c"]

    def test_process_waits_on_process(self):
        env = Environment()

        def child(env):
            yield env.timeout(5)
            return 7

        def parent(env):
            value = yield env.process(child(env))
            return value * 2

        p = env.process(parent(env))
        env.run()
        assert p.value == 14
        assert env.now == 5.0

    def test_waiting_on_already_finished_process(self):
        env = Environment()

        def child(env):
            yield env.timeout(1)
            return "x"

        def parent(env, child_proc):
            yield env.timeout(10)
            value = yield child_proc
            return value

        c = env.process(child(env))
        p = env.process(parent(env, c))
        env.run()
        assert p.value == "x"
        assert env.now == 10.0

    def test_unhandled_process_exception_surfaces(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise RuntimeError("boom")

        env.process(bad(env))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_watched_failure_propagates_to_waiter(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise ValueError("inner")

        def waiter(env, proc):
            try:
                yield proc
            except ValueError as exc:
                return f"caught {exc}"

        p = env.process(waiter(env, env.process(bad(env))))
        env.run()
        assert p.value == "caught inner"

    def test_yield_non_event_raises_in_process(self):
        env = Environment()

        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(SimulationError, match="non-event"):
            env.run()


class TestInterrupt:
    def test_interrupt_wakes_sleeping_process(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
                return ("slept", env.now)
            except Interrupt as intr:
                return (f"interrupted:{intr.cause}", env.now)

        def interrupter(env, target):
            yield env.timeout(1)
            target.interrupt("stop")

        p = env.process(sleeper(env))
        env.process(interrupter(env, p))
        env.run()
        # The abandoned 100 s timeout still drains the queue (and moves
        # the clock), but the process itself resumed at t=1.
        assert p.value == ("interrupted:stop", 1.0)

    def test_interrupt_finished_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()

        def proc(env):
            result = yield env.all_of([env.timeout(1, "a"), env.timeout(3, "b")])
            return sorted(result.values())

        p = env.process(proc(env))
        env.run()
        assert p.value == ["a", "b"]
        assert env.now == 3.0

    def test_any_of_fires_on_first(self):
        env = Environment()

        def proc(env):
            result = yield env.any_of([env.timeout(5, "slow"), env.timeout(1, "fast")])
            return (list(result.values()), env.now)

        p = env.process(proc(env))
        env.run()
        # The abandoned slow timeout still drains afterwards; the
        # condition itself fired at t=1 with only the fast value.
        assert p.value == (["fast"], 1.0)

    def test_empty_all_of_fires_immediately(self):
        env = Environment()

        def proc(env):
            yield env.all_of([])
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.0

    def test_all_of_propagates_failure(self):
        env = Environment()
        bad = env.event()

        def proc(env):
            try:
                yield env.all_of([env.timeout(1), bad])
            except RuntimeError:
                return "failed"

        p = env.process(proc(env))
        bad.fail(RuntimeError("x"))
        env.run()
        assert p.value == "failed"


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            env = Environment()
            trace = []

            def proc(env, name, delays):
                for d in delays:
                    yield env.timeout(d)
                    trace.append((round(env.now, 9), name))

            env.process(proc(env, "a", [0.1] * 20))
            env.process(proc(env, "b", [0.13] * 17))
            env.process(proc(env, "c", [0.07] * 25))
            env.run()
            return trace

        assert build_and_run() == build_and_run()
