"""cc2lam: the linking model between C-CAM and DARLAM.

"cc2lam provides simple data manipulation and filtering between the two
codes" (Section 5.3): per timestep it reads one global history record,
bilinearly interpolates it onto the limited-area domain grid, applies a
light smoothing filter, and writes one regional record — a classic
streaming transformer (tiny compute, all IO).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from .ccam import read_history_header

__all__ = ["LamDomain", "interpolate_to_domain", "run_cc2lam", "LAM_MAGIC"]

LAM_MAGIC = b"LAMINPUT1\n"


@dataclass(frozen=True)
class LamDomain:
    """The limited-area (regional) grid: uniform, higher resolution."""

    lon_min: float = 110.0
    lon_max: float = 160.0
    lat_min: float = -45.0
    lat_max: float = -5.0
    nx: int = 72
    ny: int = 60

    def __post_init__(self) -> None:
        if self.lon_min >= self.lon_max or self.lat_min >= self.lat_max:
            raise ValueError("degenerate domain extents")
        if self.nx < 4 or self.ny < 4:
            raise ValueError("domain grid too small")

    def lons(self) -> np.ndarray:
        return np.linspace(self.lon_min, self.lon_max, self.nx)

    def lats(self) -> np.ndarray:
        return np.linspace(self.lat_min, self.lat_max, self.ny)


def interpolate_to_domain(
    field: np.ndarray,
    src_lons: np.ndarray,
    src_lats: np.ndarray,
    domain: LamDomain,
) -> np.ndarray:
    """Bilinear interpolation from (possibly stretched) source axes."""
    tgt_lons = domain.lons()
    tgt_lats = domain.lats()
    # Indices of the left/lower source cell for each target coordinate.
    li = np.clip(np.searchsorted(src_lons, tgt_lons) - 1, 0, len(src_lons) - 2)
    lj = np.clip(np.searchsorted(src_lats, tgt_lats) - 1, 0, len(src_lats) - 2)
    wx = (tgt_lons - src_lons[li]) / (src_lons[li + 1] - src_lons[li])
    wy = (tgt_lats - src_lats[lj]) / (src_lats[lj + 1] - src_lats[lj])
    wx = np.clip(wx, 0.0, 1.0)
    wy = np.clip(wy, 0.0, 1.0)
    f00 = field[np.ix_(lj, li)]
    f01 = field[np.ix_(lj, li + 1)]
    f10 = field[np.ix_(lj + 1, li)]
    f11 = field[np.ix_(lj + 1, li + 1)]
    wxg, wyg = np.meshgrid(wx, wy)
    return (
        f00 * (1 - wxg) * (1 - wyg)
        + f01 * wxg * (1 - wyg)
        + f10 * (1 - wxg) * wyg
        + f11 * wxg * wyg
    )


def _smooth(field: np.ndarray) -> np.ndarray:
    """3-point binomial filter in both directions (edge-clamped)."""
    padded = np.pad(field, 1, mode="edge")
    return (
        padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
        + 4.0 * field
    ) / 8.0


def write_lam_header(fh, nx: int, ny: int, nsteps: int) -> None:
    fh.write(LAM_MAGIC)
    fh.write(struct.pack("<iii", nx, ny, nsteps))


def read_lam_header(fh) -> tuple[int, int, int]:
    magic = fh.read(len(LAM_MAGIC))
    if magic != LAM_MAGIC:
        raise ValueError(f"bad LAM magic {magic!r}")
    nx, ny, nsteps = struct.unpack("<iii", fh.read(12))
    return nx, ny, nsteps


def run_cc2lam(io) -> None:
    """Stage entry point: stream global records → regional records."""
    from .ccam import StretchedGrid

    domain = LamDomain(
        nx=int(io.param("lam_nx", 72)),
        ny=int(io.param("lam_ny", 60)),
    )
    with io.open("ccam_hist", "rb") as src, io.open("lam_input", "wb") as dst:
        nlon, nlat, nsteps = read_history_header(src)
        grid = StretchedGrid(nlon=nlon, nlat=nlat)
        src_lons, src_lats = grid.lons(), grid.lats()
        write_lam_header(dst, domain.nx, domain.ny, nsteps)
        rec_bytes = nlon * nlat * 4
        for _ in range(nsteps):
            raw = src.read(rec_bytes)
            if len(raw) < rec_bytes:
                raise EOFError("truncated C-CAM history")
            field = np.frombuffer(raw, dtype="<f4").reshape(nlat, nlon).astype(np.float64)
            regional = _smooth(interpolate_to_domain(field, src_lons, src_lats, domain))
            dst.write(regional.astype("<f4").tobytes())
