"""Shared fixtures: in-process grid deployments, hosts, servers."""

from __future__ import annotations

import pytest

from repro.gns.server import NameService
from repro.gns.client import LocalGnsClient
from repro.gridbuffer.server import GridBufferServer
from repro.transport.gridftp import GridFtpServer
from repro.transport.inmem import HostRegistry


@pytest.fixture()
def hosts(tmp_path):
    """Two-host virtual grid rooted in tmp_path."""
    registry = HostRegistry(tmp_path / "hosts")
    registry.add_host("alpha")
    registry.add_host("beta")
    return registry


@pytest.fixture()
def buffer_server(tmp_path):
    server = GridBufferServer(cache_dir=tmp_path / "gb-cache")
    server.start()
    yield server
    server.stop()


@pytest.fixture()
def ftp_beta(hosts):
    server = GridFtpServer(hosts.host("beta").root)
    server.start()
    yield server
    server.stop()


@pytest.fixture()
def name_service(buffer_server):
    return NameService(locate_buffer_server=lambda machine: buffer_server.address)


@pytest.fixture()
def gns(name_service):
    return LocalGnsClient(name_service)
