"""Trace context crossing the RPC wire (ARCHITECTURE.md §12).

Every client call injects ``_trace``; the server pops it before the
handler runs and parents its ``rpc.server`` span under the remote
caller — for all three async-engine handler kinds.  Version skew is
silent in both directions: the legacy threaded server ignores the
key, a legacy client simply never sends one.
"""

import socket
import threading

import pytest

from repro import obs
from repro.transport.tcp import (
    RpcClient,
    RpcServer,
    ThreadedRpcServer,
    recv_frame,
    send_frame,
)
from repro.transport.wire import TRACE_KEY


@pytest.fixture()
def sink():
    s = obs.MemorySink()
    prior = obs.configure(s)
    yield s
    obs.configure(prior)


def _one(spans, **attrs):
    found = [
        s for s in spans
        if all((s.get("attrs") or {}).get(k) == v for k, v in attrs.items())
    ]
    assert len(found) == 1, f"want exactly one span with {attrs}, got {len(found)}"
    return found[0]


@pytest.fixture()
def server():
    seen_headers = {}

    def threaded(header, payload):
        seen_headers["t.thread"] = sorted(header)
        with obs.span("handler.work", op="t.thread"):
            return {"kind": "thread"}, payload

    def inline(header, payload):
        seen_headers["t.inline"] = sorted(header)
        with obs.span("handler.work", op="t.inline"):
            return {"kind": "inline"}, payload

    async def native(header, payload):
        seen_headers["t.async"] = sorted(header)
        return {"kind": "async"}, payload

    with RpcServer() as srv:
        srv.register("t.thread", threaded)
        srv.register("t.inline", inline, inline=True)
        srv.register_async("t.async", native)
        srv.seen_headers = seen_headers
        yield srv


class TestHandlerKinds:
    @pytest.mark.parametrize("op", ["t.thread", "t.inline", "t.async"])
    def test_server_span_parents_under_remote_caller(self, sink, server, op):
        host, port = server.address
        client = RpcClient(host, port)
        try:
            with obs.span("root", test=op):
                reply, _ = client.call(op, {"n": 1}, b"x")
            assert reply["ok"]
        finally:
            client.close()

        spans = sink.spans()
        root = _one(spans, test=op)
        rpc_client = _one([s for s in spans if s["name"] == "rpc.client"], op=op)
        rpc_server = _one([s for s in spans if s["name"] == "rpc.server"], op=op)
        assert rpc_client["parent"] == root["span"]
        assert rpc_server["parent"] == rpc_client["span"]
        # One trace end to end, and the remote span really is remote-shaped.
        assert rpc_server["trace"] == root["trace"]
        assert rpc_server["attrs"]["kind"] == op.split(".")[1][:6]

    @pytest.mark.parametrize("op", ["t.thread", "t.inline"])
    def test_handler_spans_parent_under_server_span(self, sink, server, op):
        """Sync handlers get the context re-attached on their own thread,
        so spans the handler body opens nest under ``rpc.server``."""
        host, port = server.address
        client = RpcClient(host, port)
        try:
            with obs.span("root"):
                client.call(op)
        finally:
            client.close()
        spans = sink.spans()
        rpc_server = _one([s for s in spans if s["name"] == "rpc.server"], op=op)
        work = _one([s for s in spans if s["name"] == "handler.work"], op=op)
        assert work["parent"] == rpc_server["span"]
        assert work["trace"] == rpc_server["trace"]

    @pytest.mark.parametrize("op", ["t.thread", "t.inline", "t.async"])
    def test_handlers_never_see_the_trace_key(self, sink, server, op):
        host, port = server.address
        client = RpcClient(host, port)
        try:
            with obs.span("root"):
                client.call(op, {"n": 1})
        finally:
            client.close()
        assert TRACE_KEY not in server.seen_headers[op]

    def test_concurrent_pipelined_calls_keep_parents_straight(self, sink, server):
        """Many in-flight calls over pooled connections: each rpc.server
        span must still parent under ITS caller, not a sibling's."""
        host, port = server.address
        client = RpcClient(host, port)
        try:
            with obs.span("root"):
                ctx = obs.current_context()
                errors = []

                def worker(i):
                    with obs.attach(ctx):
                        try:
                            reply, _ = client.call("t.async", {"i": i})
                            assert reply["ok"]
                        except Exception as exc:  # noqa: BLE001 - surfaced below
                            errors.append(exc)

                threads = [
                    threading.Thread(target=worker, args=(i,)) for i in range(8)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            assert not errors
        finally:
            client.close()
        spans = sink.spans()
        clients = {s["span"]: s for s in spans if s["name"] == "rpc.client"}
        servers = [s for s in spans if s["name"] == "rpc.server"]
        assert len(clients) == 8 and len(servers) == 8
        for s in servers:
            caller = clients[s["parent"]]  # KeyError = mis-parented
            assert s["trace"] == caller["trace"]
            # The server interval sits inside its caller's (same clock
            # domain here — one process), which is what the multi-file
            # merge's offset estimator relies on.
            assert caller["start"] <= s["start"] and s["end"] <= caller["end"]


class TestCodecSkew:
    def test_new_client_old_json_server_drops_trace_silently(self, sink):
        """The legacy threaded server has no trace machinery: the call
        must succeed and produce a client-side span only."""
        def echo(header, payload):
            return {"echo": header.get("n")}, payload

        with ThreadedRpcServer() as srv:
            srv.register("echo", echo)
            host, port = srv.address
            client = RpcClient(host, port)
            try:
                with obs.span("root"):
                    reply, payload = client.call("echo", {"n": 7}, b"legacy")
            finally:
                client.close()
        assert reply["echo"] == 7 and payload == b"legacy"
        spans = sink.spans()
        assert [s["name"] for s in spans if s["name"] == "rpc.client"]
        assert not [s for s in spans if s["name"] == "rpc.server"]

    def test_old_client_new_server_starts_fresh_root(self, sink, server):
        """A raw legacy JSON frame with no ``_trace`` key: the server
        span must appear as a trace root, not crash or mis-parent."""
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            send_frame(sock, {"op": "t.inline"}, b"old")
            reply, payload = recv_frame(sock)
        assert reply["ok"] and payload == b"old"
        rpc_server = _one(
            [s for s in sink.spans() if s["name"] == "rpc.server"], op="t.inline"
        )
        assert rpc_server["parent"] is None

    def test_trace_key_rides_both_codecs(self, sink, server):
        """Force each codec explicitly; propagation is codec-independent."""
        host, port = server.address
        for wire in ("json", "binary"):
            client = RpcClient(host, port, wire=wire)
            try:
                with obs.span("root", wire=wire):
                    client.call("t.async", {"w": wire})
            finally:
                client.close()
        spans = sink.spans()
        for wire in ("json", "binary"):
            root = _one(spans, wire=wire)
            matching = [
                s for s in spans
                if s["name"] == "rpc.server" and s["trace"] == root["trace"]
            ]
            assert len(matching) == 1, f"{wire}: server span lost its trace"


class TestProcStamp:
    def test_span_records_carry_proc_label(self, sink, server):
        host, port = server.address
        client = RpcClient(host, port)
        try:
            with obs.span("root"):
                client.call("t.inline")
        finally:
            client.close()
        tracer = obs.get_tracer()
        for span in sink.spans():
            assert span["proc"] == tracer.proc
