"""Table formatting and paper-comparison helpers for the bench harness.

Every benchmark prints the same rows the paper reports, side by side
with the paper's measured values, plus the *shape checks* (who wins,
roughly by how much) that EXPERIMENTS.md tracks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["hms", "parse_hms", "TableBuilder", "ShapeCheck"]


def hms(seconds: float) -> str:
    """Format seconds as hh:mm:ss (the paper's convention)."""
    s = int(round(seconds))
    return f"{s // 3600:02d}:{s % 3600 // 60:02d}:{s % 60:02d}"


def parse_hms(text: str) -> int:
    """Parse hh:mm:ss or mm:ss into seconds."""
    parts = [int(p) for p in text.strip().split(":")]
    if len(parts) == 2:
        m, s = parts
        return m * 60 + s
    if len(parts) == 3:
        h, m, s = parts
        return h * 3600 + m * 60 + s
    raise ValueError(f"cannot parse time {text!r}")


@dataclass
class ShapeCheck:
    """One qualitative claim from the paper and whether we reproduce it."""

    claim: str
    holds: bool

    def __str__(self) -> str:
        status = "PASS" if self.holds else "FAIL"
        return f"[{status}] {self.claim}"


class TableBuilder:
    """Plain-text table with aligned columns (no deps, benchmark-friendly)."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []
        self.checks: List[ShapeCheck] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def add_check(self, claim: str, holds: bool) -> None:
        self.checks.append(ShapeCheck(claim, holds))

    @property
    def all_checks_pass(self) -> bool:
        return all(c.holds for c in self.checks)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if self.checks:
            lines.append("")
            lines.extend(str(c) for c in self.checks)
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - deliberate
        print()
        print(self.render())
        print()
