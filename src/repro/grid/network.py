"""WAN model for the testbed.

Builds the :class:`repro.sim.netsim.Network` link matrix from site and
country information.  Bandwidth/latency figures are calibrated against
the transfer times implied by the paper's Table 5 (the "File Copy" rows
give direct measurements of each path: e.g. brecca→bouscat moves the
intermediate dataset in 7:30, brecca→vpac27 in 15 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..sim.engine import Environment
from ..sim.netsim import LinkSpec, Network

__all__ = ["SiteTopology", "MB", "build_network"]

MB = 1024 * 1024


@dataclass(frozen=True)
class _PathClass:
    bandwidth: float  # bytes/s
    latency: float    # one-way seconds


# Calibrated path classes.  Within-site LANs are fast; metropolitan
# Melbourne links (Monash <-> VPAC) are a few MB/s; international paths
# are sub-MB/s with large latency, ordered AU-JP < AU-US < AU-UK.
_PATH_CLASSES: Dict[str, _PathClass] = {
    "same-site": _PathClass(bandwidth=10.0 * MB, latency=0.0005),
    "metro": _PathClass(bandwidth=3.0 * MB, latency=0.002),
    "AU-JP": _PathClass(bandwidth=1.0 * MB, latency=0.120),
    "AU-US": _PathClass(bandwidth=0.70 * MB, latency=0.180),
    "AU-UK": _PathClass(bandwidth=0.33 * MB, latency=0.320),
    "JP-US": _PathClass(bandwidth=0.80 * MB, latency=0.080),
    "UK-US": _PathClass(bandwidth=0.50 * MB, latency=0.120),
    "JP-UK": _PathClass(bandwidth=0.40 * MB, latency=0.280),
}


class SiteTopology:
    """Maps hosts to sites/countries and classifies paths between them."""

    def __init__(self) -> None:
        self._site: Dict[str, str] = {}
        self._country: Dict[str, str] = {}

    def add_host(self, host: str, site: str, country: str) -> None:
        self._site[host] = site
        self._country[host] = country

    def hosts(self) -> Iterable[str]:
        return self._site.keys()

    def site(self, host: str) -> str:
        return self._site[host]

    def country(self, host: str) -> str:
        return self._country[host]

    def classify(self, a: str, b: str) -> str:
        """Name the path class between two hosts."""
        if a not in self._site or b not in self._site:
            raise KeyError(f"unknown host in pair ({a!r}, {b!r})")
        if a == b or self._site[a] == self._site[b]:
            return "same-site"
        ca, cb = self._country[a], self._country[b]
        if ca == cb:
            return "metro"
        return "-".join(sorted((ca, cb)))

    def path_spec(self, a: str, b: str) -> LinkSpec:
        cls = self.classify(a, b)
        try:
            pc = _PATH_CLASSES[cls]
        except KeyError:
            raise KeyError(f"no path class for {a!r}<->{b!r} ({cls})") from None
        return LinkSpec(bandwidth=pc.bandwidth, latency=pc.latency)


def build_network(env: Environment, topology: SiteTopology) -> Network:
    """Instantiate the simulated WAN for all host pairs in ``topology``."""
    net = Network(env)
    hosts = sorted(topology.hosts())
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            net.connect(a, b, topology.path_spec(a, b))
    return net
