"""``griddles-bench``: regenerate any paper table/figure from the CLI.

Usage::

    griddles-bench                       # run everything
    griddles-bench table4 fig6           # run a subset
    griddles-bench --out results/        # also write one .txt per table
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .experiments import ALL_EXPERIMENTS

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="griddles-bench",
        description="Regenerate the paper's evaluation tables/figures from the calibrated model.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*ALL_EXPERIMENTS, []],
        help=f"subset to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to write each regenerated table as <name>.txt",
    )
    args = parser.parse_args(argv)
    names = args.experiments or list(ALL_EXPERIMENTS)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    failed = []
    for name in names:
        table = ALL_EXPERIMENTS[name]()
        table.print()
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(table.render() + "\n", encoding="utf-8")
        if not table.all_checks_pass:
            failed.append(name)
    if failed:
        print(f"SHAPE CHECK FAILURES in: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
