"""MAKE_SF_FILES: stress-field extraction for the crack code.

"The programs MAKE_SF_FILES and OBJECTIVE are used to transform data
from one phase to the other."  This transformer reads PAFEC's element
stresses and node table and produces, for every hole-boundary point,
the local *tangential* boundary stress — the quantity that drives crack
growth normal to the hole profile (JOB.SF), plus the boundary geometry
the crack code needs (JOB.TH).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["boundary_tangential_stress", "run_make_sf"]


def boundary_tangential_stress(
    nodes: np.ndarray,
    n_around: int,
    triangles: np.ndarray,
    stresses: np.ndarray,
) -> np.ndarray:
    """Tangential stress at each hole-boundary point.

    Averages the stress tensors of elements touching each boundary node
    and rotates into the local tangent direction: σ_t = t·σ·t.
    """
    m = n_around
    acc = np.zeros((m, 3))
    count = np.zeros(m)
    for tri, s in zip(triangles, stresses):
        for node in tri:
            if node < m:
                acc[node] += s
                count[node] += 1
    count[count == 0] = 1.0
    avg = acc / count[:, None]

    out = np.empty(m)
    for j in range(m):
        nxt, prv = nodes[(j + 1) % m], nodes[(j - 1) % m]
        t = nxt - prv
        norm = np.hypot(*t)
        if norm == 0:
            raise ValueError(f"coincident boundary points around index {j}")
        tx, ty = t / norm
        sxx, syy, txy = avg[j]
        out[j] = sxx * tx * tx + 2 * txy * tx * ty + syy * ty * ty
    return out


def _read_o04(fh) -> Tuple[np.ndarray, int, int]:
    first = fh.readline().split()
    n_nodes, n_around, n_rings = int(first[0]), int(first[1]), int(first[2])
    nodes = np.array([[float(v) for v in fh.readline().split()] for _ in range(n_nodes)])
    return nodes, n_around, n_rings


def _read_o02(fh) -> Tuple[np.ndarray, np.ndarray, float]:
    first = fh.readline().split()
    n_tri, applied = int(first[0]), float(first[1])
    tris = np.empty((n_tri, 3), dtype=np.int64)
    stresses = np.empty((n_tri, 3))
    for i in range(n_tri):
        parts = fh.readline().split()
        tris[i] = [int(parts[0]), int(parts[1]), int(parts[2])]
        stresses[i] = [float(parts[3]), float(parts[4]), float(parts[5])]
    return tris, stresses, applied


def run_make_sf(io) -> None:
    """Stage entry point: JOB.O02 + JOB.O04 → JOB.SF + JOB.TH."""
    with io.open("JOB.O04", "r") as fh:
        nodes, n_around, _ = _read_o04(fh)
    with io.open("JOB.O02", "r") as fh:
        tris, stresses, applied = _read_o02(fh)
    sigma_t = boundary_tangential_stress(nodes, n_around, tris, stresses)
    with io.open("JOB.SF", "w") as fh:
        fh.write(f"{len(sigma_t)} {applied:.9e}\n")
        for value in sigma_t:
            fh.write(f"{value:.9e}\n")
    with io.open("JOB.TH", "w") as fh:
        fh.write(f"{n_around}\n")
        for x, y in nodes[:n_around]:
            fh.write(f"{x:.9e} {y:.9e}\n")
