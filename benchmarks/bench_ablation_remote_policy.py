"""Ablation A4: copy-in vs proxy remote access (Section 3.1 heuristics).

Sweeps the expected read fraction against link latency and prints the
policy's decision matrix plus the break-even fraction per latency —
making the paper's qualitative guidance ("small fraction → don't copy";
"small file + high latency → copy") quantitative.
"""

from repro.bench.tables import TableBuilder
from repro.core.policy import AccessEstimate, AccessPolicy

MB = 1024 * 1024
FRACTIONS = [0.01, 0.05, 0.2, 0.5, 1.0]
LATENCIES = [0.001, 0.02, 0.1, 0.3]
FILE_SIZE = 64 * MB
BANDWIDTH = 2 * MB


def decision_matrix():
    policy = AccessPolicy()
    rows = []
    for latency in LATENCIES:
        cells = []
        for fraction in FRACTIONS:
            est = AccessEstimate(
                file_size=FILE_SIZE,
                bandwidth=BANDWIDTH,
                latency=latency,
                read_fraction=fraction,
                block_size=64 * 1024,
            )
            cells.append(policy.decide(est).mode)
        crossover = policy.crossover_fraction(
            AccessEstimate(
                file_size=FILE_SIZE, bandwidth=BANDWIDTH, latency=latency, block_size=64 * 1024
            )
        )
        rows.append((latency, cells, crossover))
    return rows


def test_ablation_remote_policy(once):
    rows = once(decision_matrix)
    table = TableBuilder(
        "Ablation A4 — copy vs proxy decision (64 MB file, 2 MB/s link)",
        ["latency s"] + [f"frac {f}" for f in FRACTIONS] + ["break-even frac"],
    )
    for latency, cells, crossover in rows:
        table.add_row(latency, *cells, f"{crossover:.3f}")
    by_latency = {latency: (cells, crossover) for latency, cells, crossover in rows}
    table.add_check(
        "tiny read fraction always proxies",
        all(cells[0] == "proxy" for cells, _ in by_latency.values()),
    )
    table.add_check(
        "full sequential read always copies",
        all(cells[-1] == "copy" for cells, _ in by_latency.values()),
    )
    crossovers = [crossover for _, crossover in by_latency.values()]
    table.add_check(
        "higher latency lowers the break-even fraction (copy sooner)",
        all(a >= b - 1e-9 for a, b in zip(crossovers, crossovers[1:])),
    )
    table.print()
    assert table.all_checks_pass
