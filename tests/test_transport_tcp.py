"""Unit + property tests for the framed TCP RPC layer."""

import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.tcp import (
    MAX_HEADER,
    FrameError,
    RpcClient,
    RpcError,
    RpcServer,
    recv_frame,
    send_frame,
)


@pytest.fixture()
def echo_server():
    server = RpcServer()
    server.register("echo", lambda header, payload: ({"echo": header.get("msg")}, payload))

    def boom(header, payload):
        raise ValueError("deliberate")

    server.register("boom", boom)

    def typed_error(header, payload):
        raise RpcError("custom-kind", "custom message")

    server.register("typed", typed_error)
    with server:
        yield server


class TestFraming:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "x", "n": 3}, b"payload")
            header, payload = recv_frame(b)
            assert header["op"] == "x"
            assert header["n"] == 3
            assert payload == b"payload"
        finally:
            a.close()
            b.close()

    def test_empty_payload(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "x"})
            header, payload = recv_frame(b)
            assert payload == b""
            assert header["payload_len"] == 0
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        a.sendall(b"\x00\x00\x00\x10partial")
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)
        b.close()

    def test_garbage_header_raises(self):
        a, b = socket.socketpair()
        bad = b"not json!!"
        a.sendall(len(bad).to_bytes(4, "big") + bad)
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)
        b.close()

    @given(
        msg=st.text(max_size=200),
        payload=st.binary(max_size=5000),
        extra=st.integers(min_value=-(2**31), max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_header_payload_roundtrips(self, msg, payload, extra):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "t", "msg": msg, "extra": extra}, payload)
            header, got = recv_frame(b)
            assert header["msg"] == msg
            assert header["extra"] == extra
            assert got == payload
        finally:
            a.close()
            b.close()


class TestRpc:
    def test_echo(self, echo_server):
        with RpcClient(*echo_server.address) as client:
            reply, payload = client.call("echo", {"msg": "hi"}, b"data")
            assert reply["echo"] == "hi"
            assert payload == b"data"

    def test_unknown_op_is_rpc_error(self, echo_server):
        with RpcClient(*echo_server.address) as client:
            with pytest.raises(RpcError, match="no handler"):
                client.call("nope")

    def test_handler_exception_becomes_error_reply(self, echo_server):
        with RpcClient(*echo_server.address) as client:
            with pytest.raises(RpcError, match="deliberate"):
                client.call("boom")
            # Connection survives the error.
            reply, _ = client.call("echo", {"msg": "still-alive"})
            assert reply["echo"] == "still-alive"

    def test_typed_rpc_error_kind_preserved(self, echo_server):
        with RpcClient(*echo_server.address) as client:
            with pytest.raises(RpcError) as exc_info:
                client.call("typed")
            assert exc_info.value.kind == "custom-kind"

    def test_concurrent_clients(self, echo_server):
        errors = []

        def worker(n):
            try:
                with RpcClient(*echo_server.address) as client:
                    for i in range(20):
                        reply, _ = client.call("echo", {"msg": f"{n}:{i}"})
                        assert reply["echo"] == f"{n}:{i}"
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_large_payload(self, echo_server):
        blob = bytes(range(256)) * 4096  # 1 MiB
        with RpcClient(*echo_server.address) as client:
            _, got = client.call("echo", {"msg": "big"}, blob)
            assert got == blob

    def test_client_is_thread_safe(self, echo_server):
        client = RpcClient(*echo_server.address)
        errors = []

        def worker(n):
            try:
                for i in range(10):
                    reply, _ = client.call("echo", {"msg": f"{n}.{i}"})
                    assert reply["echo"] == f"{n}.{i}"
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        client.close()
        assert errors == []


class TestFramingEdgeCases:
    def test_oversized_header_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall((MAX_HEADER + 1).to_bytes(4, "big"))
            with pytest.raises(FrameError, match="exceeds maximum"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_header_without_payload_len_raises(self):
        a, b = socket.socketpair()
        try:
            raw = b'{"op": "x"}'
            a.sendall(len(raw).to_bytes(4, "big") + raw)
            with pytest.raises(FrameError, match="payload_len"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_header_raises(self):
        a, b = socket.socketpair()
        try:
            raw = b"[1, 2, 3]"  # valid JSON, wrong shape
            a.sendall(len(raw).to_bytes(4, "big") + raw)
            with pytest.raises(FrameError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_payload_raises(self):
        a, b = socket.socketpair()
        raw = b'{"op": "x", "payload_len": 100}'
        a.sendall(len(raw).to_bytes(4, "big") + raw + b"only ten b")
        a.close()  # peer disconnects mid-payload
        with pytest.raises(FrameError, match="outstanding"):
            recv_frame(b)
        b.close()

    def test_bytes_like_payloads_accepted(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "x"}, memoryview(bytearray(b"view")))
            _, payload = recv_frame(b)
            assert payload == b"view"
        finally:
            a.close()
            b.close()


class TestPooledClient:
    @pytest.fixture()
    def slow_server(self):
        server = RpcServer()
        gate = threading.Event()

        def sleepy(header, payload):
            time.sleep(float(header.get("s", 0.1)))
            return {"done": True}, b""

        def blocked(header, payload):
            gate.wait(10.0)
            return {"done": True}, b""

        server.register("sleepy", sleepy)
        server.register("blocked", blocked)
        server.gate = gate
        with server:
            yield server

    def test_calls_overlap_across_pool(self, slow_server):
        """Four concurrent calls on one client take ~1 nap, not four."""
        client = RpcClient(*slow_server.address, max_connections=4)
        results = []

        def one():
            reply, _ = client.call("sleepy", {"s": 0.2})
            results.append(reply["done"])

        threads = [threading.Thread(target=one) for _ in range(4)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        client.close()
        assert results == [True] * 4
        assert elapsed < 0.6, f"calls serialised: {elapsed:.2f}s for 4x 0.2s naps"

    def test_pool_of_one_serialises(self, slow_server):
        """max_connections caps in-flight depth (strict request/reply)."""
        client = RpcClient(*slow_server.address, max_connections=1)
        threads = [
            threading.Thread(target=lambda: client.call("sleepy", {"s": 0.15}))
            for _ in range(2)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        client.close()
        assert elapsed >= 0.28, f"pool of 1 overlapped calls: {elapsed:.2f}s"

    def test_close_all_unblocks_inflight_call(self, slow_server):
        client = RpcClient(*slow_server.address, max_connections=2)
        failures = []

        def blocked_call():
            try:
                client.call("blocked")
            except (OSError, FrameError) as exc:
                failures.append(exc)

        t = threading.Thread(target=blocked_call)
        t.start()
        time.sleep(0.1)  # let the call get in flight
        t0 = time.perf_counter()
        client.close_all()
        t.join(timeout=5.0)
        assert not t.is_alive(), "in-flight call survived close_all()"
        assert time.perf_counter() - t0 < 2.0
        assert failures, "blocked call should fail fast, not return"
        slow_server.gate.set()

    def test_client_recovers_after_peer_disconnect_mid_frame(self):
        """A mid-reply disconnect poisons one socket, not the client."""
        ready = threading.Event()
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        addr = listener.getsockname()
        stop = False

        def serve():
            first = True
            ready.set()
            while not stop:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                try:
                    header, payload = recv_frame(conn)
                    if first:
                        first = False
                        # Half a frame, then hang up mid-payload.
                        raw = b'{"ok": true, "payload_len": 50}'
                        conn.sendall(len(raw).to_bytes(4, "big") + raw + b"short")
                        conn.close()
                        continue
                    send_frame(conn, {"ok": True, "echo": header.get("msg")}, b"")
                    conn.close()
                except (FrameError, OSError):
                    conn.close()

        t = threading.Thread(target=serve, daemon=True)
        t.start()
        ready.wait(5.0)
        client = RpcClient(*addr, max_connections=2)
        with pytest.raises((FrameError, OSError)):
            client.call("echo", {"msg": "doomed"})
        # The poisoned connection was discarded; a fresh one works.
        reply, _ = client.call("echo", {"msg": "recovered"})
        assert reply["echo"] == "recovered"
        client.close()
        stop = True
        listener.close()
