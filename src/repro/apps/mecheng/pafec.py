"""PAFEC: plane-stress finite-element solver.

"PAFEC is a finite element code that computes the stress tensors in the
meshed design."  We implement an honest small FEM: constant-strain
triangles on a structured ring mesh between the hole boundary (from
CHAMMY) and the outer square plate edge, plane-stress elasticity,
uniaxial tension applied to the top and bottom edges.  For a circular
hole this reproduces the Kirsch stress-concentration factor of ≈3 at
the hole sides, which the test suite asserts — and its von Mises field
is the reproduction of the paper's Figure 6 (stress distribution).

Outputs (workflow files):
* ``JOB.O04`` — node coordinates (text)
* ``JOB.O07`` — nodal displacements (text)
* ``JOB.O02`` — element stresses σxx σyy τxy + von Mises (text)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["Material", "RingMesh", "build_ring_mesh", "solve_plane_stress", "run_pafec", "FemResult"]


@dataclass(frozen=True)
class Material:
    """Linear-elastic plane-stress material (aluminium-ish defaults)."""

    youngs: float = 70e9
    poisson: float = 0.33
    thickness: float = 0.002

    def __post_init__(self) -> None:
        if self.youngs <= 0 or self.thickness <= 0:
            raise ValueError("youngs/thickness must be positive")
        if not 0 <= self.poisson < 0.5:
            raise ValueError("poisson must be in [0, 0.5)")

    def d_matrix(self) -> np.ndarray:
        e, nu = self.youngs, self.poisson
        factor = e / (1.0 - nu * nu)
        return factor * np.array(
            [[1.0, nu, 0.0], [nu, 1.0, 0.0], [0.0, 0.0, (1.0 - nu) / 2.0]]
        )


@dataclass
class RingMesh:
    """Structured mesh of rings from hole boundary to plate edge."""

    nodes: np.ndarray       # (n_nodes, 2)
    triangles: np.ndarray   # (n_tri, 3) int
    n_around: int
    n_rings: int
    half_width: float

    def ring_index(self, ring: int, j: int) -> int:
        return ring * self.n_around + j % self.n_around

    def hole_nodes(self) -> np.ndarray:
        return np.arange(self.n_around)

    def outer_nodes(self) -> np.ndarray:
        return np.arange((self.n_rings - 1) * self.n_around, self.n_rings * self.n_around)


def _square_boundary_point(theta: float, half_width: float) -> Tuple[float, float]:
    """Map an angle to the perimeter of the square |x|,|y| <= half_width."""
    c, s = np.cos(theta), np.sin(theta)
    scale = half_width / max(abs(c), abs(s))
    return c * scale, s * scale


def build_ring_mesh(
    boundary: np.ndarray, n_rings: int = 24, half_width: float = 5.0, grading: float = 1.25
) -> RingMesh:
    """Mesh the plate-with-hole between ``boundary`` and a square edge.

    Radial spacing grows geometrically by ``grading`` so elements stay
    small near the hole (where gradients are) and coarse at the edge.
    """
    m = len(boundary)
    if m < 8:
        raise ValueError("boundary needs at least 8 points")
    if n_rings < 3:
        raise ValueError("need at least 3 rings")
    theta = np.arctan2(boundary[:, 1], boundary[:, 0])
    # Geometric ring fractions in [0, 1].
    weights = grading ** np.arange(n_rings - 1)
    frac = np.concatenate([[0.0], np.cumsum(weights)])
    frac /= frac[-1]
    nodes = np.empty((n_rings * m, 2))
    for j in range(m):
        inner = boundary[j]
        outer = np.array(_square_boundary_point(theta[j], half_width))
        for i in range(n_rings):
            nodes[i * m + j] = inner + frac[i] * (outer - inner)
    triangles = []
    for i in range(n_rings - 1):
        for j in range(m):
            a = i * m + j
            b = i * m + (j + 1) % m
            c = (i + 1) * m + j
            d = (i + 1) * m + (j + 1) % m
            # Counter-clockwise node order (positive area) given the
            # CCW hole boundary and outward ring direction.
            triangles.append((a, d, b))
            triangles.append((a, c, d))
    return RingMesh(
        nodes=nodes,
        triangles=np.asarray(triangles, dtype=np.int64),
        n_around=m,
        n_rings=n_rings,
        half_width=half_width,
    )


@dataclass
class FemResult:
    """Solution of one plane-stress solve."""

    mesh: RingMesh
    displacements: np.ndarray   # (n_nodes, 2)
    element_stress: np.ndarray  # (n_tri, 3): sxx, syy, txy
    von_mises: np.ndarray       # (n_tri,)
    applied_stress: float


def _triangle_b_matrix(coords: np.ndarray) -> Tuple[np.ndarray, float]:
    """Strain-displacement matrix and area of one CST element."""
    (x1, y1), (x2, y2), (x3, y3) = coords
    det = (x2 - x1) * (y3 - y1) - (x3 - x1) * (y2 - y1)
    area = 0.5 * det
    if area <= 0:
        raise ValueError("degenerate or inverted triangle in mesh")
    b1, b2, b3 = y2 - y3, y3 - y1, y1 - y2
    c1, c2, c3 = x3 - x2, x1 - x3, x2 - x1
    b = np.array(
        [
            [b1, 0, b2, 0, b3, 0],
            [0, c1, 0, c2, 0, c3],
            [c1, b1, c2, b2, c3, b3],
        ]
    ) / det
    return b, area


def solve_plane_stress(
    mesh: RingMesh, material: Material = Material(), applied_stress: float = 100e6
) -> FemResult:
    """Uniaxial tension σ_yy = ``applied_stress`` on top/bottom edges."""
    n_nodes = len(mesh.nodes)
    ndof = 2 * n_nodes
    d_mat = material.d_matrix()
    t = material.thickness

    rows, cols, vals = [], [], []
    b_mats = []
    for tri in mesh.triangles:
        coords = mesh.nodes[tri]
        b, area = _triangle_b_matrix(coords)
        b_mats.append(b)
        ke = t * area * (b.T @ d_mat @ b)
        dofs = np.array([[2 * n, 2 * n + 1] for n in tri]).ravel()
        for a in range(6):
            for bb in range(6):
                rows.append(dofs[a])
                cols.append(dofs[bb])
                vals.append(ke[a, bb])
    k = sp.csr_matrix((vals, (rows, cols)), shape=(ndof, ndof))

    # Loads: traction (0, ±σ) on outer-edge segments lying on the top or
    # bottom sides of the square.
    f = np.zeros(ndof)
    outer = mesh.outer_nodes()
    hw = mesh.half_width
    tol = 1e-9 * hw
    m = mesh.n_around
    for idx in range(m):
        a = outer[idx]
        b_node = outer[(idx + 1) % m]
        ya, yb = mesh.nodes[a, 1], mesh.nodes[b_node, 1]
        on_top = abs(ya - hw) < 1e-6 * hw + tol and abs(yb - hw) < 1e-6 * hw + tol
        on_bot = abs(ya + hw) < 1e-6 * hw + tol and abs(yb + hw) < 1e-6 * hw + tol
        if not (on_top or on_bot):
            continue
        length = abs(mesh.nodes[a, 0] - mesh.nodes[b_node, 0])
        load = applied_stress * material.thickness * length / 2.0
        sign = 1.0 if on_top else -1.0
        f[2 * a + 1] += sign * load
        f[2 * b_node + 1] += sign * load

    # Symmetry-style constraints to remove rigid-body modes: pin u_x on
    # the outer nodes nearest the ±y axis (vertical symmetry line), and
    # u_y on the outer nodes nearest the ±x axis (horizontal line).
    fixed = set()
    xs, ys = mesh.nodes[outer, 0], mesh.nodes[outer, 1]
    top = outer[np.argmin(np.abs(xs) + np.where(ys > 0, 0.0, 1e12))]
    bottom = outer[np.argmin(np.abs(xs) + np.where(ys < 0, 0.0, 1e12))]
    right = outer[np.argmin(np.abs(ys) + np.where(xs > 0, 0.0, 1e12))]
    left = outer[np.argmin(np.abs(ys) + np.where(xs < 0, 0.0, 1e12))]
    fixed.add(2 * top)        # u_x = 0 on the y axis
    fixed.add(2 * bottom)
    fixed.add(2 * left + 1)   # u_y = 0 on the x axis
    fixed.add(2 * right + 1)

    free = np.array(sorted(set(range(ndof)) - fixed))
    k_ff = k[free][:, free]
    u = np.zeros(ndof)
    u[free] = spla.spsolve(k_ff.tocsc(), f[free])

    stresses = np.empty((len(mesh.triangles), 3))
    for e, tri in enumerate(mesh.triangles):
        dofs = np.array([[2 * n, 2 * n + 1] for n in tri]).ravel()
        stresses[e] = d_mat @ (b_mats[e] @ u[dofs])
    sxx, syy, txy = stresses.T
    vm = np.sqrt(sxx**2 - sxx * syy + syy**2 + 3 * txy**2)
    return FemResult(
        mesh=mesh,
        displacements=u.reshape(-1, 2),
        element_stress=stresses,
        von_mises=vm,
        applied_stress=applied_stress,
    )


def stress_concentration_factor(result: FemResult) -> float:
    """Peak boundary von Mises over applied stress (Kirsch ≈ 3 for a circle)."""
    mesh = result.mesh
    hole_elems = np.nonzero((mesh.triangles < mesh.n_around).any(axis=1))[0]
    return float(result.von_mises[hole_elems].max() / result.applied_stress)


# -- stage entry point ----------------------------------------------------------

def run_pafec(io) -> None:
    """Read PROFILE_COORD.DAT, solve, write JOB.O02/O04/O07."""
    with io.open("PROFILE_COORD.DAT", "r") as fh:
        n = int(fh.readline())
        boundary = np.array(
            [[float(v) for v in fh.readline().split()] for _ in range(n)]
        )
    mesh = build_ring_mesh(
        boundary,
        n_rings=int(io.param("n_rings", 16)),
        half_width=float(io.param("half_width", 5.0)),
    )
    result = solve_plane_stress(
        mesh, applied_stress=float(io.param("applied_stress", 100e6))
    )
    with io.open("JOB.O04", "w") as fh:
        fh.write(f"{len(mesh.nodes)} {mesh.n_around} {mesh.n_rings}\n")
        for x, y in mesh.nodes:
            fh.write(f"{x:.9e} {y:.9e}\n")
    with io.open("JOB.O07", "w") as fh:
        fh.write(f"{len(result.displacements)}\n")
        for ux, uy in result.displacements:
            fh.write(f"{ux:.9e} {uy:.9e}\n")
    with io.open("JOB.O02", "w") as fh:
        fh.write(f"{len(mesh.triangles)} {result.applied_stress:.9e}\n")
        for tri, (sxx, syy, txy), vm in zip(
            mesh.triangles, result.element_stress, result.von_mises
        ):
            fh.write(
                f"{tri[0]} {tri[1]} {tri[2]} {sxx:.9e} {syy:.9e} {txy:.9e} {vm:.9e}\n"
            )
