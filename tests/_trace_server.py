"""Subprocess helper for the distributed-tracing test.

Hosts ONE server — ``ftp ROOT`` or ``buffer CACHE_DIR`` — in its own
OS process with its own proc label (``REPRO_OBS_PROC``, set by the
parent before launch) and its own JSON-lines trace sink.  Prints
``PORT <n>`` once listening, then serves until stdin reaches EOF.
"""

import sys


def main() -> int:
    kind, data_dir, trace_path = sys.argv[1], sys.argv[2], sys.argv[3]
    from repro import obs

    sink = obs.JsonLinesSink(trace_path)
    obs.configure(sink)
    if kind == "ftp":
        from repro.transport.gridftp import GridFtpServer

        server = GridFtpServer(data_dir).start()
    elif kind == "buffer":
        from repro.gridbuffer.server import GridBufferServer

        server = GridBufferServer(cache_dir=data_dir).start()
    else:
        raise SystemExit(f"unknown server kind {kind!r}")
    print(f"PORT {server.address[1]}", flush=True)
    sys.stdin.read()  # parent closes our stdin to shut us down
    server.stop()
    obs.configure(None)
    sink.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
