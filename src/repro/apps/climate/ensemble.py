"""Multi-region nesting: one global model driving several DARLAMs.

Section 5.3 motivates "genuine multi-organizational models from
components owned by different partners"; the natural extension of the
paper's chain is one C-CAM driving *several* limited-area models (one
per partner region), which exercises the Grid Buffer's broadcast mode —
one writer, many readers, blocks retained until every reader has
consumed them.
"""

from __future__ import annotations

from typing import Dict, List

from ...workflow.scheduler import Coupling, ExecutionPlan, plan_workflow
from ...workflow.spec import FileUse, Stage, Workflow
from .cc2lam import run_cc2lam
from .ccam import run_ccam
from .darlam import run_darlam
from .pipeline import (
    CC2LAM_WORK,
    CCAM_WORK,
    DARLAM_TAIL,
    DARLAM_WORK,
    N_STEPS,
    STREAM_BYTES,
)

__all__ = ["ensemble_workflow", "ensemble_sim_workflow", "ensemble_plan"]


def _regional_stage_func(region: str):
    """A DARLAM variant writing region-tagged output."""

    def run(io):
        # Each region reads the same lam_input broadcast and writes its
        # own output file.  Reuse run_darlam by aliasing the output.
        class _RegionIO:
            def __init__(self, inner):
                self._inner = inner

            def open(self, name, mode="r"):
                if name == "darlam_out":
                    name = f"darlam_out_{region}"
                return self._inner.open(name, mode)

            def param(self, key, default=None):
                return self._inner.param(key, default)

        run_darlam(_RegionIO(io))

    return run


def ensemble_workflow(n_regions: int = 2) -> Workflow:
    """Real runnable ensemble: C-CAM → cc2lam → {DARLAM_r}."""
    if n_regions < 1:
        raise ValueError("need at least one region")
    stages = [
        Stage("ccam", writes=(FileUse("ccam_hist"),), func=run_ccam),
        Stage(
            "cc2lam",
            reads=(FileUse("ccam_hist"),),
            writes=(FileUse("lam_input"),),
            func=run_cc2lam,
        ),
    ]
    for i in range(n_regions):
        region = f"r{i}"
        stages.append(
            Stage(
                f"darlam_{region}",
                reads=(FileUse("lam_input"),),
                writes=(FileUse(f"darlam_out_{region}"),),
                func=_regional_stage_func(region),
            )
        )
    return Workflow("climate-ensemble", stages)


def ensemble_sim_workflow(n_regions: int = 2) -> Workflow:
    """Timing-annotated ensemble for broadcast-scaling experiments."""
    if n_regions < 1:
        raise ValueError("need at least one region")
    stages = [
        Stage(
            "ccam",
            writes=(FileUse("ccam_hist", STREAM_BYTES),),
            work=CCAM_WORK,
            chunks=N_STEPS,
        ),
        Stage(
            "cc2lam",
            reads=(FileUse("ccam_hist", STREAM_BYTES),),
            writes=(FileUse("lam_input", STREAM_BYTES),),
            work=CC2LAM_WORK,
            chunks=N_STEPS,
        ),
    ]
    for i in range(n_regions):
        stages.append(
            Stage(
                f"darlam_r{i}",
                reads=(FileUse("lam_input", STREAM_BYTES),),
                writes=(FileUse(f"darlam_out_r{i}", STREAM_BYTES // 2),),
                work=DARLAM_WORK,
                chunks=N_STEPS,
                tail_fraction=DARLAM_TAIL,
            )
        )
    return Workflow("climate-ensemble-sim", stages)


def ensemble_plan(
    driver_machine: str,
    region_machines: List[str],
    mechanism: Coupling = "buffer",
) -> ExecutionPlan:
    """Place the driver chain on one machine, one DARLAM per region."""
    wf = ensemble_sim_workflow(len(region_machines))
    placement: Dict[str, str] = {"ccam": driver_machine, "cc2lam": driver_machine}
    for i, machine in enumerate(region_machines):
        placement[f"darlam_r{i}"] = machine
    coupling: Dict[str, Coupling] = {"ccam_hist": "buffer", "lam_input": mechanism}
    return plan_workflow(wf, placement, coupling=coupling)
