"""Benchmark-suite configuration.

Every benchmark both *times* its experiment (pytest-benchmark) and
*prints* the regenerated table so the output can be compared with the
paper directly (run with ``-s`` to see the tables inline; they are also
asserted via the shape checks).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment through pytest-benchmark with minimal repeats.

    The simulations are deterministic, so one timed round is enough and
    keeps the whole suite fast.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
