"""Bench: regenerate Table 2 — the durability pipeline's three
experiments (files on jagan, buffers on jagan, distributed buffers).

Also prints the Figure 5 file graph when run with ``-s``.
"""

from repro.apps.mecheng.pipeline import FIG5_FILES
from repro.bench.experiments import run_table2


def test_table2_durability(once):
    table = once(run_table2)
    table.print()
    print("Figure 5 — durability pipeline file graph:")
    for fname, (producer, consumer) in FIG5_FILES.items():
        print(f"  {producer:15s} --{fname}--> {consumer}")
    assert table.all_checks_pass
