"""GridFTP-like file server and client.

Mirrors the two roles GridFTP plays in the paper:

* **bulk copy** — whole-file transfers with optional parallel streams;
  the latency-insensitive path used when the GNS says "copy the file
  between machines" (Table 5 "File Copy" rows).
* **block proxy** — ``GET_BLOCK(offset, length)`` partial reads, used
  by the FM's Remote File Client so an application can read a remote
  file in place without copying it.

Runs over the framed-TCP RPC layer; one server exports one directory
tree (a virtual host's root).
"""

from __future__ import annotations

import hashlib
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from .. import faults, obs
from .tcp import DEFAULT_POOL_CONNECTIONS, RpcClient, RpcError, RpcServer

__all__ = ["GridFtpServer", "GridFtpClient", "TransferError", "DEFAULT_BLOCK"]

DEFAULT_BLOCK = 256 * 1024


class TransferError(IOError):
    """A bulk copy died or came up short.

    ``copied`` is the byte offset up to which the *destination* is known
    good and contiguous — pass it back as ``fetch_file(resume_from=...)``
    to continue instead of re-copying.  Parallel transfers interleave
    ranges, so a mid-copy failure there reports ``copied=0`` (restart).
    """

    def __init__(self, message: str, copied: int = 0):
        super().__init__(message)
        self.copied = copied

_RPC_SECONDS = obs.histogram(
    "gridftp_rpc_seconds",
    "Round-trip duration of client RPCs by peer and operation",
    labelnames=("peer", "op"),
)
_RPC_BYTES = obs.counter(
    "gridftp_rpc_bytes_total",
    "Payload bytes moved by client RPCs by peer and operation",
    labelnames=("peer", "op"),
)


class GridFtpServer:
    """Exports one directory over the framed RPC protocol.

    Operations: ``size``, ``exists``, ``get_block``, ``put_block``,
    ``checksum``, ``mkdirs``, ``delete``.
    """

    def __init__(
        self,
        root: Path,
        host: str = "127.0.0.1",
        port: int = 0,
        simulated_latency: float = 0.0,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._rpc = RpcServer(host, port, simulated_latency=simulated_latency)
        self._lock = threading.Lock()
        self._rpc.register("size", self._op_size)
        self._rpc.register("exists", self._op_exists)
        self._rpc.register("get_block", self._op_get_block)
        self._rpc.register("put_block", self._op_put_block)
        self._rpc.register("checksum", self._op_checksum)
        self._rpc.register("mkdirs", self._op_mkdirs)
        self._rpc.register("delete", self._op_delete)
        self._rpc.register("pull_from", self._op_pull_from)

    # -- lifecycle -----------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return self._rpc.address

    def start(self) -> "GridFtpServer":
        self._rpc.start()
        return self

    def stop(self) -> None:
        self._rpc.stop()

    def disconnect_all(self) -> None:
        """Sever every live connection (chaos: model a host death).

        ``stop()`` alone only closes the listener; established
        connections keep being served until the client hangs up.
        """
        self._rpc.disconnect_all()

    def __enter__(self) -> "GridFtpServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- path safety -----------------------------------------------------------
    def _resolve(self, path: str) -> Path:
        rel = str(path).lstrip("/")
        candidate = (self.root / rel).resolve()
        root = self.root.resolve()
        if root != candidate and root not in candidate.parents:
            raise RpcError("forbidden", f"path escapes export root: {path!r}")
        return candidate

    # -- handlers -----------------------------------------------------------
    def _op_size(self, header: Dict[str, Any], _payload: bytes):
        p = self._resolve(header["path"])
        if not p.exists():
            raise RpcError("not-found", header["path"])
        return {"size": p.stat().st_size}, b""

    def _op_exists(self, header: Dict[str, Any], _payload: bytes):
        return {"exists": self._resolve(header["path"]).exists()}, b""

    def _op_get_block(self, header: Dict[str, Any], _payload: bytes):
        p = self._resolve(header["path"])
        if not p.exists():
            raise RpcError("not-found", header["path"])
        offset = int(header.get("offset", 0))
        length = int(header.get("length", DEFAULT_BLOCK))
        if offset < 0 or length < 0:
            raise RpcError("bad-request", "negative offset/length")
        with open(p, "rb") as fh:
            fh.seek(offset)
            data = fh.read(length)
        return {"offset": offset, "eof": offset + len(data) >= p.stat().st_size}, data

    def _op_put_block(self, header: Dict[str, Any], payload: bytes):
        p = self._resolve(header["path"])
        offset = int(header.get("offset", 0))
        truncate = bool(header.get("truncate", False))
        p.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            mode = "r+b" if p.exists() and not truncate else "wb"
            with open(p, mode) as fh:
                fh.seek(offset)
                fh.write(payload)
        return {"written": len(payload)}, b""

    def _op_checksum(self, header: Dict[str, Any], _payload: bytes):
        p = self._resolve(header["path"])
        if not p.exists():
            raise RpcError("not-found", header["path"])
        digest = hashlib.sha256()
        with open(p, "rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 20), b""):
                digest.update(chunk)
        return {"sha256": digest.hexdigest()}, b""

    def _op_mkdirs(self, header: Dict[str, Any], _payload: bytes):
        self._resolve(header["path"]).mkdir(parents=True, exist_ok=True)
        return {}, b""

    def _op_delete(self, header: Dict[str, Any], _payload: bytes):
        p = self._resolve(header["path"])
        existed = p.exists()
        if existed:
            p.unlink()
        return {"deleted": existed}, b""

    def _op_pull_from(self, header: Dict[str, Any], _payload: bytes):
        """Third-party transfer: this server fetches from another one.

        Mirrors GridFTP's server-to-server mode — the data never passes
        through the controlling client.
        """
        target = self._resolve(header["dst_path"])
        source = GridFtpClient(
            header["src_host"],
            int(header["src_port"]),
            block_size=int(header.get("block_size", DEFAULT_BLOCK)),
            parallel_streams=int(header.get("streams", 1)),
        )
        try:
            nbytes = source.fetch_file(header["src_path"], target)
        finally:
            source.close()
        return {"bytes": nbytes}, b""


class GridFtpClient:
    """Client-side API over one GridFTP server.

    ``parallel_streams`` splits bulk copies into interleaved ranges
    moved by concurrent connections (both directions: fetch and store),
    mirroring GridFTP's parallel TCP streams.

    ``monitor`` is any object with ``record(peer, op, nbytes, seconds)``
    (e.g. :class:`repro.core.trace.TransferMonitor`); every RPC is
    timed into it so policy decisions can use measured link numbers.
    """

    def __init__(
        self,
        host: str,
        port: int,
        parallel_streams: int = 1,
        block_size: int = DEFAULT_BLOCK,
        monitor=None,
        peer: Optional[str] = None,
    ):
        if parallel_streams < 1:
            raise ValueError("parallel_streams must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self._addr = (host, port)
        self.parallel_streams = parallel_streams
        self.block_size = block_size
        self.monitor = monitor
        self.peer = peer or f"{host}:{port}"
        # One pooled client carries both the demand path and the data
        # channels: the pool is sized so every parallel stream plus the
        # demand connection can be in flight at once, and every transfer
        # inherits the client's redial/retry/backoff recovery.
        self._rpc = RpcClient(
            host,
            port,
            max_connections=max(DEFAULT_POOL_CONNECTIONS, parallel_streams + 1),
        )

    # -- observability -------------------------------------------------------
    def _timed(self, op: str, rpc: RpcClient, header: Dict[str, Any], payload: bytes = b""):
        """One RPC round trip, always metered, monitor-recorded if present."""
        corrupter = None
        injector = faults.ACTIVE
        if injector is not None:
            verdict = injector.fire("gridftp", op, self.peer)
            if verdict == "corrupt":
                # Flip bits in the *received* block after the transfer:
                # corruption past the wire CRC (disk, memory), which only
                # the whole-file ``checksum`` re-verification can catch.
                corrupter = injector
            elif verdict is not None:
                # There is no single socket to act on at this layer, so
                # close/drop verdicts degrade to a connection error; the
                # bulk-copy resume path is what recovers from it.
                raise faults.InjectedFault(f"injected fault: gridftp {op} to {self.peer}")
        t0 = time.perf_counter()
        reply, data = rpc.call(op, header, payload=payload)
        elapsed = time.perf_counter() - t0
        if corrupter is not None and data:
            data = corrupter.corrupt_bytes(data)
        nbytes = max(len(payload), len(data))
        _RPC_SECONDS.labels(peer=self.peer, op=op).observe(elapsed)
        _RPC_BYTES.labels(peer=self.peer, op=op).inc(nbytes)
        if self.monitor is not None:
            self.monitor.record(self.peer, op, nbytes, elapsed)
        return reply, data

    def open_channel(self) -> RpcClient:
        """A dedicated connection for a background pipeline thread.

        Prefetchers and parallel streams must not share the demand
        connection: one blocking request would head-of-line block the
        application's reads.
        """
        return self._rpc.clone()

    # -- metadata -----------------------------------------------------------
    def size(self, path: str) -> int:
        reply, _ = self._timed("size", self._rpc, {"path": path})
        return int(reply["size"])

    def exists(self, path: str) -> bool:
        reply, _ = self._timed("exists", self._rpc, {"path": path})
        return bool(reply["exists"])

    def checksum(self, path: str) -> str:
        reply, _ = self._rpc.call("checksum", {"path": path})
        return str(reply["sha256"])

    def delete(self, path: str) -> bool:
        reply, _ = self._rpc.call("delete", {"path": path})
        return bool(reply["deleted"])

    def third_party_copy(
        self,
        src_host: str,
        src_port: int,
        src_path: str,
        dst_path: str,
        streams: int = 1,
    ) -> int:
        """Ask *this* server to pull a file directly from another server.

        Returns the byte count; the payload never transits the client.
        """
        reply, _ = self._rpc.call(
            "pull_from",
            {
                "src_host": src_host,
                "src_port": src_port,
                "src_path": src_path,
                "dst_path": dst_path,
                "streams": streams,
                "block_size": self.block_size,
            },
        )
        return int(reply["bytes"])

    # -- block proxy ----------------------------------------------------------
    def read_block(self, path: str, offset: int, length: int) -> bytes:
        _, data = self._timed(
            "get_block", self._rpc, {"path": path, "offset": offset, "length": length}
        )
        return data

    def read_block_via(self, rpc: RpcClient, path: str, offset: int, length: int) -> bytes:
        """``read_block`` over a caller-owned channel (prefetch/stream)."""
        _, data = self._timed(
            "get_block", rpc, {"path": path, "offset": offset, "length": length}
        )
        return data

    def write_block(self, path: str, offset: int, data: bytes, truncate: bool = False) -> int:
        reply, _ = self._timed(
            "put_block",
            self._rpc,
            {"path": path, "offset": offset, "truncate": truncate},
            payload=data,
        )
        return int(reply["written"])

    # -- bulk copy -----------------------------------------------------------
    def fetch_file(self, remote_path: str, local_path: Path, resume_from: int = 0) -> int:
        """Copy remote → local, using parallel streams for large files.

        ``resume_from`` continues an interrupted copy: the first
        ``resume_from`` bytes of ``local_path`` are assumed good (use
        :attr:`TransferError.copied` from the failed attempt) and the
        transfer restarts there, single-stream.  Returns the bytes moved
        *this call*.  Raises :class:`TransferError` on a mid-copy
        connection failure or a short copy (e.g. the file shrank) — a
        short copy must never pass silently.
        """
        total = self.size(remote_path)
        local_path = Path(local_path)
        local_path.parent.mkdir(parents=True, exist_ok=True)
        if resume_from < 0 or resume_from > total:
            raise ValueError(f"resume_from {resume_from} outside [0, {total}]")
        if total == 0:
            local_path.write_bytes(b"")
            return 0
        if resume_from == total:
            return 0
        t0 = time.perf_counter()
        single = bool(resume_from) or self.parallel_streams == 1 or total <= self.block_size
        if single:
            copied = 0
            mode = "r+b" if resume_from and local_path.exists() else "wb"
            with open(local_path, mode) as out:
                out.seek(resume_from)
                out.truncate()
                try:
                    while resume_from + copied < total:
                        data = self.read_block(
                            remote_path, resume_from + copied, self.block_size
                        )
                        if not data:
                            break
                        out.write(data)
                        copied += len(data)
                except (OSError, RpcError) as exc:
                    out.flush()
                    raise TransferError(
                        f"fetch of {remote_path!r} died at byte "
                        f"{resume_from + copied} of {total}: {exc}",
                        copied=resume_from + copied,
                    ) from exc
        else:
            copied = self._parallel_fetch(remote_path, local_path, total)
        if resume_from + copied != total:
            raise TransferError(
                f"short fetch of {remote_path!r}: have {resume_from + copied} "
                f"of {total} bytes",
                copied=resume_from + copied if single else 0,
            )
        if self.monitor is not None:
            self.monitor.record(self.peer, "fetch", copied, time.perf_counter() - t0)
        return copied

    def _parallel_fetch(self, remote_path: str, local_path: Path, total: int) -> int:
        with open(local_path, "wb") as out:
            out.truncate(total)
        errors: list[BaseException] = []
        copied = [0] * self.parallel_streams

        def worker(stream_idx: int) -> None:
            # All streams draw from the shared pool: the pool is sized
            # for them (see __init__), and a pooled socket that dies is
            # discarded and redialed by the RPC retry layer instead of
            # killing the whole transfer.
            try:
                with open(local_path, "r+b") as out:
                    offset = stream_idx * self.block_size
                    stride = self.parallel_streams * self.block_size
                    while offset < total:
                        data = self.read_block(remote_path, offset, self.block_size)
                        if not data:
                            break
                        out.seek(offset)
                        out.write(data)
                        copied[stream_idx] += len(data)
                        offset += stride
            except BaseException as exc:  # noqa: BLE001 - propagate to caller
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.parallel_streams)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            exc = errors[0]
            if isinstance(exc, (OSError, RpcError)):
                raise TransferError(
                    f"parallel fetch of {remote_path!r} failed: {exc}", copied=0
                ) from exc
            raise exc
        return sum(copied)

    def store_file(self, local_path: Path, remote_path: str) -> int:
        """Copy local → remote, using parallel streams for large files."""
        local_path = Path(local_path)
        total = local_path.stat().st_size
        t0 = time.perf_counter()
        if total == 0:
            self.write_block(remote_path, 0, b"", truncate=True)
            return 0
        if self.parallel_streams == 1 or total <= self.block_size:
            with open(local_path, "rb") as fh:
                offset = 0
                first = True
                while True:
                    chunk = fh.read(self.block_size)
                    if not chunk:
                        break
                    self.write_block(remote_path, offset, chunk, truncate=first)
                    offset += len(chunk)
                    first = False
            stored = offset
        else:
            stored = self._parallel_store(local_path, remote_path, total)
        if stored != total:
            raise TransferError(
                f"short store of {remote_path!r}: sent {stored} of {total} bytes",
                copied=0,
            )
        if self.monitor is not None:
            self.monitor.record(self.peer, "store", stored, time.perf_counter() - t0)
        return stored

    def _parallel_store(self, local_path: Path, remote_path: str, total: int) -> int:
        """Interleaved-range upload mirroring :meth:`_parallel_fetch`."""
        # Create/truncate the target first so every stream can open r+b.
        self.write_block(remote_path, 0, b"", truncate=True)
        errors: list[BaseException] = []
        sent = [0] * self.parallel_streams

        def worker(stream_idx: int) -> None:
            # Streams share the pooled client; see _parallel_fetch.
            try:
                with open(local_path, "rb") as src:
                    offset = stream_idx * self.block_size
                    stride = self.parallel_streams * self.block_size
                    while offset < total:
                        src.seek(offset)
                        chunk = src.read(self.block_size)
                        if not chunk:
                            break
                        self._timed(
                            "put_block",
                            self._rpc,
                            {"path": remote_path, "offset": offset, "truncate": False},
                            payload=chunk,
                        )
                        sent[stream_idx] += len(chunk)
                        offset += stride
            except BaseException as exc:  # noqa: BLE001 - propagate to caller
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.parallel_streams)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            exc = errors[0]
            if isinstance(exc, (OSError, RpcError)):
                raise TransferError(
                    f"parallel store of {remote_path!r} failed: {exc}", copied=0
                ) from exc
            raise exc
        return sum(sent)

    def close(self) -> None:
        # Hard close: also kills any data-channel socket still mid-RPC,
        # so teardown never leaks a parked worker.
        self._rpc.close_all()

    def __enter__(self) -> "GridFtpClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
