"""Grid Buffer service: the paper's direct writer→reader coupling.

Hash-table block store with blocking reads, delete-on-read, cache-file
re-reads/seeks, broadcast to multiple readers and bounded-capacity
backpressure — available in-process (:class:`GridBufferService`) and
over TCP (:class:`GridBufferServer` / :class:`GridBufferClient`).
"""

from .cache import BufferCache, IntervalSet
from .client import BufferReader, BufferWriter, GridBufferClient
from .protocol import DEFAULT_BLOCK_SIZE, DEFAULT_CAPACITY
from .server import GridBufferServer
from .service import (
    GridBufferError,
    GridBufferService,
    StreamClosed,
    StreamFailed,
    StreamStats,
)

__all__ = [
    "BufferCache",
    "IntervalSet",
    "BufferReader",
    "BufferWriter",
    "GridBufferClient",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CAPACITY",
    "GridBufferServer",
    "GridBufferError",
    "GridBufferService",
    "StreamClosed",
    "StreamFailed",
    "StreamStats",
]
