"""Tests for the automatic placement scheduler."""

import pytest

from repro.grid.testbed import TESTBED
from repro.grid.testbed import testbed_topology as _topology
from repro.workflow.autoplace import (
    exhaustive_placement,
    greedy_placement,
    links_from_network,
)
from repro.workflow.scheduler import estimate_makespan, plan_workflow
from repro.workflow.spec import FileUse, Stage, Workflow

MB = 1024 * 1024


def machines_subset(names):
    return {n: TESTBED[n] for n in names}


def links_for(names):
    return links_from_network(sorted(names), _topology())


def simple_chain():
    return Workflow(
        "chain",
        [
            Stage("a", writes=(FileUse("ab", 10 * MB),), work=100, chunks=20),
            Stage("b", reads=(FileUse("ab", 10 * MB),), writes=(FileUse("bc", 10 * MB),), work=300, chunks=20),
            Stage("c", reads=(FileUse("bc", 10 * MB),), work=50, chunks=20),
        ],
    )


class TestExhaustive:
    def test_all_on_fastest_machine_when_links_slow(self):
        """With only slow international links available, scattering
        stages cannot pay off: everything lands on brecca."""
        names = ["brecca", "bouscat"]
        result = exhaustive_placement(simple_chain(), machines_subset(names), links_for(names))
        assert set(result.placement.values()) == {"brecca"}

    def test_beats_naive_single_slow_machine(self):
        names = ["brecca", "vpac27", "dione"]
        result = exhaustive_placement(simple_chain(), machines_subset(names), links_for(names))
        naive = plan_workflow(simple_chain(), {s: "vpac27" for s in ("a", "b", "c")})
        naive_time = estimate_makespan(naive, machines_subset(names), links_for(names))
        assert result.estimated_makespan <= naive_time

    def test_search_space_guard(self):
        wf = Workflow("w", [Stage(f"s{i}", work=1) for i in range(12)])
        with pytest.raises(ValueError, match="max_candidates"):
            exhaustive_placement(wf, machines_subset(list(TESTBED)), links_for(list(TESTBED)))

    def test_plan_is_valid(self):
        names = ["brecca", "dione"]
        result = exhaustive_placement(simple_chain(), machines_subset(names), links_for(names))
        # ExecutionPlan construction validates coupling consistency.
        assert set(result.coupling) == {"ab", "bc"}


class TestGreedy:
    def test_close_to_exhaustive_on_small_problem(self):
        names = ["brecca", "vpac27", "dione"]
        machines, links = machines_subset(names), links_for(names)
        best = exhaustive_placement(simple_chain(), machines, links)
        greedy = greedy_placement(simple_chain(), machines, links)
        assert greedy.estimated_makespan <= best.estimated_makespan * 1.5

    def test_handles_larger_workflows(self):
        stages = [Stage("s0", writes=(FileUse("f0", MB),), work=50, chunks=10)]
        for i in range(1, 8):
            stages.append(
                Stage(
                    f"s{i}",
                    reads=(FileUse(f"f{i-1}", MB),),
                    writes=(FileUse(f"f{i}", MB),),
                    work=50,
                    chunks=10,
                )
            )
        wf = Workflow("long", stages)
        names = list(TESTBED)
        result = greedy_placement(wf, machines_subset(names), links_for(names))
        assert result.estimated_makespan > 0
        assert set(result.placement) == set(wf.stages)

    def test_greedy_avoids_slowest_machine_for_heavy_stage(self):
        names = ["brecca", "jagan"]
        result = greedy_placement(simple_chain(), machines_subset(names), links_for(names))
        assert result.placement["b"] == "brecca"  # the 300-unit stage


class TestLinksHelper:
    def test_links_cover_all_pairs(self):
        names = sorted(["brecca", "dione", "freak"])
        links = links_for(names)
        assert len(links) == 3
        assert all(spec.bandwidth > 0 for spec in links.values())
