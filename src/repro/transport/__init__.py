"""Data-movement substrate: framed TCP RPC, GridFTP-like transfers,
and the in-process virtual-host registry used by the real FM."""

from .aio import AsyncRpcClient, AsyncRpcServer
from .gridftp import DEFAULT_BLOCK, GridFtpClient, GridFtpServer
from .inmem import DelayModel, HostRegistry, VirtualHost
from .tcp import (
    FrameError,
    RpcClient,
    RpcError,
    RpcServer,
    ThreadedRpcServer,
    recv_frame,
    send_frame,
)

__all__ = [
    "DEFAULT_BLOCK",
    "GridFtpClient",
    "GridFtpServer",
    "DelayModel",
    "HostRegistry",
    "VirtualHost",
    "FrameError",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "ThreadedRpcServer",
    "AsyncRpcClient",
    "AsyncRpcServer",
    "recv_frame",
    "send_frame",
]
