"""Ablation A3: replica-selection heuristics.

Section 3.1: "a range of heuristics can be used" to pick a replica, and
read-only mappings can change dynamically.  This ablation compares
selection policies on a synthetic bandwidth trace where the initially
best source degrades mid-run:

* static      — pick once by first registration, never reconsider
* nws         — pick once by NWS forecast at open time
* nws+remap   — NWS choice plus mid-run re-mapping (the FM's behaviour)

The metric is total predicted transfer time over a sequence of reads.
"""

from repro.bench.tables import TableBuilder
from repro.core.replica import ReplicaSelector
from repro.grid.nws import Measurement, NetworkWeatherService
from repro.grid.replica_catalog import Replica, ReplicaCatalog

READS = 40
READ_BYTES = 8 * 1024 * 1024


def _true_bandwidth(host: str, step: int) -> float:
    """Synthetic trace: hostA starts fast then collapses at step 10."""
    if host == "hostA":
        return 10e6 if step < 10 else 0.4e6
    return 4e6


def run_policies():
    results = {}
    for policy in ("static", "nws", "nws+remap"):
        catalog = ReplicaCatalog()
        catalog.register("lfn://d", Replica("hostA", "/d", size=READ_BYTES))
        catalog.register("lfn://d", Replica("hostB", "/d", size=READ_BYTES))
        nws = NetworkWeatherService(window=8)
        # Warm-up measurements reflecting the initial state.
        for i in range(4):
            for host in ("hostA", "hostB"):
                nws.record(
                    host, "client",
                    Measurement(time=i, bandwidth=_true_bandwidth(host, 0), latency=0.01),
                )
        selector = ReplicaSelector(catalog, nws, hysteresis=1.3)
        current = (
            catalog.lookup("lfn://d")[0]
            if policy == "static"
            else selector.best("lfn://d", "client", READ_BYTES).replica
        )
        total = 0.0
        remaps = 0
        for step in range(READS):
            # The environment evolves; NWS keeps measuring both paths.
            for host in ("hostA", "hostB"):
                nws.record(
                    host, "client",
                    Measurement(
                        time=10 + step, bandwidth=_true_bandwidth(host, step), latency=0.01
                    ),
                )
            if policy == "nws+remap":
                choice = selector.maybe_remap("lfn://d", "client", current, READ_BYTES)
                if choice is not None:
                    current = choice.replica
                    remaps += 1
            total += READ_BYTES / _true_bandwidth(current.host, step)
        results[policy] = (total, remaps, current.host)
    return results


def test_ablation_replica_selection(once):
    results = once(run_policies)
    table = TableBuilder(
        "Ablation A3 — replica selection on a degrading source",
        ["policy", "total transfer s", "re-maps", "final source"],
    )
    for policy, (total, remaps, final) in results.items():
        table.add_row(policy, f"{total:.1f}", remaps, final)
    table.add_check(
        "dynamic re-mapping beats static selection",
        results["nws+remap"][0] < results["static"][0],
    )
    table.add_check(
        "dynamic re-mapping beats open-time-only NWS choice",
        results["nws+remap"][0] < results["nws"][0],
    )
    table.add_check("the re-mapper switched away from the degraded source",
                    results["nws+remap"][2] == "hostB")
    table.print()
    assert table.all_checks_pass
