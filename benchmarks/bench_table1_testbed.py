"""Bench: regenerate Table 1 (the modelled testbed)."""

from repro.bench.experiments import run_table1


def test_table1_testbed(once):
    table = once(run_table1)
    table.print()
    assert table.all_checks_pass
