"""Tests for the library's logging integration."""

import logging


from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.gns.client import LocalGnsClient
from repro.gns.server import NameService
from repro.gridbuffer.service import GridBufferService


class TestFmLogging:
    def test_open_logged_with_mode(self, hosts, caplog):
        fm = FileMultiplexer(
            GridContext(machine="alpha", gns=LocalGnsClient(NameService()), hosts=hosts)
        )
        with caplog.at_level(logging.DEBUG, logger="repro.core.fm"):
            fm.open("/logged.bin", "w").close()
        fm.close()
        messages = [r.message for r in caplog.records]
        assert any("/logged.bin" in m and "local" in m for m in messages)


class TestGridBufferLogging:
    def test_stream_creation_logged(self, caplog):
        svc = GridBufferService()
        with caplog.at_level(logging.DEBUG, logger="repro.gridbuffer"):
            svc.create_stream("noisy", n_readers=2)
        assert any("noisy" in r.message for r in caplog.records)

    def test_abort_logged_as_warning(self, caplog):
        svc = GridBufferService()
        svc.create_stream("bad")
        with caplog.at_level(logging.WARNING, logger="repro.gridbuffer"):
            svc.abort_writer("bad", "test reason")
        warnings = [r for r in caplog.records if r.levelno == logging.WARNING]
        assert any("test reason" in r.message for r in warnings)


class TestRunnerLogging:
    def test_stage_lifecycle_logged(self, caplog):
        from repro.workflow.runner import RealRunner
        from repro.workflow.scheduler import plan_workflow
        from repro.workflow.spec import FileUse, Stage, Workflow

        def produce(io):
            with io.open("out", "w") as fh:
                fh.write("x")

        wf = Workflow("logged", [Stage("p", writes=(FileUse("out"),), func=produce)])
        plan = plan_workflow(wf, {"p": "m1"})
        runner = RealRunner(plan)
        with caplog.at_level(logging.INFO, logger="repro.workflow.runner"):
            result = runner.run()
        runner.deployment.stop()
        assert result.ok
        messages = [r.message for r in caplog.records]
        assert any("starting" in m for m in messages)
        assert any("finished" in m for m in messages)

    def test_failure_logged_as_warning(self, caplog):
        from repro.workflow.runner import RealRunner
        from repro.workflow.scheduler import plan_workflow
        from repro.workflow.spec import Stage, Workflow

        def bad(io):
            raise RuntimeError("kaput")

        wf = Workflow("failing", [Stage("p", func=bad)])
        plan = plan_workflow(wf, {"p": "m1"})
        runner = RealRunner(plan)
        with caplog.at_level(logging.WARNING, logger="repro.workflow.runner"):
            result = runner.run()
        runner.deployment.stop()
        assert not result.ok
        assert any("kaput" in r.message for r in caplog.records)
