"""Whole-stack randomized equivalence testing.

Property: for ANY workflow DAG, ANY placement and ANY (valid) coupling
choice, executing through the full GriddLeS stack (virtual hosts, TCP
Grid Buffers, GridFTP copies) produces byte-identical outputs to a
plain in-memory sequential execution.  This is the paper's correctness
claim ("the changes in configuration required no modification of the
software") tested at scale.

The stage functions are deterministic data transformers: each reads all
inputs, mixes them with a seeded BLAKE2 keystream, and writes outputs
whose bytes depend on every input byte — so any lost, duplicated,
reordered or corrupted byte anywhere in the stack changes the final
outputs.
"""

import hashlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.workflow.localio import run_workflow_in_memory
from repro.workflow.runner import RealRunner
from repro.workflow.scheduler import plan_workflow
from repro.workflow.spec import FileUse, Stage, Workflow


def _keystream(tag: str, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.blake2b(f"{tag}:{counter}".encode(), digest_size=64).digest()
        counter += 1
    return bytes(out[:length])


def make_stage_func(name: str, reads, writes, out_size: int):
    def func(io):
        acc = hashlib.blake2b(name.encode(), digest_size=32)
        for r in reads:
            with io.open(r, "rb") as fh:
                acc.update(fh.read())
        seed = acc.hexdigest()
        for w in writes:
            payload = _keystream(f"{seed}:{w}", out_size)
            with io.open(w, "wb") as fh:
                fh.write(payload)

    return func


# A compact DAG description strategy: layered graphs, 2-4 layers, each
# stage reads a subset of the previous layer's files.
@st.composite
def workflow_strategy(draw):
    n_layers = draw(st.integers(min_value=2, max_value=3))
    width = draw(st.integers(min_value=1, max_value=2))
    out_size = draw(st.sampled_from([128, 4096, 70_000]))
    stages = []
    prev_files: list[str] = []
    file_counter = 0
    for layer in range(n_layers):
        layer_files = []
        for w in range(width if layer < n_layers - 1 else 1):
            name = f"s{layer}_{w}"
            if prev_files:
                n_reads = draw(st.integers(min_value=1, max_value=len(prev_files)))
                reads = tuple(prev_files[:n_reads])
            else:
                reads = ()
            writes = (f"f{file_counter}",)
            file_counter += 1
            layer_files.extend(writes)
            stages.append(
                Stage(
                    name,
                    reads=tuple(FileUse(r) for r in reads),
                    writes=tuple(FileUse(x) for x in writes),
                    func=make_stage_func(name, reads, writes, out_size),
                )
            )
        prev_files = layer_files
    machine_count = draw(st.integers(min_value=1, max_value=3))
    placement_seed = draw(st.integers(min_value=0, max_value=10**6))
    use_buffers = draw(st.booleans())
    return Workflow("fuzz", stages), machine_count, placement_seed, use_buffers, out_size


@pytest.mark.slow
class TestRandomWorkflows:
    @given(spec=workflow_strategy())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_real_stack_matches_in_memory(self, spec):
        workflow, machine_count, placement_seed, use_buffers, out_size = spec
        # Reference execution (pure functions, no grid).
        expected = run_workflow_in_memory(workflow)

        machines = [f"m{i}" for i in range(machine_count)]
        placement = {}
        for i, stage in enumerate(workflow.stages):
            placement[stage] = machines[(placement_seed + i * 7919) % machine_count]
        coupling = {}
        for fname in workflow.pipeline_files():
            producer_m = placement[workflow.producer_of(fname)]
            cross = any(
                placement[c] != producer_m for c in workflow.consumers_of(fname)
            )
            if use_buffers:
                coupling[fname] = "buffer"
            else:
                coupling[fname] = "copy" if cross else "local"
        plan = plan_workflow(workflow, placement, coupling=coupling)
        runner = RealRunner(plan, stage_timeout=60)
        try:
            result = runner.run()
            assert result.ok, result.errors
            for fname in workflow.final_outputs():
                consumers_done = False
                # The final file lives on its producer's machine (local
                # write) — read it back from that sandbox.
                producer = workflow.producer_of(fname)
                host = runner.deployment.hosts.host(placement[producer])
                got = host.resolve(f"/wf/{workflow.name}/{fname}").read_bytes()
                assert got == expected[fname], (
                    f"output {fname!r} differs under coupling={coupling}"
                )
                consumers_done = True
            assert consumers_done
        finally:
            runner.deployment.stop()
