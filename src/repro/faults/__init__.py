"""repro.faults — deterministic, seedable failure injection.

The transport, Grid Buffer, and GridFTP layers carry *hook points*: one
attribute load plus a ``None`` check on the hot path, so an unarmed
process pays nothing.  Arming installs a :class:`FaultInjector` whose
rules fire on the Nth call matching a ``(layer, op, peer)`` key and
perform one of five actions:

``error``
    raise :class:`InjectedFault` (a ``ConnectionError``) at the hook;
``close``
    the hook site tears its connection down so the *real* IO path fails
    organically (send/recv raises ``OSError``);
``drop``
    the hook site discards the unit of work without replying (server
    side: read the request, never answer);
``delay``
    sleep ``delay`` seconds at the hook, then continue normally;
``corrupt``
    the hook site flips seeded bits in the payload it was about to
    send/store (:meth:`FaultInjector.corrupt_bytes`), exercising the
    end-to-end integrity machinery: wire-CRC verification, poisoned
    shared-cache blocks, and whole-file checksum re-verification.

Rules are configured through the API (:func:`arm`, :class:`FaultRule`)
or the ``REPRO_FAULTS`` environment variable, which holds
semicolon-separated rules of comma-separated ``key=value`` pairs::

    REPRO_FAULTS='layer=rpc.client,op=gb.read*,action=close,nth=3;
                  layer=gridftp,peer=store2,action=error,nth=1,times=0'

``layer``/``op``/``peer`` are shell-style globs (default ``*``); ``nth``
is the 1-based index of the first matching call that fires (counted per
concrete ``(rule, layer, op, peer)`` key, so "the 3rd gb.read to
store1" means exactly that); ``times`` is how many consecutive matches
fire from there (``0`` = forever).  ``probability`` makes a rule fire
randomly instead — draws come from a ``random.Random`` seeded via
:func:`arm` or ``REPRO_FAULTS_SEED``, so a seeded chaos run is
reproducible.  Malformed specs raise :class:`ValueError` naming the
offending rule text at arm time — a chaos run with a typo'd rule must
not silently run fault-free.

Every fired rule increments the ``fault_injected_total`` counter
(labels: layer, action) and emits a span event, so a chaos run's
recovery cost is visible in ``repro.obs`` snapshots.

Async hook sites (inline handlers on the shared event loop) must call
:meth:`FaultInjector.fire_async`, which awaits ``delay`` rules instead
of sleeping — a blocking ``time.sleep`` there stalls every connection
on the loop (the PR 7 stall watchdog flags exactly this).
"""

from __future__ import annotations

import asyncio
import fnmatch
import logging
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs

__all__ = [
    "ACTIVE",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "arm",
    "disarm",
    "injected",
    "parse_rules",
]

logger = logging.getLogger(__name__)

_FAULTS_INJECTED = obs.counter(
    "fault_injected_total",
    "Faults fired by the repro.faults injector",
    labelnames=("layer", "action"),
)

_ACTIONS = ("error", "close", "drop", "delay", "corrupt")


class InjectedFault(ConnectionError):
    """Raised at a hook point by an ``action=error`` rule.

    Subclasses ``ConnectionError`` so it flows through the same
    discard/retry paths as a genuine connection failure.
    """


@dataclass(frozen=True)
class FaultRule:
    """One injection rule; see the module docstring for semantics."""

    layer: str = "*"
    op: str = "*"
    peer: str = "*"
    action: str = "error"
    nth: int = 1
    times: int = 1
    delay: float = 0.0
    probability: Optional[float] = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r} (want one of {_ACTIONS})")
        if self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.times < 0:
            raise ValueError("times must be >= 0 (0 = fire forever)")

    def matches(self, layer: str, op: str, peer: str) -> bool:
        return (
            fnmatch.fnmatchcase(layer, self.layer)
            and fnmatch.fnmatchcase(op, self.op)
            and fnmatch.fnmatchcase(peer, self.peer)
        )


def parse_rules(spec: str) -> List[FaultRule]:
    """Parse the ``REPRO_FAULTS`` rule syntax into :class:`FaultRule`.

    A blank/whitespace spec yields no rules (unset env var), but within
    a non-empty spec every chunk must parse: empty rules, unknown keys
    or actions, and non-numeric ``nth``/``times``/``delay``/
    ``probability`` values raise :class:`ValueError` carrying the
    offending rule text, so a typo fails the run at arm time instead of
    silently disabling the fault.
    """
    chunks = [c.strip() for c in spec.split(";")]
    if not any(chunks):
        return []
    rules: List[FaultRule] = []
    for chunk in chunks:
        if not chunk:
            raise ValueError(f"empty fault rule in spec {spec!r}")
        kwargs: Dict[str, object] = {}
        for pair in chunk.split(","):
            pair = pair.strip()
            if not pair:
                raise ValueError(f"empty field in fault rule {chunk!r}")
            if "=" not in pair:
                raise ValueError(f"bad fault rule field {pair!r} (want key=value) in rule {chunk!r}")
            key, value = pair.split("=", 1)
            key = key.strip()
            value = value.strip()
            if key in ("nth", "times"):
                try:
                    kwargs[key] = int(value)
                except ValueError:
                    raise ValueError(
                        f"non-integer {key}={value!r} in fault rule {chunk!r}"
                    ) from None
            elif key in ("delay", "probability"):
                try:
                    kwargs[key] = float(value)
                except ValueError:
                    raise ValueError(
                        f"non-numeric {key}={value!r} in fault rule {chunk!r}"
                    ) from None
            elif key in ("layer", "op", "peer", "action", "message"):
                kwargs[key] = value
            else:
                raise ValueError(f"unknown fault rule key {key!r} in rule {chunk!r}")
        if not kwargs:
            raise ValueError(f"empty fault rule in spec {spec!r}")
        try:
            rules.append(FaultRule(**kwargs))  # type: ignore[arg-type]
        except ValueError as exc:
            raise ValueError(f"{exc} (rule: {chunk!r})") from None
    return rules


class FaultInjector:
    """Matches hook calls against rules and fires actions deterministically."""

    def __init__(self, rules: Sequence[FaultRule] = (), seed: Optional[int] = None):
        self._rules: List[FaultRule] = list(rules)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        # per (rule index, layer, op, peer) match counts — "Nth matching op"
        self._counts: Dict[Tuple[int, str, str, str], int] = {}
        self._fired: List[Tuple[str, str, str, str]] = []

    def add(self, rule: FaultRule) -> None:
        with self._lock:
            self._rules.append(rule)

    @property
    def fired(self) -> List[Tuple[str, str, str, str]]:
        """(layer, op, peer, action) tuples for every fault fired so far."""
        with self._lock:
            return list(self._fired)

    def _evaluate(
        self, layer: str, op: str, peer: str
    ) -> Tuple[float, Optional[FaultRule], Optional[str]]:
        """Match rules under the lock; the caller performs the actions.

        Returns ``(delay_seconds, error_rule, verdict)`` so the sync
        and async hook fronts (:meth:`fire` / :meth:`fire_async`) share
        one matching/counting implementation and differ only in how
        they wait out a ``delay``.
        """
        verdict: Optional[str] = None
        delay = 0.0
        error: Optional[FaultRule] = None
        with self._lock:
            for idx, rule in enumerate(self._rules):
                if not rule.matches(layer, op, peer):
                    continue
                if rule.probability is not None:
                    if self._rng.random() >= rule.probability:
                        continue
                else:
                    key = (idx, layer, op, peer)
                    count = self._counts.get(key, 0) + 1
                    self._counts[key] = count
                    if count < rule.nth:
                        continue
                    if rule.times and count >= rule.nth + rule.times:
                        continue
                self._fired.append((layer, op, peer, rule.action))
                _FAULTS_INJECTED.labels(layer=layer, action=rule.action).inc()
                if rule.action == "delay":
                    delay = max(delay, rule.delay)
                elif rule.action == "error":
                    error = rule
                elif verdict is None:
                    verdict = rule.action
        return delay, error, verdict

    def _finish(
        self, layer: str, op: str, peer: str, error: Optional[FaultRule], verdict: Optional[str]
    ) -> Optional[str]:
        if error is not None:
            obs.event("fault.error", layer=layer, op=op, peer=peer)
            raise InjectedFault(
                error.message or f"injected fault: layer={layer} op={op} peer={peer}"
            )
        if verdict is not None:
            obs.event(f"fault.{verdict}", layer=layer, op=op, peer=peer)
        return verdict

    def fire(self, layer: str, op: str, peer: str) -> Optional[str]:
        """Evaluate rules for one hook call (sync hook sites).

        Raises :class:`InjectedFault` for ``error`` rules, sleeps for
        ``delay`` rules, and returns ``"close"``/``"drop"``/
        ``"corrupt"`` for the hook site to act on (``None`` when
        nothing fires).
        """
        delay, error, verdict = self._evaluate(layer, op, peer)
        if delay:
            obs.event("fault.delay", layer=layer, op=op, peer=peer, seconds=delay)
            time.sleep(delay)
        return self._finish(layer, op, peer, error, verdict)

    async def fire_async(self, layer: str, op: str, peer: str) -> Optional[str]:
        """:meth:`fire` for hook sites running on the event loop.

        ``delay`` rules are awaited (``asyncio.sleep``) so an injected
        slowdown delays *this* handler, not every connection sharing
        the loop.
        """
        delay, error, verdict = self._evaluate(layer, op, peer)
        if delay:
            obs.event("fault.delay", layer=layer, op=op, peer=peer, seconds=delay)
            await asyncio.sleep(delay)
        return self._finish(layer, op, peer, error, verdict)

    def corrupt_bytes(self, data: bytes, flips: int = 1) -> bytes:
        """Return ``data`` with ``flips`` seeded single-bit flips.

        Draws positions from the injector's RNG, so a seeded chaos run
        corrupts the same bits every time.  Empty payloads are returned
        unchanged (there is nothing to flip — and nothing a checksum
        over zero bytes would miss).
        """
        if not data:
            return data
        out = bytearray(data)
        with self._lock:
            for _ in range(flips):
                pos = self._rng.randrange(len(out))
                bit = self._rng.randrange(8)
                out[pos] ^= 1 << bit
        return bytes(out)


#: The armed injector, or None.  Hook sites read this attribute directly —
#: the disarmed cost is one module-attribute load and a None check.
ACTIVE: Optional[FaultInjector] = None


def arm(
    rules: Sequence[FaultRule] | FaultInjector = (),
    seed: Optional[int] = None,
) -> FaultInjector:
    """Install an injector process-wide and return it."""
    global ACTIVE
    injector = rules if isinstance(rules, FaultInjector) else FaultInjector(rules, seed=seed)
    ACTIVE = injector
    logger.info("fault injector armed (%d rules)", len(injector._rules))
    return injector


def disarm() -> None:
    global ACTIVE
    ACTIVE = None


class injected:
    """Context manager: arm rules for a ``with`` block, then disarm.

    >>> with faults.injected(FaultRule(layer="rpc.client", action="close")):
    ...     client.call("gb.read", ...)
    """

    def __init__(self, *rules: FaultRule, seed: Optional[int] = None):
        self._injector = FaultInjector(rules, seed=seed)

    def __enter__(self) -> FaultInjector:
        arm(self._injector)
        return self._injector

    def __exit__(self, *exc: object) -> None:
        disarm()


def _arm_from_env() -> None:
    spec = os.environ.get("REPRO_FAULTS", "")
    if not spec.strip():
        return
    seed_raw = os.environ.get("REPRO_FAULTS_SEED")
    seed = int(seed_raw) if seed_raw else None
    arm(parse_rules(spec), seed=seed)


_arm_from_env()
