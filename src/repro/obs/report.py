"""Render JSON-lines traces into human-readable timelines and tables.

``python -m repro.obs.report TRACE.jsonl [TRACE2.jsonl ...]`` prints:

* a **per-task timeline** — one ASCII bar per ``task`` span, scaled to
  the workflow's wall-clock, so pipelined (overlapping) stages are
  visually distinct from sequential ones;
* a **per-peer link table** — built from the latest embedded metrics
  snapshot (``gridftp_rpc_seconds`` / ``gridftp_rpc_bytes_total``),
  the measured equivalents of the paper's Table 1 link numbers;
* a **metrics summary** — the non-zero counter series, so a run's IO
  behaviour (modes chosen, cache hits, bytes moved) reads at a glance;
* with ``--critical-path``, a **makespan breakdown** — what fraction
  of the workflow's wall-clock went to buffer-wait vs transport vs
  queue-wait vs compute.

Given several trace files (one per process), the report **merges**
them into a single workflow-wide trace first.  Every process stamps
its records with its own monotonic clock, so merging requires clock
alignment: each remote RPC appears as a span on *both* sides of the
wire (``rpc.client`` in the caller, ``rpc.server`` in the callee,
linked by the propagated ``_trace`` parent id), and assuming the two
network legs are symmetric, the difference of the two spans' midpoints
is the clock offset between the processes — NTP's estimator applied to
our own traffic.  Offsets compose along the RPC graph (BFS from the
process owning the workflow root), so a process only ever called
through an intermediary still lands in the common timebase.

The module doubles as a library: :func:`load_trace`,
:func:`merge_traces`, :func:`clock_offsets`, :func:`critical_path` and
the ``render_*`` helpers each return plain values.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "load_trace",
    "merge_traces",
    "clock_offsets",
    "critical_path",
    "render_timeline",
    "render_link_table",
    "render_counters",
    "render_critical_path",
    "render_clock_offsets",
    "render_report",
    "main",
]


def load_trace(path: Path) -> List[Dict[str, Any]]:
    """Parse a JSON-lines trace file, skipping malformed lines."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


# -- multi-process merge ------------------------------------------------------

def clock_offsets(records: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    """Per-process clock offsets into a common (reference) timebase.

    Every remote RPC yields one offset sample: the ``rpc.server`` span
    parented under an ``rpc.client`` span from another process covers
    the same real-time interval minus two (assumed symmetric) network
    legs, so ``client_midpoint - server_midpoint`` estimates the clock
    difference.  The median over all samples per process pair rejects
    outliers (retries, scheduling noise); offsets then compose by BFS
    over the process graph from the reference process — the one owning
    the workflow root span.  Processes with no RPC link to the
    reference keep offset 0.0 (their records merge unaligned).
    """
    spans = [
        r for r in records
        if r.get("type") == "span" and r.get("end") is not None and r.get("proc")
    ]
    by_id = {s["span"]: s for s in spans if s.get("span")}
    samples: Dict[Tuple[str, str], List[float]] = {}
    for s in spans:
        if s.get("name") != "rpc.server":
            continue
        caller = by_id.get(s.get("parent"))
        if caller is None or caller.get("name") != "rpc.client":
            continue
        pa, pb = caller["proc"], s["proc"]
        if pa == pb:
            continue
        offset = (caller["start"] + caller["end"]) / 2 - (s["start"] + s["end"]) / 2
        samples.setdefault((pa, pb), []).append(offset)

    def _median(values: List[float]) -> float:
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    edges: Dict[Tuple[str, str], float] = {
        pair: _median(vals) for pair, vals in samples.items()
    }
    procs = {s["proc"] for s in spans}
    reference = None
    for s in spans:
        if s.get("name") == "workflow":
            reference = s["proc"]
            break
    if reference is None:
        roots = [s for s in spans if s.get("parent") is None]
        anchor = min(roots or spans, key=lambda s: s["start"], default=None)
        reference = anchor["proc"] if anchor else None
    if reference is None:
        return {}

    # offsets[p] rebased so adding it to p's timestamps lands them in
    # the reference clock domain.
    offsets: Dict[str, float] = {reference: 0.0}
    frontier = [reference]
    while frontier:
        here = frontier.pop()
        for (pa, pb), off in edges.items():
            # t_in_pa = t_in_pb + off  (off = client_mid - server_mid)
            if pa == here and pb not in offsets:
                offsets[pb] = offsets[pa] + off
                frontier.append(pb)
            elif pb == here and pa not in offsets:
                offsets[pa] = offsets[pb] - off
                frontier.append(pa)
    for proc in procs:
        offsets.setdefault(proc, 0.0)
    return offsets


def merge_traces(
    traces: Sequence[Sequence[Dict[str, Any]]],
) -> Tuple[List[Dict[str, Any]], Dict[str, float]]:
    """Merge per-process traces into one clock-aligned record list.

    Records missing a ``proc`` stamp (pre-distributed-tracing files)
    are grouped per input file so they at least share a clock domain.
    Returns ``(records, offsets)`` with every ``start``/``end``/
    ``time`` rebased into the reference process's clock.
    """
    records: List[Dict[str, Any]] = []
    for index, trace in enumerate(traces):
        for record in trace:
            if not record.get("proc"):
                record = dict(record)
                record["proc"] = f"file:{index}"
            records.append(record)
    offsets = clock_offsets(records)
    merged: List[Dict[str, Any]] = []
    for record in records:
        offset = offsets.get(record.get("proc", ""), 0.0)
        if offset:
            record = dict(record)
            for key in ("start", "end", "time"):
                if isinstance(record.get(key), (int, float)):
                    record[key] = record[key] + offset
        merged.append(record)
    merged.sort(key=lambda r: r.get("start", r.get("time", 0.0)) or 0.0)
    return merged, offsets


def _task_label(span: Dict[str, Any]) -> str:
    attrs = span.get("attrs") or {}
    return str(attrs.get("task") or attrs.get("stage") or span.get("name", "?"))


def render_timeline(records: Sequence[Dict[str, Any]], width: int = 60) -> str:
    """ASCII Gantt of the trace's ``task`` spans (fallback: all spans)."""
    spans = [
        r for r in records
        if r.get("type") == "span" and r.get("end") is not None
    ]
    tasks = [s for s in spans if s.get("name") == "task"] or spans
    if not tasks:
        return "(no finished spans in trace)\n"
    t0 = min(s["start"] for s in tasks)
    t1 = max(s["end"] for s in tasks)
    total = max(t1 - t0, 1e-9)
    label_w = max(len(_task_label(s)) for s in tasks)
    workflows = {
        str((r.get("attrs") or {}).get("workflow"))
        for r in records
        if r.get("type") == "span" and r.get("name") == "workflow"
    } - {"None"}
    title = "Per-task timeline"
    if workflows:
        title += f" (workflow {', '.join(sorted(workflows))})"
    lines = [f"{title} — {total:.3f}s total"]
    for span in sorted(tasks, key=lambda s: (s["start"], _task_label(s))):
        begin = int(round((span["start"] - t0) / total * width))
        length = max(1, int(round((span["end"] - span["start"]) / total * width)))
        begin = min(begin, width - 1)
        length = min(length, width - begin)
        bar = " " * begin + "#" * length + " " * (width - begin - length)
        lines.append(
            f"{_task_label(span):<{label_w}} |{bar}| "
            f"{span['start'] - t0:8.3f}s → {span['end'] - t0:8.3f}s"
        )
    return "\n".join(lines) + "\n"


def _latest_snapshot(records: Sequence[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    snap = None
    for record in records:
        if record.get("type") == "metrics" and isinstance(record.get("snapshot"), dict):
            snap = record["snapshot"]
    return snap


def render_link_table(snapshot: Optional[Dict[str, Any]]) -> str:
    """Per-peer RPC table from ``gridftp_rpc_*`` series in a snapshot."""
    if not snapshot:
        return "(no metrics snapshot embedded in trace)\n"
    seconds = snapshot.get("gridftp_rpc_seconds", {}).get("series", [])
    nbytes = snapshot.get("gridftp_rpc_bytes_total", {}).get("series", [])
    peers: Dict[str, Dict[str, float]] = {}
    for series in seconds:
        peer = series["labels"].get("peer", "?")
        entry = peers.setdefault(peer, {"ops": 0.0, "seconds": 0.0, "bytes": 0.0})
        entry["ops"] += series["value"]["count"]
        entry["seconds"] += series["value"]["sum"]
    for series in nbytes:
        peer = series["labels"].get("peer", "?")
        entry = peers.setdefault(peer, {"ops": 0.0, "seconds": 0.0, "bytes": 0.0})
        entry["bytes"] += series["value"]
    if not peers:
        return "(no gridftp_rpc_* series in snapshot)\n"
    lines = [
        "Per-peer link table (measured)",
        f"{'peer':<16} {'rpcs':>8} {'bytes':>12} {'avg ms':>8} {'MiB/s':>8}",
    ]
    for peer in sorted(peers):
        entry = peers[peer]
        avg_ms = entry["seconds"] / entry["ops"] * 1e3 if entry["ops"] else 0.0
        mibps = entry["bytes"] / entry["seconds"] / (1 << 20) if entry["seconds"] > 0 else 0.0
        lines.append(
            f"{peer:<16} {int(entry['ops']):>8} {int(entry['bytes']):>12} "
            f"{avg_ms:>8.2f} {mibps:>8.2f}"
        )
    return "\n".join(lines) + "\n"


def render_counters(snapshot: Optional[Dict[str, Any]], limit: int = 40) -> str:
    """Non-zero counter series from a snapshot, one per line."""
    if not snapshot:
        return ""
    rows: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        if family.get("type") != "counter":
            continue
        for series in family.get("series", []):
            if not series["value"]:
                continue
            labels = series["labels"]
            label_txt = (
                "{" + ",".join(f"{k}={v}" for k, v in labels.items()) + "}" if labels else ""
            )
            rows.append(f"{name}{label_txt} = {series['value']:g}")
    if not rows:
        return ""
    shown = rows[:limit]
    out = ["Counters (non-zero)"] + shown
    if len(rows) > limit:
        out.append(f"... and {len(rows) - limit} more")
    return "\n".join(out) + "\n"


# -- critical path ------------------------------------------------------------

#: Category priority for the makespan sweep: when intervals overlap,
#: the most specific explanation wins — time a gb op spent inside the
#: buffer service is buffer-wait even though an rpc.client span (and a
#: task span) covers the same instant.  ``peer`` (cooperative-cache
#: peer fetches, op gb.peer_read on either side of the wire) outranks
#: buffer-wait: those bytes came from a peer's RAM, not the origin.
#: ``remap`` (a live GNS-driven stream migration pausing a reader
#: while it reopens on a new binding) outranks everything: the RPCs it
#: issues are the migration's cost, not ordinary transport.
_CATEGORY_PRIORITY = ("remap", "peer", "buffer-wait", "transport", "queue-wait", "compute")


def _categorise(span: Dict[str, Any]) -> Optional[str]:
    name = span.get("name")
    if name == "remap":
        return "remap"
    if name in ("rpc.server", "rpc.client"):
        op = str((span.get("attrs") or {}).get("op", ""))
        if op == "gb.peer_read":
            return "peer"
    if name == "rpc.server":
        op = str((span.get("attrs") or {}).get("op", ""))
        return "buffer-wait" if op.startswith("gb.") else "transport"
    if name == "rpc.client":
        return "transport"
    if name == "task.wait":
        return "queue-wait"
    if name == "task":
        return "compute"
    return None


def critical_path(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Attribute the workflow's makespan to activity categories.

    A priority interval sweep over the (clock-aligned) spans: at every
    instant inside the root span's window the highest-priority active
    category claims the time, so overlapping evidence (a task span
    containing an rpc.client span containing the matching rpc.server
    span) is counted once, as its most specific cause.  Returns the
    per-category seconds, the makespan, and the attributed fraction.
    """
    spans = [
        r for r in records if r.get("type") == "span" and r.get("end") is not None
    ]
    root = next((s for s in spans if s.get("name") == "workflow"), None)
    if root is None:
        roots = [s for s in spans if s.get("parent") is None]
        root = max(roots or spans, key=lambda s: s["end"] - s["start"], default=None)
    if root is None:
        return {"makespan": 0.0, "categories": {}, "attributed": 0.0, "coverage": 0.0}
    t0, t1 = root["start"], root["end"]
    makespan = max(t1 - t0, 0.0)
    rank = {c: i for i, c in enumerate(_CATEGORY_PRIORITY)}
    events: List[Tuple[float, int, int]] = []  # (time, +1/-1, category rank)
    for span in spans:
        category = _categorise(span)
        if category is None:
            continue
        begin, end = max(span["start"], t0), min(span["end"], t1)
        if end <= begin:
            continue
        events.append((begin, 1, rank[category]))
        events.append((end, -1, rank[category]))
    events.sort(key=lambda e: (e[0], -e[1]))
    totals = {c: 0.0 for c in _CATEGORY_PRIORITY}
    active = [0] * len(_CATEGORY_PRIORITY)
    last = t0
    for when, delta, r in events:
        if when > last:
            for i, n in enumerate(active):
                if n > 0:
                    totals[_CATEGORY_PRIORITY[i]] += when - last
                    break
            last = when
        active[r] += delta
    attributed = sum(totals.values())
    return {
        "makespan": makespan,
        "categories": totals,
        "attributed": attributed,
        "coverage": (attributed / makespan) if makespan > 0 else 0.0,
    }


def render_critical_path(records: Sequence[Dict[str, Any]]) -> str:
    """Human-readable makespan breakdown table."""
    result = critical_path(records)
    makespan = result["makespan"]
    if makespan <= 0:
        return "(no workflow root span; cannot attribute makespan)\n"
    lines = [f"Critical-path breakdown — {makespan:.3f}s makespan"]
    for category in _CATEGORY_PRIORITY:
        seconds = result["categories"][category]
        lines.append(
            f"{category:<12} {seconds:>9.3f}s  {seconds / makespan * 100:5.1f}%"
        )
    other = makespan - result["attributed"]
    lines.append(f"{'other':<12} {other:>9.3f}s  {other / makespan * 100:5.1f}%")
    lines.append(f"attributed: {result['coverage'] * 100:.1f}% of makespan")
    return "\n".join(lines) + "\n"


def render_clock_offsets(offsets: Dict[str, float]) -> str:
    """Per-process clock offsets used by a merged report."""
    if len(offsets) <= 1:
        return ""
    lines = ["Clock alignment (offset into reference timebase)"]
    for proc in sorted(offsets):
        lines.append(f"{proc:<24} {offsets[proc]:+12.6f}s")
    return "\n".join(lines) + "\n"


def render_report(
    records: Sequence[Dict[str, Any]],
    width: int = 60,
    with_critical_path: bool = False,
) -> str:
    """The full report: timeline + link table + counter summary."""
    snapshot = _latest_snapshot(records)
    parts = [render_timeline(records, width=width), render_link_table(snapshot)]
    if with_critical_path:
        parts.append(render_critical_path(records))
    counters = render_counters(snapshot)
    if counters:
        parts.append(counters)
    return "\n".join(parts)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.obs.report TRACE.jsonl``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a repro.obs JSON-lines trace into timelines and link tables.",
    )
    parser.add_argument(
        "trace", type=Path, nargs="+",
        help="JSON-lines trace file(s); several are clock-aligned and merged",
    )
    parser.add_argument("--width", type=int, default=60, help="timeline bar width")
    parser.add_argument(
        "--critical-path", action="store_true",
        help="attribute the makespan to peer/buffer-wait/transport/queue-wait/compute",
    )
    args = parser.parse_args(argv)
    for path in args.trace:
        if not path.exists():
            print(f"trace file not found: {path}", file=sys.stderr)
            return 2
    records, offsets = merge_traces([load_trace(path) for path in args.trace])
    if len(args.trace) > 1:
        sys.stdout.write(render_clock_offsets(offsets) + "\n")
    sys.stdout.write(
        render_report(records, width=args.width, with_critical_path=args.critical_path)
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
