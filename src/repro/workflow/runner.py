"""Real (byte-moving) workflow execution.

Deploys the full GriddLeS stack in one process — virtual hosts, a
GridFTP server per host, a Grid Buffer server, one GNS — then runs
every stage function in its own thread behind its own File Multiplexer.
The stage functions are "legacy programs": they only ever call
``io.open(name, mode)`` (or plain ``open`` under interposition) and
never know whether a name is a local file, a remote copy, or a live
stream.

Re-wiring a workflow from files to buffers is, as in the paper, done
*only* by changing the GNS records the runner derives from the plan's
coupling map — stage code is untouched.

``file-stream`` coupling (concurrent same-machine files) exists only in
the simulator; real runs support ``local``, ``copy`` and ``buffer``.
"""

from __future__ import annotations

import logging
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..core.multiplexer import FileMultiplexer, GridContext
from ..gns.client import LocalGnsClient
from ..gns.records import BufferEndpoint, GnsRecord, IOMode
from ..gns.server import NameService
from ..gridbuffer.server import GridBufferServer
from ..transport.gridftp import GridFtpServer
from ..transport.inmem import HostRegistry
from .scheduler import ExecutionPlan
from .spec import Stage, WorkflowError

__all__ = ["StageIO", "RunResult", "GridDeployment", "RealRunner", "records_for_plan"]

logger = logging.getLogger("repro.workflow.runner")

_TASKS = obs.counter(
    "workflow_tasks_total", "Stage state transitions", labelnames=("state",)
)
_QUEUE_WAIT = obs.histogram(
    "workflow_task_queue_wait_seconds",
    "Seconds a stage spent waiting for its upstream producers",
)
_TASK_SECONDS = obs.histogram(
    "workflow_task_seconds", "Stage body execution time (after upstreams released it)"
)
_EDGE_BYTES = obs.counter(
    "workflow_edge_bytes_total",
    "Bytes a stage moved through its FM, by direction",
    labelnames=("task", "direction"),
)


def records_for_plan(plan: ExecutionPlan, prefix: Optional[str] = None) -> List[GnsRecord]:
    """Translate a plan's coupling map into the GNS records that wire it.

    This is the paper's whole configuration story in one function: the
    returned records (also serialisable via
    :mod:`repro.gns.persistence`) are the ONLY thing that changes when
    a workflow is re-wired between files, copies and streams.
    """
    wf = plan.workflow
    prefix = prefix if prefix is not None else f"/wf/{wf.name}"
    records: List[GnsRecord] = []
    for fname in wf.pipeline_files():
        mech = plan.coupling[fname]
        path = f"{prefix}/{fname}"
        producer = wf.producer_of(fname)
        src = plan.machine_of(producer)
        if mech == "local":
            continue  # the FM's default behaviour is already local
        if mech == "copy":
            for consumer in wf.consumers_of(fname):
                dst = plan.machine_of(consumer)
                if dst != src:
                    records.append(
                        GnsRecord(
                            machine=dst,
                            path=path,
                            mode=IOMode.COPY,
                            remote_host=src,
                            remote_path=path,
                        )
                    )
        elif mech == "buffer":
            records.append(
                GnsRecord(
                    machine="*",
                    path=path,
                    mode=IOMode.BUFFER,
                    buffer=BufferEndpoint(
                        stream=f"{wf.name}:{fname}",
                        n_readers=len(wf.consumers_of(fname)),
                        cache=True,
                    ),
                )
            )
    return records


class StageIO:
    """The file API handed to a stage function.

    ``open(name, mode)`` resolves the workflow-relative name through the
    stage's File Multiplexer.  ``param(key)`` exposes per-run knobs
    (problem sizes etc.) without the stage touching the runner.
    """

    def __init__(self, fm: FileMultiplexer, prefix: str, params: Dict[str, object]):
        self._fm = fm
        self._prefix = prefix
        self._params = params
        self._opened: List = []  # raw FMFile handles, for crash cleanup

    def path_of(self, name: str) -> str:
        return f"{self._prefix}/{name}"

    def abort(self) -> None:
        """Abandon every handle the stage left open after a crash.

        Buffered writers are aborted (not closed): the abort marks the
        stream failed server-side, so downstream readers fail fast
        instead of blocking until their timeout.
        """
        for raw in self._opened:
            if raw.closed:
                continue
            try:
                raw.abort()
            except Exception:  # noqa: BLE001 - cleanup must visit every handle
                logger.debug("abort of a stage handle failed", exc_info=True)

    def open(self, name: str, mode: str = "r"):
        """Open a workflow file; text modes wrap in a TextIOWrapper."""
        import io as _io

        raw = self._fm.open(self.path_of(name), mode)
        self._opened.append(raw)
        if "b" in mode:
            if raw.readable() and not raw.writable():
                return _io.BufferedReader(raw)
            if raw.writable() and not raw.readable():
                return _io.BufferedWriter(raw)
            return raw
        buffered = (
            _io.BufferedReader(raw)
            if raw.readable() and not raw.writable()
            else _io.BufferedWriter(raw)
        )
        return _io.TextIOWrapper(buffered, encoding="utf-8")

    def param(self, key: str, default=None):
        return self._params.get(key, default)


@dataclass
class RunResult:
    """Wall-clock outcome of a real workflow run."""

    finish_times: Dict[str, float] = field(default_factory=dict)  # stage -> seconds since start
    errors: Dict[str, BaseException] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.errors


class GridDeployment:
    """Virtual hosts + servers + GNS for one in-process grid."""

    def __init__(
        self,
        machines: List[str],
        base_dir: Optional[Path] = None,
        live_remap: bool = False,
    ):
        if not machines:
            raise WorkflowError("deployment needs at least one machine")
        #: When set, every FM context watches the GNS and live-migrates
        #: open read streams whose records are edited mid-run.
        self.live_remap = live_remap
        self._own_dir = base_dir is None
        self.base_dir = Path(base_dir) if base_dir else Path(tempfile.mkdtemp(prefix="griddles-"))
        self.hosts = HostRegistry(self.base_dir / "hosts")
        self.ftp_servers: Dict[str, GridFtpServer] = {}
        self.buffer_server = GridBufferServer(cache_dir=self.base_dir / "buffer-cache")
        self.machines = list(machines)
        for name in machines:
            host = self.hosts.add_host(name)
            self.ftp_servers[name] = GridFtpServer(host.root)
        self.name_service = NameService(
            locate_buffer_server=lambda machine: self.buffer_server.address
        )
        self._started = False

    def start(self) -> "GridDeployment":
        if not self._started:
            self.buffer_server.start()
            for server in self.ftp_servers.values():
                server.start()
            self._started = True
        return self

    def stop(self) -> None:
        if self._started:
            for server in self.ftp_servers.values():
                server.stop()
            self.buffer_server.stop()
            self._started = False

    def __enter__(self) -> "GridDeployment":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def gridftp_locator(self) -> Dict[str, Tuple[str, int]]:
        return {name: server.address for name, server in self.ftp_servers.items()}

    def context_for(self, machine: str) -> GridContext:
        return GridContext(
            machine=machine,
            gns=LocalGnsClient(self.name_service),
            hosts=self.hosts,
            gridftp=self.gridftp_locator(),
            buffer_locator=lambda m: self.buffer_server.address,
            scratch_dir=self.base_dir / "scratch",
            live_remap=self.live_remap,
        )

    def rewire(self, add: List[GnsRecord] = (), remove: List[Tuple[str, str]] = ()) -> int:
        """Edit the live wiring in one atomic transaction.

        ``remove`` takes ``(machine, path)`` pattern pairs.  Open
        streams whose records change migrate at their next read
        boundary when the deployment runs with ``live_remap=True`` —
        the paper's "re-wire by editing GNS entries" claim, applied to
        a workflow that is already running.  Returns the new revision.
        """
        ops = [("remove", m, p) for m, p in remove] + [("add", r) for r in add]
        return self.name_service.txn(ops)


class RealRunner:
    """Executes an ExecutionPlan with real bytes and real threads."""

    def __init__(
        self,
        plan: ExecutionPlan,
        deployment: Optional[GridDeployment] = None,
        params: Optional[Dict[str, object]] = None,
        stage_timeout: float = 300.0,
    ):
        self.plan = plan
        self.params = dict(params or {})
        self.stage_timeout = stage_timeout
        machines = sorted(set(plan.placement.values()))
        self.deployment = deployment if deployment is not None else GridDeployment(machines)
        self._prefix = f"/wf/{plan.workflow.name}"
        for mech in plan.coupling.values():
            if mech == "file-stream":
                raise WorkflowError(
                    "file-stream coupling is simulator-only; use 'buffer' for real runs"
                )

    # -- GNS wiring ----------------------------------------------------------
    def _wire_gns(self) -> None:
        """Install the plan's GNS records into the deployment's GNS."""
        scratch = self.deployment.base_dir / "scratch"
        scratch.mkdir(parents=True, exist_ok=True)
        # One atomic txn: a watcher (or a concurrently starting stage)
        # sees the whole wiring appear at a single revision, never a
        # half-installed plan.
        self.deployment.name_service.txn(
            [("add", r) for r in records_for_plan(self.plan, prefix=self._prefix)]
        )

    # -- execution ----------------------------------------------------------
    def run(self) -> RunResult:
        wf = self.plan.workflow
        for stage in wf.stages.values():
            if stage.func is None:
                raise WorkflowError(f"stage {stage.name!r} has no func; cannot run for real")
        self.deployment.start()
        self._wire_gns()
        result = RunResult()
        waits = self.plan.start_constraints()
        done: Dict[str, threading.Event] = {s: threading.Event() for s in wf.stages}
        start_time = time.monotonic()
        tracer = obs.get_tracer()

        def run_stage(stage: Stage, wf_ctx) -> None:
            # Stage threads inherit the workflow span explicitly: span
            # stacks are thread-local, so the context must be attached.
            with obs.attach(wf_ctx):
                _TASKS.labels(state="started").inc()
                wait_t0 = time.monotonic()
                try:
                    # The producer wait gets its own span so the report's
                    # critical-path sweep can attribute it as queue-wait
                    # rather than leaving a makespan hole before the task.
                    with obs.span("task.wait", task=stage.name):
                        for producer in waits[stage.name]:
                            if not done[producer].wait(timeout=self.stage_timeout):
                                raise TimeoutError(f"timed out waiting for {producer!r}")
                            if producer in result.errors:
                                raise RuntimeError(f"upstream stage {producer!r} failed")
                    _QUEUE_WAIT.observe(time.monotonic() - wait_t0)
                    machine = self.plan.machine_of(stage.name)
                    logger.info("stage %s starting on %s", stage.name, machine)
                    ctx = self.deployment.context_for(machine)
                    body_t0 = time.monotonic()
                    with obs.span("task", task=stage.name, machine=machine):
                        with FileMultiplexer(ctx) as fm:
                            io_adapter = StageIO(fm, self._prefix, self.params)
                            try:
                                stage.func(io_adapter)
                            except BaseException:
                                # Kill half-written streams so blocked
                                # readers see StreamFailed, not a hang.
                                io_adapter.abort()
                                raise
                            finally:
                                self._account_stage_io(stage.name, fm)
                    _TASK_SECONDS.observe(time.monotonic() - body_t0)
                    result.finish_times[stage.name] = time.monotonic() - start_time
                    _TASKS.labels(state="finished").inc()
                    logger.info(
                        "stage %s finished in %.3fs", stage.name, result.finish_times[stage.name]
                    )
                except BaseException as exc:  # noqa: BLE001 - reported to caller
                    logger.warning("stage %s failed: %s", stage.name, exc)
                    result.errors[stage.name] = exc
                    _TASKS.labels(state="failed").inc()
                finally:
                    done[stage.name].set()

        with tracer.span("workflow", workflow=wf.name, stages=len(wf.stages)):
            wf_ctx = tracer.current_context()
            threads = [
                threading.Thread(
                    target=run_stage, args=(stage, wf_ctx),
                    name=f"stage-{stage.name}", daemon=True,
                )
                for stage in wf.stages.values()
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=self.stage_timeout)
            result.elapsed = time.monotonic() - start_time
        if tracer.sink is not None:
            # Embed the final registry snapshot so a single trace file
            # carries both the timeline and the run's metrics.
            tracer.write_metrics(obs.get_registry())
        return result

    @staticmethod
    def _account_stage_io(task: str, fm: FileMultiplexer) -> None:
        """Roll the stage's per-open FM stats into per-edge byte counters."""
        bytes_in = sum(s.bytes_read for s in fm.open_history)
        bytes_out = sum(s.bytes_written for s in fm.open_history)
        if bytes_in:
            _EDGE_BYTES.labels(task=task, direction="read").inc(bytes_in)
        if bytes_out:
            _EDGE_BYTES.labels(task=task, direction="written").inc(bytes_out)
