"""Render a JSON-lines trace into human-readable timelines and tables.

``python -m repro.obs.report TRACE.jsonl`` prints:

* a **per-task timeline** — one ASCII bar per ``task`` span, scaled to
  the workflow's wall-clock, so pipelined (overlapping) stages are
  visually distinct from sequential ones;
* a **per-peer link table** — built from the latest embedded metrics
  snapshot (``gridftp_rpc_seconds`` / ``gridftp_rpc_bytes_total``),
  the measured equivalents of the paper's Table 1 link numbers;
* a **metrics summary** — the non-zero counter series, so a run's IO
  behaviour (modes chosen, cache hits, bytes moved) reads at a glance.

The module doubles as a library: :func:`load_trace`,
:func:`render_timeline`, :func:`render_link_table` and
:func:`render_counters` each return plain strings.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "load_trace",
    "render_timeline",
    "render_link_table",
    "render_counters",
    "render_report",
    "main",
]


def load_trace(path: Path) -> List[Dict[str, Any]]:
    """Parse a JSON-lines trace file, skipping malformed lines."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def _task_label(span: Dict[str, Any]) -> str:
    attrs = span.get("attrs") or {}
    return str(attrs.get("task") or attrs.get("stage") or span.get("name", "?"))


def render_timeline(records: Sequence[Dict[str, Any]], width: int = 60) -> str:
    """ASCII Gantt of the trace's ``task`` spans (fallback: all spans)."""
    spans = [
        r for r in records
        if r.get("type") == "span" and r.get("end") is not None
    ]
    tasks = [s for s in spans if s.get("name") == "task"] or spans
    if not tasks:
        return "(no finished spans in trace)\n"
    t0 = min(s["start"] for s in tasks)
    t1 = max(s["end"] for s in tasks)
    total = max(t1 - t0, 1e-9)
    label_w = max(len(_task_label(s)) for s in tasks)
    workflows = {
        str((r.get("attrs") or {}).get("workflow"))
        for r in records
        if r.get("type") == "span" and r.get("name") == "workflow"
    } - {"None"}
    title = "Per-task timeline"
    if workflows:
        title += f" (workflow {', '.join(sorted(workflows))})"
    lines = [f"{title} — {total:.3f}s total"]
    for span in sorted(tasks, key=lambda s: (s["start"], _task_label(s))):
        begin = int(round((span["start"] - t0) / total * width))
        length = max(1, int(round((span["end"] - span["start"]) / total * width)))
        begin = min(begin, width - 1)
        length = min(length, width - begin)
        bar = " " * begin + "#" * length + " " * (width - begin - length)
        lines.append(
            f"{_task_label(span):<{label_w}} |{bar}| "
            f"{span['start'] - t0:8.3f}s → {span['end'] - t0:8.3f}s"
        )
    return "\n".join(lines) + "\n"


def _latest_snapshot(records: Sequence[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    snap = None
    for record in records:
        if record.get("type") == "metrics" and isinstance(record.get("snapshot"), dict):
            snap = record["snapshot"]
    return snap


def render_link_table(snapshot: Optional[Dict[str, Any]]) -> str:
    """Per-peer RPC table from ``gridftp_rpc_*`` series in a snapshot."""
    if not snapshot:
        return "(no metrics snapshot embedded in trace)\n"
    seconds = snapshot.get("gridftp_rpc_seconds", {}).get("series", [])
    nbytes = snapshot.get("gridftp_rpc_bytes_total", {}).get("series", [])
    peers: Dict[str, Dict[str, float]] = {}
    for series in seconds:
        peer = series["labels"].get("peer", "?")
        entry = peers.setdefault(peer, {"ops": 0.0, "seconds": 0.0, "bytes": 0.0})
        entry["ops"] += series["value"]["count"]
        entry["seconds"] += series["value"]["sum"]
    for series in nbytes:
        peer = series["labels"].get("peer", "?")
        entry = peers.setdefault(peer, {"ops": 0.0, "seconds": 0.0, "bytes": 0.0})
        entry["bytes"] += series["value"]
    if not peers:
        return "(no gridftp_rpc_* series in snapshot)\n"
    lines = [
        "Per-peer link table (measured)",
        f"{'peer':<16} {'rpcs':>8} {'bytes':>12} {'avg ms':>8} {'MiB/s':>8}",
    ]
    for peer in sorted(peers):
        entry = peers[peer]
        avg_ms = entry["seconds"] / entry["ops"] * 1e3 if entry["ops"] else 0.0
        mibps = entry["bytes"] / entry["seconds"] / (1 << 20) if entry["seconds"] > 0 else 0.0
        lines.append(
            f"{peer:<16} {int(entry['ops']):>8} {int(entry['bytes']):>12} "
            f"{avg_ms:>8.2f} {mibps:>8.2f}"
        )
    return "\n".join(lines) + "\n"


def render_counters(snapshot: Optional[Dict[str, Any]], limit: int = 40) -> str:
    """Non-zero counter series from a snapshot, one per line."""
    if not snapshot:
        return ""
    rows: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        if family.get("type") != "counter":
            continue
        for series in family.get("series", []):
            if not series["value"]:
                continue
            labels = series["labels"]
            label_txt = (
                "{" + ",".join(f"{k}={v}" for k, v in labels.items()) + "}" if labels else ""
            )
            rows.append(f"{name}{label_txt} = {series['value']:g}")
    if not rows:
        return ""
    shown = rows[:limit]
    out = ["Counters (non-zero)"] + shown
    if len(rows) > limit:
        out.append(f"... and {len(rows) - limit} more")
    return "\n".join(out) + "\n"


def render_report(records: Sequence[Dict[str, Any]], width: int = 60) -> str:
    """The full report: timeline + link table + counter summary."""
    snapshot = _latest_snapshot(records)
    parts = [render_timeline(records, width=width), render_link_table(snapshot)]
    counters = render_counters(snapshot)
    if counters:
        parts.append(counters)
    return "\n".join(parts)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.obs.report TRACE.jsonl``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a repro.obs JSON-lines trace into timelines and link tables.",
    )
    parser.add_argument("trace", type=Path, help="JSON-lines trace file")
    parser.add_argument("--width", type=int, default=60, help="timeline bar width")
    args = parser.parse_args(argv)
    if not args.trace.exists():
        print(f"trace file not found: {args.trace}", file=sys.stderr)
        return 2
    records = load_trace(args.trace)
    sys.stdout.write(render_report(records, width=args.width))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
