"""Bench: regenerate Table 5 — split placement over the WAN,
sequential file-copy vs streamed Grid Buffers, six machine pairings.

This is the paper's headline crossover: buffers win on fast/low-latency
links (intra-Australia), file copies win on the high-latency AU→UK and
AU→US paths.
"""

from repro.apps.climate import split_plan
from repro.bench.experiments import run_table5
from repro.bench.gantt import render_gantt
from repro.workflow.simrunner import simulate_plan


def test_table5_distributed(once):
    table = once(run_table5)
    table.print()
    # Show the overlap structure of the headline crossover pairing.
    print("brecca->bouscat with file copy (sequential):")
    print(render_gantt(simulate_plan(split_plan("brecca", "bouscat", "copy"))))
    print()
    print("brecca->bouscat with buffers (pipelined but latency-bound):")
    print(render_gantt(simulate_plan(split_plan("brecca", "bouscat", "buffer"))))
    assert table.all_checks_pass
