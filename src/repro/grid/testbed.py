"""The paper's testbed (Table 1) as a calibrated model.

Seven machines in four countries.  ``speed`` is fitted from the
sequential C-CAM column of Table 3 (brecca ≈ 1.0); ``idle_io_fraction``,
``buffer_cpu_per_mb`` and ``file_cpu_per_mb`` are fitted from the
concurrent same-machine runs of Table 4 so that the simulator
reproduces the paper's buffers-vs-files shapes (see EXPERIMENTS.md for
the fit residuals).  brecca is modelled with two cores: it is a VPAC
cluster node, and a single-CPU model cannot run three concurrent models
faster than their summed sequential compute times, which Table 4 shows
it doing.
"""

from __future__ import annotations

from typing import Dict

from ..sim.engine import Environment
from ..sim.fssim import DiskSpec
from ..sim.netsim import Network
from .machine import Machine, MachineSpec
from .network import SiteTopology, build_network

__all__ = ["TESTBED", "testbed_topology", "make_machines", "make_network", "paper_table1_rows"]


def _spec(**kw) -> MachineSpec:
    return MachineSpec(**kw)


#: Table 1 machines with calibrated timing parameters.
TESTBED: Dict[str, MachineSpec] = {
    "dione": _spec(
        name="dione",
        address="dione.csse.monash.edu.au",
        country="AU",
        cpu="Pentium 4, 1500 MHz",
        mem_mb=256,
        speed=0.596,
        cores=1,
        disk=DiskSpec(read_bandwidth=40e6, write_bandwidth=30e6),
        buffer_cpu_per_mb=1.45,
        file_cpu_per_mb=3.24,
        idle_io_fraction=0.02,
    ),
    "freak": _spec(
        name="freak",
        address="freak.ucsd.edu",
        country="US",
        cpu="Athlon, 700 MHz",
        mem_mb=256,
        speed=0.617,
        cores=1,
        disk=DiskSpec(read_bandwidth=12e6, write_bandwidth=9e6),
        buffer_cpu_per_mb=0.10,
        file_cpu_per_mb=1.60,
        idle_io_fraction=0.12,
    ),
    "vpac27": _spec(
        name="vpac27",
        address="vpac27.vpac.org",
        country="AU",
        cpu="Pentium 3, 997 MHz",
        mem_mb=256,
        speed=0.2586,
        cores=1,
        disk=DiskSpec(read_bandwidth=35e6, write_bandwidth=25e6),
        buffer_cpu_per_mb=2.10,
        file_cpu_per_mb=3.63,
        idle_io_fraction=0.02,
    ),
    "brecca": _spec(
        name="brecca",
        address="brecca-2.vpac.org",
        country="AU",
        cpu="Intel Xeon, 2.8 GHz",
        mem_mb=2048,
        speed=1.02,
        cores=2,
        disk=DiskSpec(read_bandwidth=60e6, write_bandwidth=45e6),
        buffer_cpu_per_mb=2.40,
        file_cpu_per_mb=2.34,
        idle_io_fraction=0.02,
        file_stream_sync=1.6,
    ),
    "bouscat": _spec(
        name="bouscat",
        address="bouscat.cs.cf.ac.uk",
        country="UK",
        cpu="Pentium 3, 1 GHz",
        mem_mb=1544,
        speed=0.279,
        cores=1,
        disk=DiskSpec(read_bandwidth=15e6, write_bandwidth=11e6),
        buffer_cpu_per_mb=0.13,
        file_cpu_per_mb=1.55,
        idle_io_fraction=0.12,
    ),
    "jagan": _spec(
        name="jagan",
        address="jagan.csse.monash.edu.au",
        country="AU",
        cpu="Pentium 3, 350 MHz",
        mem_mb=128,
        speed=0.1214,
        cores=1,
        disk=DiskSpec(read_bandwidth=8e6, write_bandwidth=6e6),
        buffer_cpu_per_mb=0.15,
        file_cpu_per_mb=4.0,
        idle_io_fraction=0.17,
    ),
    "koume00": _spec(
        name="koume00",
        address="koume00.hpcc.jp",
        country="JP",
        cpu="Pentium 3, 1400 MHz",
        mem_mb=1024,
        speed=0.36,
        cores=1,
        disk=DiskSpec(read_bandwidth=30e6, write_bandwidth=22e6),
        buffer_cpu_per_mb=0.5,
        file_cpu_per_mb=2.0,
        idle_io_fraction=0.05,
    ),
}

#: Site grouping for the WAN model (vpac27 and brecca share a LAN).
_SITES: Dict[str, str] = {
    "dione": "monash",
    "jagan": "monash",
    "vpac27": "vpac",
    "brecca": "vpac",
    "freak": "ucsd",
    "bouscat": "cardiff",
    "koume00": "hpcc-jp",
}


def testbed_topology() -> SiteTopology:
    """Site/country topology for the seven Table-1 machines."""
    topo = SiteTopology()
    for name, spec in TESTBED.items():
        topo.add_host(name, site=_SITES[name], country=spec.country)
    return topo


def make_machines(env: Environment) -> Dict[str, Machine]:
    """Instantiate every testbed machine in a simulation environment."""
    return {name: Machine(env, spec) for name, spec in TESTBED.items()}


def make_network(env: Environment) -> Network:
    """Instantiate the calibrated WAN between all testbed machines."""
    return build_network(env, testbed_topology())


def paper_table1_rows() -> list[dict]:
    """Rows mirroring the paper's Table 1, for the table-1 bench."""
    return [
        {
            "name": spec.name,
            "address": spec.address,
            "cpu": spec.cpu,
            "mem_mb": spec.mem_mb,
            "country": spec.country,
            "model_speed": spec.speed,
            "model_cores": spec.cores,
        }
        for spec in TESTBED.values()
    ]
