"""FM call tracing (the Bypass-style observability layer).

The paper's implementation sat on Condor's Bypass trap layer, whose
other role was *inspection* — seeing exactly which file operations a
legacy binary performs.  :class:`FmTracer` recreates that: wrap a
:class:`~repro.core.multiplexer.FileMultiplexer` and every open/read/
write/seek/close is appended to a bounded in-memory log (optionally
echoed to a stream), with per-path summaries for post-run analysis.

Usage::

    tracer = FmTracer(fm)
    f = tracer.open("/wf/x", "r")   # same API as fm.open
    ...
    print(tracer.summary())
"""

from __future__ import annotations

import io
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional, TextIO

from ..ioutil import ReadIntoFromRead
from .multiplexer import FileMultiplexer, FMFile

__all__ = ["TraceEvent", "FmTracer", "TransferSample", "TransferMonitor"]


@dataclass(frozen=True)
class TransferSample:
    """One timed remote transfer operation against one peer."""

    peer: str       # remote host label (GridFTP server, buffer server…)
    op: str         # get_block / put_block / size / fetch / store …
    nbytes: int
    seconds: float


class TransferMonitor:
    """Rolling per-peer transfer observations → bandwidth/latency estimates.

    The paper's policy (§3.1) and replica selection both want *measured*
    link numbers, not configured ones.  Every remote client records its
    RPCs here; :meth:`bandwidth` and :meth:`latency` turn the samples
    into the inputs :class:`~repro.core.policy.AccessEstimate` needs.

    Latency is estimated from the fastest small-payload round trip seen
    (halved: one-way), bandwidth from the aggregate of bulk samples —
    small ones are dominated by the round trip, not the pipe.
    """

    #: Samples at or below this payload size count as latency probes.
    SMALL_BYTES = 4096

    def __init__(self, max_samples: int = 1024):
        self._samples: Dict[str, Deque[TransferSample]] = {}
        self._max = max_samples
        self._lock = threading.Lock()

    def record(self, peer: str, op: str, nbytes: int, seconds: float) -> None:
        sample = TransferSample(peer=peer, op=op, nbytes=nbytes, seconds=max(0.0, seconds))
        with self._lock:
            bucket = self._samples.get(peer)
            if bucket is None:
                bucket = self._samples[peer] = deque(maxlen=self._max)
            bucket.append(sample)

    def samples(self, peer: str) -> list:
        with self._lock:
            return list(self._samples.get(peer, ()))

    def latency(self, peer: str) -> Optional[float]:
        """Best observed one-way latency to ``peer`` in seconds."""
        probes = [
            s.seconds for s in self.samples(peer) if s.nbytes <= self.SMALL_BYTES
        ]
        if not probes:
            return None
        return min(probes) / 2.0

    def bandwidth(self, peer: str) -> Optional[float]:
        """Observed bulk throughput to ``peer`` in bytes/second."""
        bulk = [s for s in self.samples(peer) if s.nbytes > self.SMALL_BYTES]
        if not bulk:
            return None
        total_bytes = sum(s.nbytes for s in bulk)
        total_secs = sum(s.seconds for s in bulk)
        if total_secs <= 0:
            return None
        return total_bytes / total_secs

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-peer roll-up for logging/benchmark emission."""
        out: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            peers = list(self._samples)
        for peer in peers:
            samples = self.samples(peer)
            out[peer] = {
                "ops": len(samples),
                "bytes": sum(s.nbytes for s in samples),
                "seconds": sum(s.seconds for s in samples),
                "bandwidth_bps": self.bandwidth(peer),
                "latency_s": self.latency(peer),
            }
        return out


@dataclass(frozen=True)
class TraceEvent:
    """One traced FM call."""

    timestamp: float
    op: str          # open / read / write / seek / close
    path: str
    mode: str        # IO mode in force for the handle
    detail: int = 0  # bytes for read/write, target for seek

    def __str__(self) -> str:
        return f"[{self.timestamp:.6f}] {self.op:<5} {self.path} ({self.mode}) {self.detail}"


class _TracedFile(ReadIntoFromRead, io.RawIOBase):
    def __init__(self, inner: FMFile, tracer: "FmTracer", path: str):
        super().__init__()
        self._inner = inner
        self._tracer = tracer
        self._path = path

    def _log(self, op: str, detail: int = 0) -> None:
        self._tracer._record(op, self._path, self._inner.record.mode.value, detail)

    def readable(self) -> bool:
        return self._inner.readable()

    def writable(self) -> bool:
        return self._inner.writable()

    def seekable(self) -> bool:
        return self._inner.seekable()

    def read(self, size: int = -1) -> bytes:  # type: ignore[override]
        data = self._inner.read(size)
        self._log("read", len(data or b""))
        return data

    def write(self, data) -> int:  # type: ignore[override]
        n = self._inner.write(data)
        self._log("write", n)
        return n

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        pos = self._inner.seek(offset, whence)
        self._log("seek", pos)
        return pos

    def tell(self) -> int:
        return self._inner.tell()

    def close(self) -> None:
        if not self.closed:
            self._log("close")
            self._inner.close()
            super().close()


class FmTracer:
    """Wraps an FM; opened handles log every operation."""

    def __init__(
        self,
        fm: FileMultiplexer,
        max_events: int = 100_000,
        echo: Optional[TextIO] = None,
        clock=time.monotonic,
    ):
        self.fm = fm
        self.events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.echo = echo
        self._clock = clock
        self._t0 = clock()

    def _record(self, op: str, path: str, mode: str, detail: int = 0) -> None:
        event = TraceEvent(
            timestamp=self._clock() - self._t0, op=op, path=path, mode=mode, detail=detail
        )
        self.events.append(event)
        if self.echo is not None:
            print(event, file=self.echo)

    def open(self, path: str, mode: str = "r") -> _TracedFile:
        handle = self.fm.open(path, mode)
        self._record("open", path, handle.record.mode.value)
        return _TracedFile(handle, self, path)

    # -- analysis ----------------------------------------------------------
    def transfer_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-peer throughput/latency observed by the wrapped FM."""
        monitor = getattr(self.fm, "monitor", None)
        return monitor.summary() if monitor is not None else {}

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-path op counts and byte totals."""
        out: Dict[str, Dict[str, int]] = {}
        for event in self.events:
            entry = out.setdefault(
                event.path,
                {"opens": 0, "reads": 0, "writes": 0, "seeks": 0, "bytes_read": 0, "bytes_written": 0},
            )
            if event.op == "open":
                entry["opens"] += 1
            elif event.op == "read":
                entry["reads"] += 1
                entry["bytes_read"] += event.detail
            elif event.op == "write":
                entry["writes"] += 1
                entry["bytes_written"] += event.detail
            elif event.op == "seek":
                entry["seeks"] += 1
        return out

    def clear(self) -> None:
        self.events.clear()
