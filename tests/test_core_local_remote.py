"""Unit tests for the Local and Remote file clients."""

import io

import pytest

from repro.core.local_client import LocalFileClient
from repro.core.remote_client import RemoteFileClient
from repro.transport.gridftp import GridFtpClient


@pytest.fixture()
def local(hosts):
    return LocalFileClient(hosts.host("alpha"))


@pytest.fixture()
def remote(hosts, ftp_beta, tmp_path):
    client = GridFtpClient(*ftp_beta.address, block_size=1024)
    beta = hosts.host("beta")
    beta.resolve("/data/input.bin").parent.mkdir(parents=True, exist_ok=True)
    beta.resolve("/data/input.bin").write_bytes(bytes(i % 256 for i in range(10_000)))
    yield RemoteFileClient(client, scratch_dir=tmp_path / "scratch")
    client.close()


class TestLocalFileClient:
    def test_write_read_roundtrip(self, local):
        with local.open("/out/file.txt", "w") as fh:
            fh.write(b"content")
        with local.open("/out/file.txt", "r") as fh:
            assert fh.read() == b"content"

    def test_text_mode_flag_normalised(self, local):
        with local.open("/f", "wt") as fh:
            fh.write(b"x")  # returned handle is binary regardless
        assert local.size("/f") == 1

    def test_append(self, local):
        with local.open("/log", "w") as fh:
            fh.write(b"a")
        with local.open("/log", "a") as fh:
            fh.write(b"b")
        with local.open("/log", "r") as fh:
            assert fh.read() == b"ab"

    def test_read_missing_raises(self, local):
        with pytest.raises(FileNotFoundError):
            local.open("/missing", "r")

    def test_bad_mode_rejected(self, local):
        with pytest.raises(ValueError):
            local.open("/f", "z")

    def test_sandbox_escape_rejected(self, local):
        with pytest.raises(PermissionError):
            local.open("/../escape", "w")

    def test_unsandboxed_client(self, tmp_path):
        client = LocalFileClient()
        target = tmp_path / "plain.bin"
        with client.open(str(target), "w") as fh:
            fh.write(b"direct")
        assert target.read_bytes() == b"direct"

    def test_exists_and_unlink(self, local):
        with local.open("/f", "w") as fh:
            fh.write(b"x")
        assert local.exists("/f")
        local.unlink("/f")
        assert not local.exists("/f")


class TestRemoteProxyFile:
    def test_sequential_read(self, remote):
        f = remote.open_proxy("/data/input.bin", "r")
        data = f.read(100)
        assert data == bytes(i % 256 for i in range(100))
        f.close()

    def test_read_all(self, remote):
        f = remote.open_proxy("/data/input.bin", "r")
        assert len(f.read()) == 10_000
        f.close()

    def test_seek_and_tell(self, remote):
        f = remote.open_proxy("/data/input.bin", "r")
        f.seek(5000)
        assert f.tell() == 5000
        assert f.read(4) == bytes((i % 256) for i in range(5000, 5004))
        f.seek(-4, io.SEEK_CUR)
        assert f.tell() == 5000
        f.seek(-10, io.SEEK_END)
        assert f.tell() == 9990
        f.close()

    def test_block_cache_reduces_rpcs(self, remote):
        f = remote.open_proxy("/data/input.bin", "r", block_size=1024)
        for _ in range(16):
            f.read(64)  # all within the first block
        assert f.rpc_reads == 1
        f.close()

    def test_write_through(self, remote, hosts):
        f = remote.open_proxy("/data/input.bin", "r+")
        f.seek(0)
        f.write(b"WXYZ")
        f.close()
        assert hosts.host("beta").resolve("/data/input.bin").read_bytes()[:4] == b"WXYZ"

    def test_write_invalidates_cache(self, remote):
        f = remote.open_proxy("/data/input.bin", "r+", block_size=1024)
        assert f.read(4) == bytes(range(4))
        f.seek(0)
        f.write(b"\xff\xff\xff\xff")
        f.seek(0)
        assert f.read(4) == b"\xff\xff\xff\xff"
        f.close()

    def test_missing_file_raises(self, remote):
        with pytest.raises(FileNotFoundError):
            remote.open_proxy("/nope", "r")

    def test_w_mode_truncates(self, remote, hosts):
        f = remote.open_proxy("/data/input.bin", "w")
        f.write(b"new")
        f.close()
        assert hosts.host("beta").resolve("/data/input.bin").read_bytes() == b"new"

    def test_read_only_write_rejected(self, remote):
        f = remote.open_proxy("/data/input.bin", "r")
        with pytest.raises(io.UnsupportedOperation):
            f.write(b"x")
        f.close()


class TestCopyInOut:
    def test_read_copy(self, remote):
        f = remote.open_copy("/data/input.bin", "r")
        assert f.read(10) == bytes(range(10))
        f.close()

    def test_scratch_removed_on_close(self, remote):
        f = remote.open_copy("/data/input.bin", "r")
        local_path = f.local_path
        assert local_path.exists()
        f.close()
        assert not local_path.exists()

    def test_unmodified_file_not_copied_back(self, remote, hosts):
        before = hosts.host("beta").resolve("/data/input.bin").read_bytes()
        f = remote.open_copy("/data/input.bin", "r")
        f.read()
        f.close()
        assert hosts.host("beta").resolve("/data/input.bin").read_bytes() == before

    def test_modified_file_copied_back_on_close(self, remote, hosts):
        f = remote.open_copy("/data/input.bin", "r+")
        f.write(b"MODIFIED")
        f.close()
        assert hosts.host("beta").resolve("/data/input.bin").read_bytes()[:8] == b"MODIFIED"

    def test_new_remote_file_via_w(self, remote, hosts):
        f = remote.open_copy("/data/new.bin", "w")
        f.write(b"created")
        f.close()
        assert hosts.host("beta").resolve("/data/new.bin").read_bytes() == b"created"

    def test_append_mode(self, remote, hosts):
        f = remote.open_copy("/data/input.bin", "a")
        f.write(b"TAIL")
        f.close()
        data = hosts.host("beta").resolve("/data/input.bin").read_bytes()
        assert data[-4:] == b"TAIL"
        assert len(data) == 10_004

    def test_missing_read_raises(self, remote):
        with pytest.raises(FileNotFoundError):
            remote.open_copy("/missing.bin", "r")

    def test_seek_within_copy(self, remote):
        f = remote.open_copy("/data/input.bin", "r")
        f.seek(100)
        assert f.read(1) == bytes([100])
        f.close()


class TestCopyVerification:
    def test_verified_copy_succeeds(self, remote):
        f = remote.open_copy("/data/input.bin", "r", verify=True)
        assert len(f.read()) == 10_000
        f.close()

    def test_checksum_mismatch_detected(self, remote, monkeypatch):
        monkeypatch.setattr(
            remote.client, "checksum", lambda path: "0" * 64
        )
        with pytest.raises(IOError, match="checksum verification"):
            remote.open_copy("/data/input.bin", "r", verify=True)

    def test_fm_verify_copies_context_flag(self, hosts, ftp_beta, gns, tmp_path):
        from repro.core.multiplexer import FileMultiplexer, GridContext
        from repro.gns.records import GnsRecord, IOMode

        beta = hosts.host("beta")
        beta.resolve("/data/input.bin").parent.mkdir(parents=True, exist_ok=True)
        beta.resolve("/data/input.bin").write_bytes(bytes(i % 256 for i in range(10_000)))
        gns.add(
            GnsRecord(
                machine="alpha",
                path="/v/data.bin",
                mode=IOMode.COPY,
                remote_host="beta",
                remote_path="/data/input.bin",
            )
        )
        fm = FileMultiplexer(
            GridContext(
                machine="alpha",
                gns=gns,
                hosts=hosts,
                gridftp={"beta": ftp_beta.address},
                scratch_dir=tmp_path / "scratch",
                verify_copies=True,
            )
        )
        f = fm.open("/v/data.bin", "r")
        assert len(f.read()) == 10_000
        f.close()
        fm.close()
