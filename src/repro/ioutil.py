"""Small IO helpers shared across FM clients.

CPython's ``io.RawIOBase`` implements ``read()`` in terms of
``readinto()`` — not the other way round — so raw classes that only
define ``read()`` break under ``io.BufferedReader``.
:class:`ReadIntoFromRead` supplies the missing direction.

This module also hosts the shared integrity primitives: the masked
crc32 used by every checksummed path (wire frames, peer-cache reads,
shared-cache blocks), a whole-file sha256 helper, and the
``integrity_errors_total{layer,action}`` counter every detection site
increments so one query answers "did corruption fire, and where was it
caught?".
"""

from __future__ import annotations

import hashlib
import zlib
from pathlib import Path
from typing import Union

from . import obs

__all__ = ["ReadIntoFromRead", "crc32", "sha256_file", "count_integrity_error"]

_INTEGRITY_ERRORS = obs.counter(
    "integrity_errors_total",
    "Corruption detections by layer and recovery action taken",
    labelnames=("layer", "action"),
)


def crc32(data: Union[bytes, bytearray, memoryview]) -> int:
    """zlib crc32 masked to an unsigned 32-bit value.

    The single definition behind every checksum in the tree: the binary
    wire trailer, ``gb.peer_read`` replies, and shared-cache block
    verification all compare values produced here.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


def sha256_file(path: Union[str, Path], chunk_size: int = 1 << 20) -> str:
    """Streaming sha256 of a file — the whole-file transfer checksum."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def count_integrity_error(layer: str, action: str) -> None:
    """Record one detected corruption at ``layer``, healed via ``action``."""
    _INTEGRITY_ERRORS.labels(layer=layer, action=action).inc()


class ReadIntoFromRead:
    """Mixin providing ``readinto`` for classes that implement ``read``."""

    def readinto(self, buffer) -> int:  # type: ignore[override]
        data = self.read(len(buffer))  # type: ignore[attr-defined]
        n = len(data)
        buffer[:n] = data
        return n
