"""Unit tests for the replica catalogue."""


from repro.grid.replica_catalog import Replica, ReplicaCatalog


class TestReplicaCatalog:
    def test_register_and_lookup(self):
        cat = ReplicaCatalog()
        cat.register("lfn://data", Replica("hostA", "/a/data", size=100))
        replicas = cat.lookup("lfn://data")
        assert len(replicas) == 1
        assert replicas[0].host == "hostA"

    def test_lookup_unknown_is_empty(self):
        assert ReplicaCatalog().lookup("nope") == []

    def test_duplicate_registration_updates_size(self):
        cat = ReplicaCatalog()
        cat.register("f", Replica("h", "/p", size=1))
        cat.register("f", Replica("h", "/p", size=99))
        replicas = cat.lookup("f")
        assert len(replicas) == 1
        assert replicas[0].size == 99

    def test_multiple_replicas_ordered_by_registration(self):
        cat = ReplicaCatalog()
        cat.register("f", Replica("h1", "/p"))
        cat.register("f", Replica("h2", "/p"))
        assert [r.host for r in cat.lookup("f")] == ["h1", "h2"]

    def test_unregister(self):
        cat = ReplicaCatalog()
        cat.register("f", Replica("h1", "/p"))
        cat.register("f", Replica("h2", "/p"))
        assert cat.unregister("f", "h1", "/p") is True
        assert cat.hosts_holding("f") == {"h2"}
        assert cat.unregister("f", "h1", "/p") is False

    def test_unregister_last_removes_entry(self):
        cat = ReplicaCatalog()
        cat.register("f", Replica("h", "/p"))
        cat.unregister("f", "h", "/p")
        assert not cat.exists("f")
        assert len(cat) == 0

    def test_lookup_returns_copy(self):
        cat = ReplicaCatalog()
        cat.register("f", Replica("h", "/p"))
        cat.lookup("f").clear()
        assert len(cat.lookup("f")) == 1

    def test_logical_names_sorted(self):
        cat = ReplicaCatalog()
        cat.register("zz", Replica("h", "/1"))
        cat.register("aa", Replica("h", "/2"))
        assert list(cat.logical_names()) == ["aa", "zz"]

    def test_replica_str(self):
        assert str(Replica("host1", "/d/f")) == "host1:/d/f"
