"""Simulated workflow execution on the calibrated testbed.

Runs an :class:`~repro.workflow.scheduler.ExecutionPlan` inside the
discrete-event engine and reports each stage's completion time — the
quantity every evaluation table in the paper records.

Modelled mechanics (all parameters live in the testbed MachineSpecs and
the WAN link specs; see DESIGN.md §5):

* **compute** — each stage's ``work`` is spread over ``chunks`` and
  executed on the machine's processor-sharing CPU; concurrent stages on
  one CPU timeshare it, which is how the paper runs three climate
  models on one box.
* **idle IO** — ``idle_io_fraction`` of a stage's runtime is blocking
  (CPU-free) IO; overlapped execution reclaims it, which is why
  concurrent buffers beat *sequential* runs on machines with slow IO
  (freak, bouscat) in Table 4.
* **buffer coupling** — per-chunk transfer over the WAN link, paying a
  round-trip stall every ``window`` blocks (4 KiB blocks, SOAP-style
  envelope overhead) and CPU cost ``buffer_cpu_per_mb`` split across
  the two endpoints; bounded capacity gives backpressure, so a slow WAN
  reader slows the upstream writer exactly as in Table 5.
* **file-stream coupling** — Table 4's "Files" columns: concurrent
  stages sharing data through local files, paying ``file_cpu_per_mb``
  plus per-chunk sync blocking.
* **copy coupling** — sequential stages + GridFTP bulk copy: pays the
  link latency only a couple of times regardless of size, which is why
  it beats buffers on high-latency paths (Table 5's AU→UK/US rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..grid.machine import Machine
from ..sim.engine import Environment, Event
from ..sim.netsim import Network
from .external import REMOTE_BLOCK, ExternalInput
from .scheduler import ExecutionPlan
from .scheduler import ExecutionPlan

__all__ = ["SimReport", "StageTiming", "simulate_plan", "GRID_BUFFER_BLOCK", "GRID_BUFFER_WINDOW"]

MB = 1024.0 * 1024.0

#: Grid Buffer wire parameters (paper: 4096-byte writes; SOAP envelope).
GRID_BUFFER_BLOCK = 4096
GRID_BUFFER_WINDOW = 8
GRID_BUFFER_OVERHEAD = 512  # per-block envelope bytes
DEFAULT_CHANNEL_CAPACITY = 32 * 1024 * 1024


@dataclass
class StageTiming:
    """Start/finish of one stage in simulated seconds."""

    stage: str
    machine: str
    start: float
    finish: float

    @property
    def elapsed(self) -> float:
        return self.finish - self.start


@dataclass
class SimReport:
    """Result of one simulated workflow execution."""

    plan: ExecutionPlan
    timings: Dict[str, StageTiming] = field(default_factory=dict)
    copy_times: Dict[str, Tuple[float, float]] = field(default_factory=dict)  # file -> (start, finish)
    #: machine -> [(time, active jobs)] when sampling was requested.
    load_samples: Dict[str, List[Tuple[float, int]]] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return max(t.finish for t in self.timings.values()) if self.timings else 0.0

    def finish_of(self, stage: str) -> float:
        return self.timings[stage].finish

    def utilisation(self, machine: str) -> float:
        """Fraction of sampled instants with at least one job running."""
        samples = self.load_samples.get(machine, [])
        if not samples:
            raise ValueError(f"no load samples for {machine!r}; pass sample_interval")
        busy = sum(1 for _, load in samples if load > 0)
        return busy / len(samples)


class _Channel:
    """Bounded producer→consumer byte channel inside the simulation."""

    def __init__(
        self,
        env: Environment,
        capacity: int = DEFAULT_CHANNEL_CAPACITY,
    ):
        self.env = env
        self.capacity = capacity
        self.buffered = 0
        self.closed = False
        self._waiters: List[Event] = []

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for evt in waiters:
            evt.succeed(None)

    def _wait(self):
        evt = self.env.event()
        self._waiters.append(evt)
        return evt

    def deposit(self, nbytes: int):
        """Writer-side: block until capacity admits ``nbytes``."""
        while self.capacity is not None and self.buffered + nbytes > self.capacity:
            yield self._wait()
        self.buffered += nbytes
        self._wake()
        return None

    def consume(self, nbytes: int):
        """Reader-side: block until ``nbytes`` present (or EOF short)."""
        while self.buffered < nbytes and not self.closed:
            yield self._wait()
        take = min(nbytes, self.buffered)
        self.buffered -= take
        self._wake()
        return take

    def close(self) -> None:
        self.closed = True
        self._wake()


class _BufferEdge:
    """Buffer coupling: WAN transfer + channel, per chunk."""

    def __init__(self, env: Environment, net: Network, src: str, dst: str):
        self.env = env
        self.net = net
        self.src = src
        self.dst = dst
        self.channel = _Channel(env)
        self.spec = net.spec(src, dst)

    def send(self, nbytes: int):
        """Writer side: pay windowed per-block transfer, then deposit."""
        if nbytes <= 0:
            return None
        nblocks = max(1, -(-nbytes // GRID_BUFFER_BLOCK))
        wire_bytes = nbytes + nblocks * GRID_BUFFER_OVERHEAD
        stalls = -(-nblocks // GRID_BUFFER_WINDOW)
        yield self.net.message(self.src, self.dst, wire_bytes)
        if stalls > 1:
            # The first round trip is already inside message(); remaining
            # window acks each cost one RTT of writer stall.
            yield self.env.timeout((stalls - 1) * self.spec.rtt + stalls * self.spec.latency)
        yield from self.channel.deposit(nbytes)
        return None

    def recv(self, nbytes: int):
        got = yield from self.channel.consume(nbytes)
        return got

    def close(self) -> None:
        self.channel.close()


class _FileStreamEdge:
    """file-stream coupling: concurrent stages sharing a local file."""

    def __init__(self, env: Environment, machine: Machine):
        self.env = env
        self.machine = machine
        self.channel = _Channel(env, capacity=None)  # disk is unbounded

    def send(self, nbytes: int):
        if nbytes <= 0:
            return None
        yield self.machine.fs.disk.write(nbytes)
        # Writer-side sync/flush cost: the FM must publish the data (and
        # its metadata) before the follower may see it.  Blocking, so it
        # sits on the producer chain even on multi-core machines.
        sync = self.machine.spec.file_stream_sync
        if sync > 0:
            yield self.env.timeout(sync)
        yield from self.channel.deposit(nbytes)
        return None

    def recv(self, nbytes: int):
        got = yield from self.channel.consume(nbytes)
        if got:
            yield self.machine.fs.disk.read(got)
        return got

    def close(self) -> None:
        self.channel.close()


def simulate_plan(
    plan: ExecutionPlan,
    machines: Optional[Mapping[str, Machine]] = None,
    network: Optional[Network] = None,
    env: Optional[Environment] = None,
    sample_interval: Optional[float] = None,
    externals: Optional[Mapping[str, ExternalInput]] = None,
) -> SimReport:
    """Execute ``plan`` in virtual time and return per-stage timings.

    With no arguments, instantiates the calibrated paper testbed.
    ``sample_interval`` enables periodic CPU-load sampling per machine
    (see :meth:`SimReport.utilisation`).  ``externals`` declares where
    the workflow's *input* files live and how consumers access them
    (:class:`~repro.workflow.external.ExternalInput`).
    """
    if env is None:
        env = Environment()
    if machines is None:
        from ..grid.testbed import make_machines

        machines = make_machines(env)
    if network is None:
        from ..grid.testbed import make_network

        network = make_network(env)

    wf = plan.workflow
    report = SimReport(plan=plan)

    externals = dict(externals or {})
    ext_inputs = set(wf.external_inputs())
    for fname in externals:
        if fname in wf.pipeline_files():
            raise KeyError(
                f"{fname!r} is a pipeline file; external placement applies only "
                "to workflow inputs"
            )
        if fname not in ext_inputs:
            raise KeyError(f"unknown external input {fname!r}")

    # Build stream edges (buffer / file-stream) keyed by (file, consumer).
    edges: Dict[Tuple[str, str], object] = {}
    for fname in wf.pipeline_files():
        mech = plan.coupling[fname]
        producer = wf.producer_of(fname)
        src = plan.machine_of(producer)
        for consumer in wf.consumers_of(fname):
            dst = plan.machine_of(consumer)
            if mech == "buffer":
                edges[(fname, consumer)] = _BufferEdge(env, network, src, dst)
            elif mech == "file-stream":
                edges[(fname, consumer)] = _FileStreamEdge(env, machines[src])

    done_events: Dict[str, Event] = {s: env.event() for s in wf.stages}
    copy_done: Dict[Tuple[str, str], Event] = {}

    # Copy edges: a transfer process per (file, consumer) on another host.
    for fname, src, dst in plan.copies_required():
        producer = wf.producer_of(fname)
        nbytes = wf.file_use(producer, fname, "write").nbytes
        for consumer in wf.consumers_of(fname):
            if plan.machine_of(consumer) != dst:
                continue
            evt = env.event()
            copy_done[(fname, consumer)] = evt

            def copier(fname=fname, src=src, dst=dst, nbytes=nbytes, evt=evt, producer=producer):
                yield done_events[producer]
                start = env.now
                yield machines[src].fs.disk.read(nbytes)
                yield network.bulk_transfer(src, dst, nbytes)
                yield machines[dst].fs.disk.write(nbytes)
                report.copy_times[fname] = (start, env.now)
                evt.succeed(None)
                return None

            env.process(copier(), name=f"copy:{fname}->{dst}")

    waits = plan.start_constraints()

    def stage_proc(stage: Stage):
        machine = machines[plan.machine_of(stage.name)]
        spec = machine.spec
        # Honour start constraints: local/copy edges are sequential.
        for producer in waits[stage.name]:
            yield done_events[producer]
        for fu in stage.reads:
            if (fu.name, stage.name) in copy_done:
                yield copy_done[(fu.name, stage.name)]
        start = env.now

        in_stream = [
            (fu, edges[(fu.name, stage.name)])
            for fu in stage.reads
            if (fu.name, stage.name) in edges
        ]
        out_stream = [
            (fu, [edges[(fu.name, c)] for c in wf.consumers_of(fu.name) if (fu.name, c) in edges])
            for fu in stage.writes
        ]
        out_stream = [(fu, chans) for fu, chans in out_stream if chans]
        # Sequentially-read pipeline inputs and plain files hit the
        # disk; externally-placed inputs are copied in up front or
        # proxied block-by-block, per their declared access mode.
        in_disk = []
        ext_copy = []
        ext_remote = []
        for fu in stage.reads:
            if (fu.name, stage.name) in edges:
                continue
            einfo = externals.get(fu.name)
            if einfo is not None and einfo.host != machine.name and einfo.mode == "copy":
                ext_copy.append((fu, einfo))
                in_disk.append(fu)  # read locally after the copy-in
            elif einfo is not None and einfo.host != machine.name and einfo.mode == "remote":
                ext_remote.append((fu, einfo))
            else:
                in_disk.append(fu)
        for fu, einfo in ext_copy:
            yield machines[einfo.host].fs.disk.read(fu.nbytes)
            yield network.bulk_transfer(einfo.host, machine.name, fu.nbytes)
            yield machine.fs.disk.write(fu.nbytes)
        out_disk = [
            fu
            for fu in stage.writes
            if not any((fu.name, c) in edges for c in wf.consumers_of(fu.name))
        ]

        n = stage.chunks
        main_work = stage.work * (1.0 - stage.tail_fraction)
        chunk_work = main_work / n
        # Per-chunk endpoint CPU overheads (work units).
        overhead = 0.0
        for fu, _edge in in_stream:
            mech = plan.coupling[fu.name]
            per_mb = spec.buffer_cpu_per_mb if mech == "buffer" else spec.file_cpu_per_mb
            overhead += 0.5 * per_mb * (fu.nbytes / MB) / n
        for fu, chans in out_stream:
            mech = plan.coupling[fu.name]
            per_mb = spec.buffer_cpu_per_mb if mech == "buffer" else spec.file_cpu_per_mb
            overhead += 0.5 * per_mb * (fu.nbytes / MB) / n * len(chans)
        idle_per_chunk = 0.0
        if spec.idle_io_fraction > 0 and chunk_work > 0:
            chunk_secs = chunk_work / spec.speed
            idle_per_chunk = chunk_secs * spec.idle_io_fraction / (1 - spec.idle_io_fraction)

        for i in range(n):
            for fu, edge in in_stream:
                want = fu.nbytes // n if i < n - 1 else fu.nbytes - (fu.nbytes // n) * (n - 1)
                got = 0
                while got < want:
                    r = yield from edge.recv(want - got)
                    if r == 0:
                        break
                    got += r
            for fu in in_disk:
                per = fu.nbytes // n
                if per > 0:
                    yield machine.fs.disk.read(per)
            for fu, einfo in ext_remote:
                touched = int(fu.nbytes * einfo.read_fraction)
                per = touched // n if i < n - 1 else touched - (touched // n) * (n - 1)
                remaining = per
                while remaining > 0:
                    block = min(REMOTE_BLOCK, remaining)
                    # One synchronous block fetch: request out, data back.
                    yield network.request_response(machine.name, einfo.host, 256, block)
                    remaining -= block
            work = chunk_work + overhead
            if work > 0:
                yield machine.compute(work)
            if idle_per_chunk > 0:
                yield env.timeout(idle_per_chunk)
            for fu, chans in out_stream:
                per = fu.nbytes // n if i < n - 1 else fu.nbytes - (fu.nbytes // n) * (n - 1)
                if len(chans) == 1:
                    yield from chans[0].send(per)
                else:
                    # Broadcast: one write fans out to all consumers
                    # concurrently (the service pushes each block once
                    # per reader, not sequentially).
                    def _send(chan=None, per=per):
                        yield from chan.send(per)
                        return None

                    yield env.all_of(
                        [env.process(_send(chan=chan)) for chan in chans]
                    )
            for fu in out_disk:
                per = fu.nbytes // n
                if per > 0:
                    yield machine.fs.disk.write(per)

        for fu, chans in out_stream:
            for chan in chans:
                chan.close()
        # Re-reads (cache-file path) and post-stream tail work.
        for fu in stage.reads:
            if fu.reread_bytes > 0:
                yield machine.fs.disk.read(fu.reread_bytes)
        tail = stage.work * stage.tail_fraction
        if tail > 0:
            yield machine.compute(tail)
        report.timings[stage.name] = StageTiming(
            stage=stage.name,
            machine=machine.name,
            start=start,
            finish=env.now,
        )
        done_events[stage.name].succeed(None)
        return None

    for stage in wf.stages.values():
        env.process(stage_proc(stage), name=f"stage:{stage.name}")

    if sample_interval is not None:
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        used = {plan.machine_of(s) for s in wf.stages}
        pending = {"n": len(wf.stages)}

        # Wrap completion counting so samplers stop when all stages end
        # (an immortal sampler would keep the event queue alive forever).
        for stage_name, evt in done_events.items():
            def count(_e, pending=pending):
                pending["n"] -= 1
            evt.callbacks.append(count)

        def sampler(machine_name: str):
            samples = report.load_samples.setdefault(machine_name, [])
            machine = machines[machine_name]
            while pending["n"] > 0:
                samples.append((env.now, machine.cpu.load))
                yield env.timeout(sample_interval)
            return None

        for machine_name in sorted(used):
            env.process(sampler(machine_name), name=f"sampler:{machine_name}")

    env.run()
    return report
