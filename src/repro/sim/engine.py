"""Deterministic discrete-event simulation engine.

This is the substrate on which the grid testbed (machines, networks,
disks) is modelled.  It is a small, dependency-free engine in the style
of SimPy: simulation *processes* are Python generators that ``yield``
events; the engine advances virtual time by popping the earliest event
from a priority queue and resuming every process waiting on it.

Determinism is guaranteed by breaking time ties with a monotonically
increasing sequence number, so two runs of the same model always produce
identical traces.  No wall-clock time or randomness enters the engine
itself; stochastic models draw from explicitly seeded generators.

Example
-------
>>> env = Environment()
>>> log = []
>>> def proc(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(proc(env, "a", 2.0))
>>> _ = env.process(proc(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*, becomes *triggered* when given a value
    (or failure) and is *processed* once the engine has resumed all of
    its callbacks.  Processes wait on events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None if still pending."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiting processes see ``exc``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self._triggered = True
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        env._schedule(self, delay=delay)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._n_done = 0
        if any(e.env is not env for e in self.events):
            raise SimulationError("cannot mix events from different environments")
        if not self.events:
            self.succeed({})
            return
        for e in self.events:
            if e._processed:
                self._on_child(e)
            else:
                e.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._ok is False:
            event.defuse()
            self.fail(event._value)
            return
        self._n_done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        # Only children the engine has actually processed count as
        # "done" — a pre-triggered Timeout still waiting in the queue
        # must not leak into an AnyOf's value.
        return {e: e._value for e in self.events if e._processed and e._ok}


class AllOf(_Condition):
    """Triggers when every child event has triggered successfully."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done == len(self.events)


class AnyOf(_Condition):
    """Triggers as soon as any child event triggers successfully."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= 1


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event that triggers with the generator's
    return value when it finishes, so processes can wait on each other:

    >>> env = Environment()
    >>> def child(env):
    ...     yield env.timeout(5)
    ...     return 42
    >>> def parent(env):
    ...     value = yield env.process(child(env))
    ...     return value
    >>> p = env.process(parent(env))
    >>> env.run()
    >>> p.value
    42
    """

    __slots__ = ("gen", "name", "_target")

    def __init__(self, env: "Environment", gen: Generator, name: str = ""):
        super().__init__(env)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        init = Event(env)
        init._ok = True
        init._triggered = True
        init.callbacks.append(self._resume)
        env._schedule(init)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        env = self.env
        hook = Event(env)
        hook._ok = True
        hook._triggered = True

        def _do(_evt: Event) -> None:
            if self._triggered:
                return  # finished in the meantime
            target = self._target
            if target is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            self._target = None
            self._step(lambda: self.gen.throw(Interrupt(cause)))

        hook.callbacks.append(_do)
        env._schedule(hook, priority=0)

    # -- engine plumbing ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(lambda: self.gen.send(event._value))
        else:
            event.defuse()
            exc = event._value
            self._step(lambda: self.gen.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            if not self.callbacks:
                # Nobody is watching: surface the crash to the engine.
                self.env._crash(exc)
            return
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            self._step_throw(exc)
            return
        if target.env is not self.env:
            self._step_throw(SimulationError("yielded event from foreign environment"))
            return
        self._target = target
        if target._processed:
            # Already done: resume on next schedule tick to preserve FIFO order.
            hook = Event(self.env)
            hook._ok = target._ok
            hook._value = target._value
            hook._triggered = True
            hook.callbacks.append(self._resume)
            self.env._schedule(hook)
        else:
            target.callbacks.append(self._resume)

    def _step_throw(self, exc: BaseException) -> None:
        self._step(lambda: self.gen.throw(exc))


class Environment:
    """Holds the event queue and the virtual clock."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._crashed: Optional[BaseException] = None

    @property
    def now(self) -> float:
        """Current virtual time (seconds by convention)."""
        return self._now

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def _crash(self, exc: BaseException) -> None:
        self._crashed = exc

    # -- main loop -----------------------------------------------------------
    def step(self) -> None:
        """Process the single earliest scheduled event."""
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event._processed = True
        for cb in callbacks:
            cb(event)
        if self._crashed is not None:
            exc, self._crashed = self._crashed, None
            raise exc
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is empty or virtual time reaches ``until``."""
        if until is not None and until < self._now:
            raise ValueError(f"until ({until}) is in the past (now={self._now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")
