#!/usr/bin/env python3
"""Dynamic replica re-mapping under changing network weather.

A read-only replicated dataset is served from two mirrors.  Midway
through a long read, the chosen mirror's path degrades; NWS probes (in
simulated virtual time) notice, the forecast flips, and the File
Multiplexer transparently re-maps the open file handle to the other
mirror — Section 3.1's "change the mapping dynamically during the
execution, allowing it to adapt to changing network conditions".

The network-weather timeline runs in the deterministic simulator; the
byte movement runs for real through the FM.

Run:  python examples/adaptive_replicas.py
"""

import tempfile
from pathlib import Path

from repro.core import FileMultiplexer, GridContext, ReplicaSelector
from repro.gns import GnsRecord, IOMode, LocalGnsClient, NameService
from repro.grid import (
    Measurement,
    NetworkWeatherService,
    ProbeDaemon,
    Replica,
    ReplicaCatalog,
)
from repro.sim.engine import Environment
from repro.sim.netsim import LinkSpec, Network
from repro.transport import GridFtpServer, HostRegistry


def main() -> None:
    base = Path(tempfile.mkdtemp(prefix="griddles-adaptive-"))
    hosts = HostRegistry(base / "hosts")
    for name in ("client", "mirrorA", "mirrorB"):
        hosts.add_host(name)
    for mirror, tag in (("mirrorA", b"A"), ("mirrorB", b"B")):
        p = hosts.host(mirror).resolve("/data/big.dat")
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_bytes(tag * 200_000)
    ftp = {m: GridFtpServer(hosts.host(m).root).start() for m in ("mirrorA", "mirrorB")}

    # --- network weather, in virtual time -----------------------------------
    env = Environment()
    net = Network(env)
    net.connect("mirrorA", "client", LinkSpec(bandwidth=10e6, latency=0.01))
    net.connect("mirrorB", "client", LinkSpec(bandwidth=4e6, latency=0.02))
    nws = NetworkWeatherService(window=6)
    daemon = ProbeDaemon(
        env, net, nws, [("mirrorA", "client"), ("mirrorB", "client")], interval=30.0
    )
    daemon.start(horizon=1200.0)

    def storm():
        yield env.timeout(300.0)
        print("  [t=300s virtual] mirrorA's link degrades (storm)")
        net.set_spec("mirrorA", "client", LinkSpec(bandwidth=0.2e6, latency=0.4))

    env.process(storm(), name="storm")

    # --- the FM on the client -------------------------------------------------
    catalog = ReplicaCatalog()
    catalog.register("lfn://big", Replica("mirrorA", "/data/big.dat", size=200_000))
    catalog.register("lfn://big", Replica("mirrorB", "/data/big.dat", size=200_000))
    selector = ReplicaSelector(catalog, nws, hysteresis=1.3)
    ns = NameService()
    ns.add(
        GnsRecord(
            machine="client",
            path="/in/big.dat",
            mode=IOMode.REMOTE_REPLICA,
            logical_name="lfn://big",
        )
    )
    fm = FileMultiplexer(
        GridContext(
            machine="client",
            gns=LocalGnsClient(ns),
            hosts=hosts,
            gridftp={m: s.address for m, s in ftp.items()},
            selector=selector,
            remap_every=2,  # re-check the forecast every couple of reads
        )
    )

    env.run(until=200.0)  # warm up the NWS: mirrorA looks best
    f = fm.open("/in/big.dat", "r")
    first = f.read(4)
    print(f"reading starts from mirror{'A' if first == b'AAAA' else 'B'}")

    sources = []
    for burst in range(8):
        env.run(until=200.0 + (burst + 1) * 100.0)  # weather advances
        chunk = f.read(25_000 - (4 if burst == 0 else 0))
        sources.append(chr(chunk[0]))
    f.close()
    print(f"burst sources over time: {' '.join(sources)}")
    print(f"handle re-mapped {f.stats.remaps} time(s)")
    assert "A" in sources and "B" in sources, "expected a mid-read switch"
    fm.close()
    for s in ftp.values():
        s.stop()
    print("the open file handle followed the network weather ✓")


if __name__ == "__main__":
    main()
