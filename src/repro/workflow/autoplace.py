"""Automatic placement + coupling (the paper's future-work scheduler).

Section 6: "the scheduler needs to take account of whether the workflow
is configured to copy files or use direct connections, since both
impose different scheduling constraints."  This module implements that
scheduler: enumerate (or greedily build) placements, pick the best
coupling per edge with :func:`~repro.workflow.scheduler.choose_coupling`,
and score complete plans with
:func:`~repro.workflow.scheduler.estimate_makespan`.

Two strategies:

* :func:`exhaustive_placement` — all |machines|^|stages| assignments
  (guarded; fine for the paper's 3-5 stage pipelines),
* :func:`greedy_placement` — stages in topological order, each placed
  on the machine minimising the partial-plan makespan estimate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..grid.machine import MachineSpec
from ..sim.netsim import LinkSpec
from .scheduler import Coupling, ExecutionPlan, choose_coupling, estimate_makespan, plan_workflow
from .spec import Workflow

__all__ = ["PlacementResult", "exhaustive_placement", "greedy_placement", "links_from_network"]


@dataclass(frozen=True)
class PlacementResult:
    """A scored plan candidate."""

    plan: ExecutionPlan
    estimated_makespan: float

    @property
    def placement(self) -> Mapping[str, str]:
        return self.plan.placement

    @property
    def coupling(self) -> Mapping[str, Coupling]:
        return self.plan.coupling


def links_from_network(machines: Sequence[str], topology) -> Dict[Tuple[str, str], LinkSpec]:
    """Build the link table the planners need from a SiteTopology."""
    out: Dict[Tuple[str, str], LinkSpec] = {}
    for i, a in enumerate(machines):
        for b in machines[i + 1 :]:
            out[(a, b)] = topology.path_spec(a, b)
    return out


def _score(
    workflow: Workflow,
    placement: Dict[str, str],
    machines: Mapping[str, MachineSpec],
    links: Mapping[Tuple[str, str], LinkSpec],
) -> PlacementResult:
    coupling = choose_coupling(workflow, placement, machines, links)
    plan = plan_workflow(workflow, placement, coupling=coupling)
    return PlacementResult(plan, estimate_makespan(plan, machines, links))


def exhaustive_placement(
    workflow: Workflow,
    machines: Mapping[str, MachineSpec],
    links: Mapping[Tuple[str, str], LinkSpec],
    max_candidates: int = 200_000,
) -> PlacementResult:
    """Try every placement; return the best-scoring plan.

    Raises ValueError when the search space exceeds ``max_candidates``
    (use :func:`greedy_placement` instead).
    """
    stages = list(workflow.stages)
    names = sorted(machines)
    space = len(names) ** len(stages)
    if space > max_candidates:
        raise ValueError(
            f"{space} placements exceed max_candidates={max_candidates}; "
            "use greedy_placement"
        )
    best: Optional[PlacementResult] = None
    for combo in itertools.product(names, repeat=len(stages)):
        placement = dict(zip(stages, combo))
        candidate = _score(workflow, placement, machines, links)
        if best is None or candidate.estimated_makespan < best.estimated_makespan:
            best = candidate
    assert best is not None  # non-empty workflows guaranteed by Workflow
    return best


def greedy_placement(
    workflow: Workflow,
    machines: Mapping[str, MachineSpec],
    links: Mapping[Tuple[str, str], LinkSpec],
) -> PlacementResult:
    """Topological-order greedy placement.

    Each stage tries every machine with all previously placed stages
    fixed (unplaced downstream stages temporarily ride on the fastest
    machine) and keeps the assignment minimising the estimate.  O(S*M)
    estimate evaluations.
    """
    names = sorted(machines)
    fastest = max(names, key=lambda n: machines[n].speed)
    placement: Dict[str, str] = {s: fastest for s in workflow.stages}
    for stage in workflow.topological_order():
        best_machine = placement[stage]
        best_time = float("inf")
        for name in names:
            placement[stage] = name
            t = _score(workflow, placement, machines, links).estimated_makespan
            if t < best_time:
                best_time = t
                best_machine = name
        placement[stage] = best_machine
    return _score(workflow, placement, machines, links)
