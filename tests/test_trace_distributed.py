"""One merged trace from a six-mode workflow spanning three OS
processes (the EXPERIMENTS.md distributed-tracing recipe, automated).

The driver (this process) runs all six IO modes against a GridFTP
server and a Grid Buffer server living in their own interpreters,
each writing its own JSONL trace in its own monotonic clock domain.
The merge must align the clocks from RPC span pairs, parent every
remote ``rpc.server`` span under its caller, and attribute >=95% of
the workflow makespan via the critical-path sweep.
"""

import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro import obs
from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.core.replica import ReplicaSelector
from repro.gns.client import LocalGnsClient
from repro.gns.records import BufferEndpoint, GnsRecord, IOMode
from repro.gns.server import NameService
from repro.grid.nws import Measurement, NetworkWeatherService
from repro.grid.replica_catalog import Replica, ReplicaCatalog
from repro.obs.report import critical_path, load_trace, merge_traces
from repro.transport.inmem import HostRegistry

REPO = Path(__file__).resolve().parents[1]
HELPER = Path(__file__).resolve().parent / "_trace_server.py"


def _launch(kind: str, data_dir: Path, trace: Path, proc_label: str, env):
    child_env = dict(env, REPRO_OBS_PROC=proc_label)
    child = subprocess.Popen(
        [sys.executable, str(HELPER), kind, str(data_dir), str(trace)],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=child_env,
    )
    line = child.stdout.readline().strip()
    if not line.startswith("PORT "):
        child.kill()
        raise AssertionError(
            f"{kind} helper failed to start: {line!r}\n{child.stderr.read()}"
        )
    return child, int(line.split()[1])


@pytest.fixture()
def fleet(tmp_path, monkeypatch):
    """Two child server processes + driver-side trace plumbing."""
    import os

    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    ftp_root = tmp_path / "ftp-root"
    (ftp_root / "in").mkdir(parents=True)
    (ftp_root / "in" / "source.dat").write_bytes(b"S" * 4096)
    (ftp_root / "replicas").mkdir()
    (ftp_root / "replicas" / "big.dat").write_bytes(b"1" * 2048)

    children = []
    try:
        ftp, ftp_port = _launch(
            "ftp", ftp_root, tmp_path / "trace-ftp.jsonl", "ftp-1", env
        )
        children.append(ftp)
        buf, buf_port = _launch(
            "buffer", tmp_path / "buf-cache", tmp_path / "trace-buffer.jsonl",
            "buffer-1", env,
        )
        children.append(buf)

        tracer = obs.get_tracer()
        monkeypatch.setattr(tracer, "proc", "driver")
        driver_trace = tmp_path / "trace-driver.jsonl"
        sink = obs.JsonLinesSink(driver_trace)
        prior = obs.configure(sink)
        try:
            yield {
                "ftp_addr": ("127.0.0.1", ftp_port),
                "buffer_addr": ("127.0.0.1", buf_port),
                "traces": [
                    driver_trace,
                    tmp_path / "trace-ftp.jsonl",
                    tmp_path / "trace-buffer.jsonl",
                ],
            }
        finally:
            obs.configure(prior)
            sink.close()
    finally:
        for child in children:
            child.stdin.close()
            try:
                child.wait(timeout=10)
            except subprocess.TimeoutExpired:
                child.kill()


def _run_six_modes(fleet, tmp_path):
    """All six IO modes, each inside a ``task`` span, one workflow root."""
    hosts = HostRegistry(tmp_path / "hosts")
    for name in ("compute", "store2"):
        hosts.add_host(name)
    catalog = ReplicaCatalog()
    # Both "replica hosts" resolve to the one out-of-process FTP server;
    # the selector still has a real choice to make.
    catalog.register("lfn://big", Replica("store1", "/replicas/big.dat", size=2048))
    catalog.register("lfn://big", Replica("store2", "/replicas/big.dat", size=2048))
    nws = NetworkWeatherService()
    for i in range(4):
        nws.record("store1", "compute", Measurement(time=i, bandwidth=8e6, latency=0.01))
        nws.record("store2", "compute", Measurement(time=i, bandwidth=1e6, latency=0.2))
    ns = NameService(locate_buffer_server=lambda machine: fleet["buffer_addr"])
    ns.add_all([
        GnsRecord(machine="compute", path="/job/remote-in.dat", mode=IOMode.REMOTE,
                  remote_host="store1", remote_path="/in/source.dat"),
        GnsRecord(machine="compute", path="/job/copied-in.dat", mode=IOMode.COPY,
                  remote_host="store1", remote_path="/in/source.dat"),
        GnsRecord(machine="compute", path="/job/replica-remote.dat",
                  mode=IOMode.REMOTE_REPLICA, logical_name="lfn://big"),
        GnsRecord(machine="compute", path="/job/replica-local.dat",
                  mode=IOMode.LOCAL_REPLICA, logical_name="lfn://big",
                  local_path="/cache/big.dat"),
        GnsRecord(machine="*", path="/job/stream.dat", mode=IOMode.BUFFER,
                  buffer=BufferEndpoint(stream="six-dist", cache=True)),
    ])
    selector = ReplicaSelector(catalog, nws)

    def ctx(machine):
        return GridContext(
            machine=machine, gns=LocalGnsClient(ns), hosts=hosts,
            gridftp={"store1": fleet["ftp_addr"], "store2": fleet["ftp_addr"]},
            buffer_locator=lambda m: fleet["buffer_addr"],
            selector=selector, scratch_dir=tmp_path / "scratch",
        )

    tracer = obs.get_tracer()
    modes = []
    with tracer.span("workflow", workflow="six-dist"):
        with FileMultiplexer(ctx("compute")) as fm, \
                FileMultiplexer(ctx("store2")) as fm_remote:
            with obs.span("task", task="local"):
                f = fm.open("/job/local-scratch.dat", "w")
                modes.append(f.io_mode)
                f.write(b"L" * 100)
                f.close()
            with obs.span("task", task="copy"):
                f = fm.open("/job/copied-in.dat", "r")
                modes.append(f.io_mode)
                assert f.read() == b"S" * 4096
                f.close()
            with obs.span("task", task="remote"):
                f = fm.open("/job/remote-in.dat", "r")
                modes.append(f.io_mode)
                assert f.read(16) == b"S" * 16
                f.close()
            with obs.span("task", task="replica-remote"):
                f = fm.open("/job/replica-remote.dat", "r")
                modes.append(f.io_mode)
                assert f.read(8) == b"1" * 8
                f.close()
            with obs.span("task", task="replica-local"):
                f = fm.open("/job/replica-local.dat", "r")
                modes.append(f.io_mode)
                assert f.read(8) == b"1" * 8
                f.close()
            with obs.span("task", task="stream"):
                stream_ctx = obs.current_context()

                def produce():
                    with obs.attach(stream_ctx):
                        w = fm_remote.open("/job/stream.dat", "w")
                        w.write(b"stream-payload")
                        w.close()

                t = threading.Thread(target=produce)
                t.start()
                r = fm.open("/job/stream.dat", "r")
                modes.append(r.io_mode)
                assert r.read(14) == b"stream-payload"
                r.close()
                t.join(timeout=10)
    assert set(modes) == set(IOMode), "all six IO modes must be exercised"


class TestDistributedTrace:
    def test_six_modes_across_three_processes(self, fleet, tmp_path):
        _run_six_modes(fleet, tmp_path)
        # Safe to read while the children still run: a server span hits
        # its JSONL sink (line-flushed) before the reply frame leaves.
        merged, offsets = merge_traces([load_trace(p) for p in fleet["traces"]])
        spans = [r for r in merged if r.get("type") == "span" and r.get("end")]
        by_id = {s["span"]: s for s in spans}

        procs = {s["proc"] for s in spans}
        assert {"driver", "ftp-1", "buffer-1"} <= procs

        workflow = next(s for s in spans if s["name"] == "workflow")
        servers = [s for s in spans if s["name"] == "rpc.server"]
        assert servers, "no remote spans reached the children's sinks"
        # EVERY remote RPC span parents under its (cross-process) caller
        # and stays inside the one workflow trace.
        for s in servers:
            caller = by_id.get(s["parent"])
            assert caller is not None, f"orphan rpc.server span {s}"
            assert caller["name"] == "rpc.client"
            assert caller["proc"] == "driver" and s["proc"] != "driver"
            assert s["trace"] == caller["trace"] == workflow["trace"]
        # Both layers answered: GridFTP ops and Grid Buffer (gb.*) ops.
        server_procs = {s["proc"] for s in servers}
        assert {"ftp-1", "buffer-1"} <= server_procs
        assert any(
            str((s.get("attrs") or {}).get("op", "")).startswith("gb.")
            for s in servers
        )

        # Clock alignment really happened and produced a physically
        # plausible timeline.  Per-pair offsets deviate from the median
        # by scheduling jitter, so allow a few ms of slop per side.
        assert offsets["driver"] == 0.0
        slop = 0.005
        for s in servers:
            caller = by_id[s["parent"]]
            assert caller["start"] - slop <= s["start"], (
                "clock alignment left a server span before its caller"
            )
            assert s["end"] <= caller["end"] + slop, (
                "clock alignment left a server span after its caller"
            )

        result = critical_path(merged)
        assert result["makespan"] > 0
        assert result["coverage"] >= 0.95, result
        assert result["categories"]["buffer-wait"] > 0

    def test_merged_report_cli_renders(self, fleet, tmp_path, capsys):
        from repro.obs.report import main

        _run_six_modes(fleet, tmp_path)
        args = [str(p) for p in fleet["traces"]] + ["--critical-path"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Clock alignment" in out
        assert "Critical-path breakdown" in out
        assert "attributed:" in out
