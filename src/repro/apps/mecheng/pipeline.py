"""The durability pipeline (paper Figure 5) and Table 2 experiments.

Five stages — CHAMMY → PAFEC → MAKE_SF_FILES → FAST → OBJECTIVE —
connected by the JOB.* files.  Two parameterisations:

* :func:`durability_workflow` — real, runnable stage functions at a
  laptop-friendly problem size (used by examples/tests and the real
  runner).
* :func:`durability_sim_workflow` — the calibrated work/byte
  annotations reproducing the paper's Table 2 timings on the simulated
  testbed (CPU work in brecca-seconds, fitted so the all-on-jagan
  sequential run matches the paper's 99:17).

Table 2's three experiments are encoded in :data:`TABLE2_EXPERIMENTS`.
"""

from __future__ import annotations

from typing import Dict

from ...workflow.scheduler import Coupling, ExecutionPlan, plan_workflow
from ...workflow.spec import FileUse, Stage, Workflow
from .chammy import run_chammy
from .fast import run_fast
from .make_sf import run_make_sf
from .objective import run_objective
from .pafec import run_pafec

__all__ = [
    "durability_workflow",
    "durability_sim_workflow",
    "TABLE2_EXPERIMENTS",
    "table2_plan",
    "FIG5_FILES",
]

MB = 1024 * 1024

#: The file graph of Figure 5 (condensed to the pipeline-relevant files).
FIG5_FILES = {
    "PROFILE_COORD.DAT": ("CHAMMY", "PAFEC"),
    "JOB.O02": ("PAFEC", "MAKE_SF_FILES"),
    "JOB.O04": ("PAFEC", "MAKE_SF_FILES"),
    "JOB.SF": ("MAKE_SF_FILES", "FAST"),
    "JOB.TH": ("MAKE_SF_FILES", "FAST"),
    "JOB.LIFE": ("FAST", "OBJECTIVE"),
}

# Calibrated stage works (brecca-seconds) and data volumes.  Fitted so
# experiment 1 (all on jagan, sequential local files) totals ~99:17 and
# experiment 3's distributed run totals ~55:11 (PAFEC on jagan
# dominates, exactly as the paper's assignment implies).
_SIM_WORK = {
    "CHAMMY": 25.0,
    "PAFEC": 327.0,
    "MAKE_SF_FILES": 45.0,
    "FAST": 183.0,
    "OBJECTIVE": 20.0,
}
_SIM_BYTES = {
    "PROFILE_COORD.DAT": 1 * MB,
    "JOB.O02": 16 * MB,
    "JOB.O04": 4 * MB,
    "JOB.SF": 8 * MB,
    "JOB.TH": 2 * MB,
    "JOB.LIFE": 5 * MB,
    "RESULT.DAT": 4096,
}
_SIM_CHUNKS = 60


def durability_workflow() -> Workflow:
    """The real, runnable durability pipeline (small problem size)."""
    return Workflow(
        "durability",
        [
            Stage(
                "CHAMMY",
                writes=(FileUse("PROFILE_COORD.DAT"),),
                func=run_chammy,
            ),
            Stage(
                "PAFEC",
                reads=(FileUse("PROFILE_COORD.DAT"),),
                writes=(FileUse("JOB.O02"), FileUse("JOB.O04"), FileUse("JOB.O07")),
                func=run_pafec,
            ),
            Stage(
                "MAKE_SF_FILES",
                reads=(FileUse("JOB.O02"), FileUse("JOB.O04")),
                writes=(FileUse("JOB.SF"), FileUse("JOB.TH")),
                func=run_make_sf,
            ),
            Stage(
                "FAST",
                reads=(FileUse("JOB.SF"),),
                writes=(FileUse("JOB.LIFE"), FileUse("JOB.GROWTH")),
                func=run_fast,
            ),
            Stage(
                "OBJECTIVE",
                reads=(FileUse("JOB.LIFE"),),
                writes=(FileUse("RESULT.DAT"),),
                func=run_objective,
            ),
        ],
    )


def durability_sim_workflow() -> Workflow:
    """Timing-annotated pipeline for the Table 2 simulation."""
    b = _SIM_BYTES
    return Workflow(
        "durability-sim",
        [
            Stage(
                "CHAMMY",
                writes=(FileUse("PROFILE_COORD.DAT", b["PROFILE_COORD.DAT"]),),
                work=_SIM_WORK["CHAMMY"],
                chunks=_SIM_CHUNKS,
            ),
            Stage(
                "PAFEC",
                reads=(FileUse("PROFILE_COORD.DAT", b["PROFILE_COORD.DAT"]),),
                writes=(FileUse("JOB.O02", b["JOB.O02"]), FileUse("JOB.O04", b["JOB.O04"])),
                work=_SIM_WORK["PAFEC"],
                chunks=_SIM_CHUNKS,
            ),
            Stage(
                "MAKE_SF_FILES",
                reads=(FileUse("JOB.O02", b["JOB.O02"]), FileUse("JOB.O04", b["JOB.O04"])),
                writes=(FileUse("JOB.SF", b["JOB.SF"]), FileUse("JOB.TH", b["JOB.TH"])),
                work=_SIM_WORK["MAKE_SF_FILES"],
                chunks=_SIM_CHUNKS,
            ),
            Stage(
                "FAST",
                reads=(FileUse("JOB.SF", b["JOB.SF"]), FileUse("JOB.TH", b["JOB.TH"])),
                writes=(FileUse("JOB.LIFE", b["JOB.LIFE"]),),
                work=_SIM_WORK["FAST"],
                chunks=_SIM_CHUNKS,
            ),
            Stage(
                "OBJECTIVE",
                reads=(FileUse("JOB.LIFE", b["JOB.LIFE"]),),
                writes=(FileUse("RESULT.DAT", b["RESULT.DAT"]),),
                work=_SIM_WORK["OBJECTIVE"],
                chunks=_SIM_CHUNKS,
            ),
        ],
    )


#: Table 2's experiments: placement + coupling + the paper's total (s).
TABLE2_EXPERIMENTS = {
    1: {
        "label": "All programs on jagan, local files",
        "placement": {s: "jagan" for s in _SIM_WORK},
        "mechanism": "local",
        "paper_total": 99 * 60 + 17,
    },
    2: {
        "label": "All programs on jagan, GridFiles (buffers)",
        "placement": {s: "jagan" for s in _SIM_WORK},
        "mechanism": "buffer",
        "paper_total": 89 * 60 + 17,
    },
    3: {
        "label": "Distributed: chammy@koume00, pafec@jagan, make_sf@dione, fast@vpac27, objective@freak",
        "placement": {
            "CHAMMY": "koume00",
            "PAFEC": "jagan",
            "MAKE_SF_FILES": "dione",
            "FAST": "vpac27",
            "OBJECTIVE": "freak",
        },
        "mechanism": "buffer",
        "paper_total": 55 * 60 + 11,
    },
}


def table2_plan(experiment: int) -> ExecutionPlan:
    """Build the ExecutionPlan for one of Table 2's three experiments."""
    try:
        exp = TABLE2_EXPERIMENTS[experiment]
    except KeyError:
        raise KeyError(f"Table 2 has experiments 1-3, not {experiment!r}") from None
    wf = durability_sim_workflow()
    mech: Coupling = exp["mechanism"]  # type: ignore[assignment]
    coupling: Dict[str, Coupling] = {f: mech for f in wf.pipeline_files()}
    return plan_workflow(wf, exp["placement"], coupling=coupling)
