"""Control-plane chaos suite: versioned GNS, watch, and live remap.

The data plane earned its ``-m "faults or peer or corrupt"`` suites;
this file does the same for the control plane.  It proves that

* the versioned store gives watchers an exactly-once view of the
  change log across compaction and **server death mid-watch** (clients
  resume from their last revision — nothing missed, nothing doubled);
* ``gns.txn`` is atomic and exactly-once under injected connection
  faults (the remove+add replace window is gone);
* per-namespace bearer tokens isolate tenants, while old peers skew
  silently into the default namespace;
* old client + new server and new client + old server both stay
  correct (watch degrades to resolve-at-open);
* a running six-IO-mode workflow whose records are edited mid-run
  live-migrates every affected stream COPY↔BUFFER with byte-identical
  output, under GNS-server death and wire corruption.

Select with ``-m gns`` (wired into the CI chaos job).
"""

import random
import threading
import time

import pytest

from repro import faults, obs
from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.core.replica import ReplicaSelector
from repro.faults import FaultRule
from repro.gns import (
    BufferEndpoint,
    GnsAuthError,
    GnsClient,
    GnsRecord,
    GnsServer,
    GnsWatchUnsupported,
    IOMode,
    LocalGnsClient,
    NameService,
    RecordStore,
)
from repro.grid.replica_catalog import Replica, ReplicaCatalog
from repro.gridbuffer.server import GridBufferServer
from repro.transport.gridftp import GridFtpServer
from repro.transport.inmem import HostRegistry
from repro.transport.tcp import IDEMPOTENT_OPS, RpcClient, RpcError, ThreadedRpcServer

pytestmark = pytest.mark.gns

SEED = 20260806


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no injector armed."""
    faults.disarm()
    yield
    faults.disarm()


def _counter(name, labels=None):
    if labels is not None:
        return obs.value(name, labels) or 0.0
    family = obs.snapshot().get(name)
    if not family:
        return 0.0
    total = 0.0
    for series in family["series"]:
        value = series["value"]
        total += value["count"] if isinstance(value, dict) else value
    return total


def _rec(machine="m1", path="/a", tag=0):
    """A small distinguishable record; ``tag`` varies local_path."""
    return GnsRecord(
        machine=machine, path=path, mode=IOMode.LOCAL, local_path=f"/real/{tag}"
    )


# ---------------------------------------------------------------------------
# The versioned store
# ---------------------------------------------------------------------------
class TestVersionedStore:
    def test_revisions_are_monotonic_and_per_namespace(self):
        store = RecordStore()
        assert store.revision() == 0
        assert store.txn([("add", _rec(tag=1))]) == 1
        assert store.txn([("add", _rec(path="/b", tag=2))]) == 2
        assert store.txn([("add", _rec(tag=3))], ns="other") == 1
        assert store.revision() == 2
        assert store.revision("other") == 1

    def test_txn_is_atomic_replace(self):
        store = RecordStore()
        store.txn([("add", _rec(tag=1))])
        rev = store.txn([("remove", "m1", "/a"), ("add", _rec(tag=2))])
        assert rev == 3  # two operations, two revisions, one commit
        assert [r.local_path for r in store.records()] == ["/real/2"]

    def test_malformed_txn_rejected_whole(self):
        store = RecordStore()
        with pytest.raises(ValueError):
            store.txn([("add", _rec(tag=1)), ("bogus",)])
        assert store.records() == []
        assert store.revision() == 0

    def test_changes_since_replays_the_log(self):
        store = RecordStore()
        store.txn([("add", _rec(tag=1))])
        store.txn([("remove", "m1", "/a"), ("add", _rec(tag=2))])
        events, revision, reset = store.changes_since("default", 0)
        assert not reset
        assert revision == 3
        assert [e["revision"] for e in events] == [1, 2, 3]
        assert [e["action"] for e in events] == ["add", "remove", "add"]

    def test_compaction_resets_stale_watchers_only(self):
        store = RecordStore()
        store.txn([("add", _rec(tag=1))])
        store.txn([("add", _rec(path="/b", tag=2))])
        floor = store.compact()
        assert floor == 2
        # A stale watcher gets the full current set as a reset.
        events, revision, reset = store.changes_since("default", 0)
        assert reset and revision == 2
        assert [e["action"] for e in events] == ["add", "add"]
        # A current watcher replays nothing.
        events, revision, reset = store.changes_since("default", 2)
        assert not reset and events == []
        # Changes after the floor replay incrementally again.
        store.txn([("remove", "m1", "/a")])
        events, revision, reset = store.changes_since("default", 2)
        assert not reset and [e["action"] for e in events] == ["remove"]

    def test_txn_dedupe_token_returns_original_revision(self):
        store = RecordStore()
        rev1 = store.txn([("add", _rec(tag=1))], token="txn-1")
        rev2 = store.txn([("add", _rec(tag=1))], token="txn-1")  # replay
        assert rev1 == rev2 == 1
        assert len(store.records()) == 1

    def test_file_backed_store_survives_reopen(self, tmp_path):
        db = str(tmp_path / "gns.db")
        store = RecordStore(db)
        store.txn([("add", _rec(tag=1)), ("add", _rec(path="/b", tag=2))])
        store.compact()
        store.txn([("remove", "m1", "/a"), ("add", _rec(tag=3))], ns="default")
        store.set_token("tenant", "s3cret")
        before = [r.local_path for r in store.records()]
        revision = store.revision()
        store.close()

        reopened = RecordStore(db)
        assert [r.local_path for r in reopened.records()] == before
        assert reopened.revision() == revision
        with pytest.raises(GnsAuthError):
            reopened.check_token("tenant", "wrong")
        reopened.check_token("tenant", "s3cret")
        reopened.close()

    def test_empty_txn_is_a_noop(self):
        store = RecordStore()
        store.txn([("add", _rec(tag=1))])
        assert store.txn([]) == 1
        assert store.revision() == 1


# ---------------------------------------------------------------------------
# The remove/resolve race (regression)
# ---------------------------------------------------------------------------
class TestResolveRaceRegression:
    @pytest.mark.timeout(60)
    def test_atomic_replace_never_exposes_the_gap(self):
        """A txn that replaces a record must never resolve to neither.

        The legacy path (separate remove() then add()) had a window in
        which a concurrent resolve saw an empty candidate list and
        synthesized a LOCAL record.  With the replace expressed as one
        transaction, a resolver hammering the same (machine, path) must
        observe one of the two records at every instant.
        """
        svc = NameService()
        svc.add(_rec(tag=0))
        stop = threading.Event()
        errors = []

        def flipper():
            tag = 1
            while not stop.is_set():
                svc.txn([("remove", "m1", "/a"), ("add", _rec(tag=tag))])
                tag += 1

        def resolver():
            while not stop.is_set():
                record = svc.resolve("m1", "/a")
                if record.local_path is None:
                    errors.append("resolver saw the synthesized LOCAL gap record")
                    return

        threads = [threading.Thread(target=flipper, daemon=True)] + [
            threading.Thread(target=resolver, daemon=True) for _ in range(4)
        ]
        for t in threads:
            t.start()
        time.sleep(1.0)
        stop.set()
        for t in threads:
            t.join(timeout=5)
        assert errors == []


# ---------------------------------------------------------------------------
# Watch over TCP
# ---------------------------------------------------------------------------
@pytest.fixture()
def gns_server():
    service = NameService()
    with GnsServer(service) as server:
        yield server


class TestWatchOverTcp:
    def test_revision_probe(self, gns_server):
        with GnsClient(*gns_server.address) as client:
            assert client.revision() == 0
            client.txn([("add", _rec(tag=1))])
            assert client.revision() == 1

    @pytest.mark.timeout(30)
    def test_longpoll_wakes_on_commit(self, gns_server):
        with GnsClient(*gns_server.address) as client, GnsClient(
            *gns_server.address
        ) as writer:
            got = {}

            def watch():
                got["batch"] = client.watch(from_revision=0, timeout=10.0)

            t = threading.Thread(target=watch, daemon=True)
            t.start()
            time.sleep(0.2)
            t0 = time.monotonic()
            writer.txn([("add", _rec(tag=1))])
            t.join(timeout=5)
            assert not t.is_alive()
            # Push, not poll: the parked watch wakes well inside the
            # 10 s budget.
            assert time.monotonic() - t0 < 2.0
            batch = got["batch"]
            assert [e["revision"] for e in batch.events] == [1]
            assert batch.revision == 1 and not batch.reset

    def test_empty_budget_expiry_returns_current_revision(self, gns_server):
        with GnsClient(*gns_server.address) as client:
            batch = client.watch(from_revision=0, timeout=0.05)
            assert batch.events == [] and batch.revision == 0

    def test_stale_watcher_gets_reset_after_compaction(self, gns_server):
        with GnsClient(*gns_server.address) as client:
            client.txn([("add", _rec(tag=1)), ("add", _rec(path="/b", tag=2))])
            gns_server.service.compact()
            batch = client.watch(from_revision=0, timeout=1.0)
            assert batch.reset
            assert [e["action"] for e in batch.events] == ["add", "add"]
            assert batch.revision == 2

    def test_watch_is_in_the_idempotency_table(self):
        assert "gns.watch" in IDEMPOTENT_OPS
        assert "gns.txn" not in IDEMPOTENT_OPS  # retryable only via dedupe token


# ---------------------------------------------------------------------------
# Chaos over the watch/txn path
# ---------------------------------------------------------------------------
class _EventCollector:
    """Client-side watcher loop: applies batches, records revisions."""

    def __init__(self, client, stop_at):
        self.client = client
        self.stop_at = stop_at  # final revision to stop after
        self.revisions = []
        self.errors = []
        self.revision = 0

    def run(self):
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                batch = self.client.watch(from_revision=self.revision, timeout=1.0)
            except (OSError, RpcError):
                # Server dead / injected fault: resume from the same
                # revision after a beat.  The store replays anything
                # missed, so the revision stream must stay gapless.
                time.sleep(0.05)
                continue
            if batch.reset:
                self.errors.append("unexpected reset (no compaction ran)")
                return
            for event in batch.events:
                self.revisions.append(event["revision"])
            self.revision = batch.revision
            if self.revision >= self.stop_at:
                return
        self.errors.append(f"timed out at revision {self.revision}/{self.stop_at}")


class TestWatchChaos:
    @pytest.mark.timeout(90)
    def test_server_death_mid_watch_resumes_without_gaps_or_dups(self):
        """Kill the GNS mid-watch; the client's event stream stays exact."""
        service = NameService()
        server = GnsServer(service).start()
        try:
            client = GnsClient(*server.address)
            writer = GnsClient(*server.address)
            total = 30
            collector = _EventCollector(client, stop_at=total)
            t = threading.Thread(target=collector.run, daemon=True)
            t.start()
            for i in range(total):
                writer.txn([("add", _rec(path=f"/p{i}", tag=i))], token=f"t{i}")
                if i in (10, 20):
                    server.restart()  # crash + rebind with parked watchers
                time.sleep(0.01)
            t.join(timeout=30)
            assert not t.is_alive()
            assert collector.errors == []
            # Exactly-once: every revision seen once, in order.
            assert collector.revisions == list(range(1, total + 1))
            client.close()
            writer.close()
        finally:
            server.stop()

    @pytest.mark.timeout(90)
    def test_watch_survives_injected_error_close_delay_corrupt(self):
        service = NameService()
        server = GnsServer(service).start()
        try:
            client = GnsClient(*server.address)
            writer = GnsClient(*server.address)
            total = 12
            rules = [
                FaultRule(layer="rpc.server", op="gns.watch", action="error", nth=2, times=1),
                FaultRule(layer="rpc.client", op="gns.watch", action="close", nth=5, times=1),
                FaultRule(layer="rpc.server", op="gns.watch", action="delay", nth=7, delay=0.05),
                FaultRule(layer="rpc.server", op="gns.watch", action="corrupt", nth=9, times=1),
            ]
            with faults.injected(*rules, seed=SEED) as injector:
                collector = _EventCollector(client, stop_at=total)
                t = threading.Thread(target=collector.run, daemon=True)
                t.start()
                for i in range(total):
                    writer.txn([("add", _rec(path=f"/w{i}", tag=i))], token=f"w{i}")
                    time.sleep(0.05)
                t.join(timeout=30)
                assert not t.is_alive()
                assert collector.errors == []
                assert collector.revisions == list(range(1, total + 1))
                fired_actions = {action for _, op, _, action in injector.fired if op == "gns.watch"}
                assert {"error", "delay"} <= fired_actions
            client.close()
            writer.close()
        finally:
            server.stop()

    @pytest.mark.timeout(60)
    def test_txn_through_injected_close_lands_exactly_once(self):
        service = NameService()
        server = GnsServer(service).start()
        try:
            client = GnsClient(*server.address)
            with faults.injected(
                FaultRule(layer="rpc.client", op="gns.txn", action="close", nth=1, times=1),
                seed=SEED,
            ):
                revision = client.txn([("add", _rec(tag=1))])
            assert revision == 1
            # The retry replayed the same dedupe token: one record, one
            # revision — not two.
            assert service.revision() == 1
            assert len(service.records()) == 1
            client.close()
        finally:
            server.stop()


# ---------------------------------------------------------------------------
# Tenancy
# ---------------------------------------------------------------------------
class TestTenancy:
    def test_wrong_token_is_rejected_on_mutate_and_watch(self, gns_server):
        gns_server.service.set_token("tenant-a", "secret-a")
        bad = GnsClient(*gns_server.address, namespace="tenant-a", token="wrong")
        for call in (
            lambda: bad.txn([("add", _rec(tag=1))]),
            lambda: bad.watch(from_revision=0, timeout=0.1),
            lambda: bad.add(_rec(tag=1)),
            lambda: bad.remove("m1", "/a"),
            lambda: bad.list_records(),
        ):
            with pytest.raises(RpcError) as excinfo:
                call()
            assert excinfo.value.kind == "auth"
        bad.close()

    def test_tenants_never_see_each_other(self, gns_server):
        gns_server.service.set_token("tenant-a", "secret-a")
        gns_server.service.set_token("tenant-b", "secret-b")
        a = GnsClient(*gns_server.address, namespace="tenant-a", token="secret-a")
        b = GnsClient(*gns_server.address, namespace="tenant-b", token="secret-b")
        a.txn([("add", _rec(path="/a-only", tag=1))])
        b.txn([("add", _rec(path="/b-only", tag=2))])
        assert [r.path for r in a.list_records()] == ["/a-only"]
        assert [r.path for r in b.list_records()] == ["/b-only"]
        # Watch events are namespace-scoped: b commits must not wake a
        # with events.
        batch = a.watch(from_revision=1, timeout=0.2)
        assert batch.events == []
        b.txn([("add", _rec(path="/b-2", tag=3))])
        batch = a.watch(from_revision=1, timeout=0.2)
        assert batch.events == []
        # And a's resolve never leaks b's records.
        assert a.resolve("m1", "/b-only").mode is IOMode.LOCAL  # synthesized
        a.close()
        b.close()

    def test_local_client_honors_tokens_too(self):
        service = NameService()
        service.set_token("tenant", "s3cret")
        good = LocalGnsClient(service, namespace="tenant", token="s3cret")
        good.add(_rec(tag=1))
        with pytest.raises(GnsAuthError):
            LocalGnsClient(service, namespace="tenant", token="nope").list_records()
        assert len(good.list_records()) == 1


# ---------------------------------------------------------------------------
# Version skew
# ---------------------------------------------------------------------------
def _legacy_gns_server(service):
    """A pre-control-plane GNS front end: JSON framing, legacy ops only."""
    server = ThreadedRpcServer("127.0.0.1", 0)

    def op_resolve(header, _payload):
        record = service.resolve(header["machine"], header["path"])
        return {"record": record.to_dict()}, b""

    def op_add(header, _payload):
        service.add(GnsRecord.from_dict(header["record"]))
        return {}, b""

    def op_remove(header, _payload):
        return {"removed": service.remove(header["machine"], header["path"])}, b""

    def op_list(header, _payload):
        return {"records": [r.to_dict() for r in service.records()]}, b""

    server.register("gns.resolve", op_resolve)
    server.register("gns.add", op_add)
    server.register("gns.remove", op_remove)
    server.register("gns.list", op_list)
    return server


class TestVersionSkew:
    def test_new_client_old_server_degrades_watch(self):
        service = NameService()
        with _legacy_gns_server(service) as server:
            client = GnsClient(*server.address)
            client.add(_rec(tag=1))
            assert client.resolve("m1", "/a").local_path == "/real/1"
            with pytest.raises(GnsWatchUnsupported):
                client.watch(from_revision=0, timeout=0.1)
            with pytest.raises(GnsWatchUnsupported):
                client.txn([("add", _rec(tag=2))])
            client.close()

    @pytest.mark.timeout(60)
    def test_fm_live_remap_degrades_silently_against_old_server(self, tmp_path):
        """live_remap=True against an old GNS: reads work, watcher exits."""
        hosts = HostRegistry(tmp_path / "hosts")
        hosts.add_host("alpha")
        target = hosts.host("alpha").resolve("/data/f.bin")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(b"old-server-payload")
        service = NameService()
        with _legacy_gns_server(service) as server:
            client = GnsClient(*server.address)
            ctx = GridContext(
                machine="alpha",
                gns=client,
                hosts=hosts,
                live_remap=True,
                watch_budget=0.2,
            )
            with FileMultiplexer(ctx) as fm:
                f = fm.open("/data/f.bin", "rb")
                assert f.read() == b"old-server-payload"
                f.close()
                # The watcher thread noticed the unsupported op and
                # exited cleanly rather than spinning.
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    thread = fm._watch_thread
                    if thread is None or not thread.is_alive():
                        break
                    time.sleep(0.05)
                assert fm._watch_thread is None or not fm._watch_thread.is_alive()
            client.close()

    def test_old_client_new_server_lands_in_default_namespace(self, gns_server):
        # An old client is just an RpcClient that never sends ns/auth.
        old = RpcClient(*gns_server.address)
        old.call("gns.add", {"record": _rec(tag=7).to_dict()})
        reply, _ = old.call("gns.resolve", {"machine": "m1", "path": "/a"})
        assert reply["record"]["local_path"] == "/real/7"
        assert [r.local_path for r in gns_server.service.records()] == ["/real/7"]
        old.close()

    def test_control_plane_ops_work_over_json_and_binary(self, gns_server):
        # Binary framing (negotiated) and legacy JSON framing must
        # carry the new ops identically.
        binary = GnsClient(*gns_server.address)
        binary.txn([("add", _rec(path="/bin", tag=1))])
        assert binary.watch(from_revision=0, timeout=0.5).revision == 1
        json_rpc = RpcClient(*gns_server.address, wire="json")
        reply, _ = json_rpc.call(
            "gns.txn",
            {"ops": [{"action": "add", "record": _rec(path="/json", tag=2).to_dict()}],
             "token": "json-txn"},
        )
        assert int(reply["revision"]) == 2
        reply, _ = json_rpc.call("gns.watch", {"from_revision": 1, "timeout": 0.5})
        assert [e["revision"] for e in reply["events"]] == [2]
        binary.close()
        json_rpc.close()


# ---------------------------------------------------------------------------
# The six-mode live-migration run
# ---------------------------------------------------------------------------
@pytest.fixture()
def migration_world(tmp_path):
    """Six-IO-mode world whose GNS is a real TCP server (killable)."""
    hosts = HostRegistry(tmp_path / "hosts")
    for name in ("compute", "store"):
        hosts.add_host(name)
    rng = random.Random(SEED)
    payloads = {
        "local": bytes(rng.randbytes(32 * 1024)),
        "copy": bytes(rng.randbytes(96 * 1024)),
        "remote": bytes(rng.randbytes(64 * 1024)),
        "replica": bytes(rng.randbytes(64 * 1024)),
        "buffer": bytes(rng.randbytes(96 * 1024)),
    }
    # Every migratable path has byte-identical content in all of its
    # bindings: a file on the store host AND a cached GB stream.
    for name in ("copy", "remote", "buffer"):
        p = hosts.host("store").resolve(f"/src/{name}.bin")
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_bytes(payloads[name])
    local = hosts.host("compute").resolve("/job/local.dat")
    local.parent.mkdir(parents=True, exist_ok=True)
    local.write_bytes(payloads["local"])
    for host in ("compute", "store"):
        p = hosts.host(host).resolve("/replicas/big.dat")
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_bytes(payloads["replica"])

    ftp = {n: GridFtpServer(hosts.host(n).root).start() for n in ("compute", "store")}
    buffer_server = GridBufferServer(cache_dir=tmp_path / "cache").start()

    # Seed the streams the migrations land on (writers close first:
    # cached streams replay from offset 0 for late readers).
    from repro.core.buffer_client import GridBufferClientPool

    pool = GridBufferClientPool("store")
    for name in ("copy", "buffer"):
        endpoint = BufferEndpoint(stream=f"mig:{name}", n_readers=4, cache=True)
        w = pool.open_writer(endpoint, buffer_server.address)
        w.write(payloads[name])
        w.close()
    pool.close()

    catalog = ReplicaCatalog()
    for host in ("compute", "store"):
        catalog.register(
            "lfn://big", Replica(host, "/replicas/big.dat", size=len(payloads["replica"]))
        )
    selector = ReplicaSelector(catalog, static_cost=lambda s, d: 1.0)

    service = NameService(locate_buffer_server=lambda m: buffer_server.address)
    gns_server = GnsServer(service).start()

    def buffer_record(path, stream):
        return GnsRecord(
            machine="compute", path=path, mode=IOMode.BUFFER,
            buffer=BufferEndpoint(
                stream=stream, host=buffer_server.address[0],
                port=buffer_server.address[1], n_readers=4, cache=True,
            ),
        )

    service.txn(
        [
            ("add", GnsRecord(
                machine="compute", path="/job/copied.dat", mode=IOMode.COPY,
                remote_host="store", remote_path="/src/copy.bin",
            )),
            ("add", GnsRecord(
                machine="compute", path="/job/remote.dat", mode=IOMode.REMOTE,
                remote_host="store", remote_path="/src/remote.bin",
            )),
            ("add", GnsRecord(
                machine="compute", path="/job/replica-remote.dat",
                mode=IOMode.REMOTE_REPLICA, logical_name="lfn://big",
            )),
            ("add", GnsRecord(
                machine="compute", path="/job/replica-local.dat",
                mode=IOMode.LOCAL_REPLICA, logical_name="lfn://big",
                local_path="/cache/big.dat",
            )),
            ("add", buffer_record("/job/stream.dat", "mig:buffer")),
        ]
    )

    client = GnsClient(*gns_server.address)
    ctx = GridContext(
        machine="compute",
        gns=client,
        hosts=hosts,
        gridftp={n: s.address for n, s in ftp.items()},
        buffer_locator=lambda m: buffer_server.address,
        selector=selector,
        scratch_dir=tmp_path / "scratch",
        io_timeout=30.0,
        prefetch=False,
        live_remap=True,
        watch_budget=0.5,
    )
    fm = FileMultiplexer(ctx)
    world = {
        "fm": fm,
        "service": service,
        "gns_server": gns_server,
        "client": client,
        "payloads": payloads,
        "buffer_record": buffer_record,
        "buffer_server": buffer_server,
    }
    yield world
    fm.close()
    client.close()
    gns_server.stop()
    for s in ftp.values():
        s.stop()
    buffer_server.stop()


class TestSixModeLiveMigration:
    @pytest.mark.timeout(120)
    def test_live_migration_copy_buffer_both_ways_under_chaos(self, migration_world):
        """Edit GNS records mid-run: every affected stream migrates
        COPY↔BUFFER at a block boundary with byte-identical output —
        under GNS-server death and injected wire corruption."""
        fm = migration_world["fm"]
        service = migration_world["service"]
        payloads = migration_world["payloads"]
        live_before = _counter("fm_live_remaps_total")

        rules = [
            # Chaos on the control plane...
            FaultRule(layer="rpc.server", op="gns.watch", action="error", nth=3, times=1),
            FaultRule(layer="rpc.server", op="gns.watch", action="delay", nth=5, delay=0.05),
            # ...and bit flips on the data plane while streams migrate.
            FaultRule(layer="rpc.client", op="gb.read*", action="corrupt", nth=2, times=1),
            FaultRule(layer="rpc.client", op="get_block", action="corrupt", nth=3, times=1),
        ]
        with faults.injected(*rules, seed=SEED) as injector:
            handles = {
                "local": fm.open("/job/local.dat", "rb"),
                "copy": fm.open("/job/copied.dat", "rb"),
                "remote": fm.open("/job/remote.dat", "rb"),
                "replica-remote": fm.open("/job/replica-remote.dat", "rb"),
                "replica-local": fm.open("/job/replica-local.dat", "rb"),
                "buffer": fm.open("/job/stream.dat", "rb"),
            }
            modes_used = {h.io_mode for h in handles.values()}
            assert modes_used == set(IOMode), "all six IO modes must be open"

            got = {name: bytearray() for name in handles}
            expected = {
                "local": payloads["local"],
                "copy": payloads["copy"],
                "remote": payloads["remote"],
                "replica-remote": payloads["replica"],
                "replica-local": payloads["replica"],
                "buffer": payloads["buffer"],
            }
            # Read the first half of every stream.
            for name, handle in handles.items():
                half = len(expected[name]) // 2
                while len(got[name]) < half:
                    chunk = handle.read(8 * 1024)
                    if not chunk:
                        break
                    got[name] += chunk

            # Re-wire mid-run, one atomic txn: COPY→BUFFER and
            # BUFFER→COPY for every affected stream.
            service.txn(
                [
                    ("remove", "compute", "/job/copied.dat"),
                    ("add", migration_world["buffer_record"]("/job/copied.dat", "mig:copy")),
                    ("remove", "compute", "/job/stream.dat"),
                    ("add", GnsRecord(
                        machine="compute", path="/job/stream.dat", mode=IOMode.COPY,
                        remote_host="store", remote_path="/src/buffer.bin",
                    )),
                ]
            )
            # ... and kill the GNS while the watcher is parked on it.
            migration_world["gns_server"].restart()

            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                pending = [
                    h for h in (handles["copy"], handles["buffer"])
                    if h._pending_record is None and h.stats.remaps == 0
                ]
                if not pending:
                    break
                time.sleep(0.1)

            # Drain everything; the migrations apply at read boundaries.
            for name, handle in handles.items():
                while True:
                    chunk = handle.read(8 * 1024)
                    if not chunk:
                        break
                    got[name] += chunk
                handle.close()

            for name in handles:
                assert bytes(got[name]) == expected[name], f"{name} bytes differ"

            # Both directions actually migrated.
            assert handles["copy"].record.mode is IOMode.BUFFER
            assert handles["buffer"].record.mode is IOMode.COPY
            fired_ops = {op for _, op, _, _ in injector.fired}
            assert "gns.watch" in fired_ops

        assert _counter("fm_live_remaps_total") >= live_before + 2
        assert (obs.value("fm_live_remaps_total", {"from": "copy", "to": "buffer"}) or 0) >= 1
        assert (obs.value("fm_live_remaps_total", {"from": "buffer", "to": "copy"}) or 0) >= 1

    @pytest.mark.timeout(60)
    def test_remap_span_lands_in_critical_path_category(self, migration_world):
        from repro.obs.report import _CATEGORY_PRIORITY, _categorise

        assert "remap" in _CATEGORY_PRIORITY
        assert _categorise({"name": "remap", "attrs": {}}) == "remap"
        # A real migration emits the span: flip one record and read.
        fm = migration_world["fm"]
        service = migration_world["service"]
        spans = []
        handle = fm.open("/job/copied.dat", "rb")
        handle.read(4096)
        service.txn(
            [
                ("remove", "compute", "/job/copied.dat"),
                ("add", migration_world["buffer_record"]("/job/copied.dat", "mig:copy")),
            ]
        )
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and handle.stats.remaps == 0:
            handle.read(4096)
            time.sleep(0.05)
        assert handle.stats.remaps >= 1
        handle.close()
