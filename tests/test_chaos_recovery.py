"""End-to-end failure recovery under seeded fault injection.

The chaos run drives all six IO modes while the injector kills
connections at every layer, one replica host dies outright, and the
Grid Buffer front end restarts mid-stream — outputs must still be
byte-identical and the recovery work must be visible in ``repro.obs``.
"""

import random
import threading
import time

import pytest

from repro import faults, obs
from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.core.replica import NoReplicaError, ReplicaSelector
from repro.faults import FaultRule
from repro.gns.client import LocalGnsClient
from repro.gns.records import BufferEndpoint, GnsRecord, IOMode
from repro.gns.server import NameService
from repro.grid.replica_catalog import Replica, ReplicaCatalog
from repro.gridbuffer.client import GridBufferClient
from repro.gridbuffer.server import GridBufferServer
from repro.gridbuffer.service import GridBufferService
from repro.transport.gridftp import GridFtpClient, GridFtpServer, TransferError
from repro.transport.tcp import IDEMPOTENT_OPS, RetryPolicy
from repro.transport.inmem import HostRegistry

pytestmark = pytest.mark.faults

SEED = 20260806


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no injector armed."""
    faults.disarm()
    yield
    faults.disarm()


def _counter(name, labels=None):
    if labels is not None:
        return obs.value(name, labels) or 0.0
    # No labels: total the family across all label series.
    family = obs.snapshot().get(name)
    if not family:
        return 0.0
    total = 0.0
    for series in family["series"]:
        value = series["value"]
        total += value["count"] if isinstance(value, dict) else value
    return total


# ---------------------------------------------------------------------------
# Unit: retry backoff timing
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(retries=5, base=0.05, multiplier=2.0, max_delay=0.3, jitter=0.0)
        rng = random.Random(SEED)
        delays = [policy.backoff(attempt, rng) for attempt in range(1, 6)]
        assert delays[:3] == [0.05, 0.1, 0.2]
        assert delays[3] == delays[4] == 0.3  # capped

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base=0.1, multiplier=2.0, max_delay=10.0, jitter=0.25)
        rng = random.Random(SEED)
        for attempt in range(1, 5):
            base = min(10.0, 0.1 * 2.0 ** (attempt - 1))
            for _ in range(20):
                d = policy.backoff(attempt, rng)
                assert base <= d <= base * 1.25

    def test_idempotency_table_covers_reads_not_writes(self):
        assert "gb.read" in IDEMPOTENT_OPS
        assert "get_block" in IDEMPOTENT_OPS
        # bare gb.write is not blanket-retryable; it retries only when
        # the caller attaches a dedupe token (retryable=True per call).
        assert "gb.write" not in IDEMPOTENT_OPS
        assert "gb.write_multi" not in IDEMPOTENT_OPS


# ---------------------------------------------------------------------------
# Unit: write replay dedupe (the token/seq idempotency table)
# ---------------------------------------------------------------------------
class TestWriteDedupe:
    def test_replayed_write_is_skipped(self):
        svc = GridBufferService()
        svc.create_stream("s", n_readers=1)
        svc.register_reader("s", "r")
        svc.write("s", 0, b"abc", token="tok", seq=0)
        svc.write("s", 0, b"abc", token="tok", seq=0)  # retry replay
        svc.write("s", 3, b"def", token="tok", seq=1)
        svc.close_writer("s")
        assert svc.read("s", "r", 0, 64, timeout=1.0) == b"abcdef"
        assert svc.stats("s").bytes_written == 6  # replay not double-counted

    def test_replayed_write_multi_is_skipped(self):
        svc = GridBufferService()
        svc.create_stream("s", n_readers=1)
        svc.register_reader("s", "r")
        runs = [(0, b"ab"), (2, b"cd")]
        written, _ = svc.write_multi("s", runs, token="tok", seq=0)
        assert written == 4
        replay_written, _ = svc.write_multi("s", runs, token="tok", seq=0)
        svc.close_writer("s")
        assert svc.read("s", "r", 0, 64, timeout=1.0) == b"abcd"
        assert svc.stats("s").bytes_written == 4
        assert replay_written == 0 or replay_written == 4  # reply, not re-apply

    def test_retried_write_through_injected_close_lands_once(self, buffer_server):
        host, port = buffer_server.address
        client = GridBufferClient(host, port)
        client.create_stream("dedupe", n_readers=1)
        client.register_reader("dedupe", "r")
        # Kill the connection on the first write attempt; the retry must
        # not double-apply the block.
        with faults.injected(
            FaultRule(layer="rpc.client", op="gb.write", action="close", nth=1),
            seed=SEED,
        ):
            client.write("dedupe", 0, b"exactly-once")
        client.close_writer("dedupe")
        assert client.read("dedupe", "r", 0, 64, timeout=2.0) == b"exactly-once"
        assert client.stats("dedupe")["bytes_written"] == len(b"exactly-once")
        client.close()


# ---------------------------------------------------------------------------
# Unit: reader connection recovery + resume offset
# ---------------------------------------------------------------------------
class TestReaderResume:
    def test_reader_resumes_at_offset_after_connection_death(self, buffer_server):
        host, port = buffer_server.address
        writer_client = GridBufferClient(host, port)
        payload = bytes(random.Random(SEED).randbytes(64 * 1024))
        with writer_client.open_writer("resume-stream", n_readers=1) as w:
            w.write(payload)
        resumes_before = _counter(
            "buffer_reader_resumes_total", {"stream": "resume-stream"}
        )
        reader_client = GridBufferClient(host, port)
        reader = reader_client.open_reader(
            "resume-stream", reader_id="r1", read_ahead=False
        )
        got = reader.read(16 * 1024)
        # Exhaust every retry attempt (1 original + 3 retries) so the
        # failure reaches the reader's own recovery layer.
        with faults.injected(
            FaultRule(layer="rpc.client", op="gb.read", action="close", nth=1, times=4),
            seed=SEED,
        ):
            while len(got) < len(payload):
                chunk = reader.read(16 * 1024)
                if not chunk:
                    break
                got += chunk
        reader.close()
        assert got == payload  # resumed exactly at the pre-failure offset
        resumes_after = _counter(
            "buffer_reader_resumes_total", {"stream": "resume-stream"}
        )
        assert resumes_after > resumes_before
        writer_client.close()
        reader_client.close()


# ---------------------------------------------------------------------------
# Unit: gridftp transfer resume
# ---------------------------------------------------------------------------
class TestTransferResume:
    def test_fetch_resumes_from_reported_offset(self, tmp_path):
        root = tmp_path / "export"
        root.mkdir()
        payload = bytes(random.Random(SEED + 1).randbytes(300_000))
        (root / "big.bin").write_bytes(payload)
        with GridFtpServer(root) as server:
            client = GridFtpClient(*server.address, block_size=32 * 1024)
            dst = tmp_path / "out.bin"
            with faults.injected(
                FaultRule(layer="gridftp", op="get_block", action="error", nth=4),
                seed=SEED,
            ):
                with pytest.raises(TransferError) as excinfo:
                    client.fetch_file("big.bin", dst)
                copied = excinfo.value.copied
                assert 0 < copied < len(payload)
                moved = client.fetch_file("big.bin", dst, resume_from=copied)
            assert moved == len(payload) - copied
            assert dst.read_bytes() == payload
            client.close()


# ---------------------------------------------------------------------------
# Integration: stage crash aborts its streams; readers fail fast
# ---------------------------------------------------------------------------
class TestStageCrashAbort:
    @pytest.mark.timeout(60)
    def test_writer_crash_fails_reader_fast(self):
        from repro.workflow.runner import RealRunner
        from repro.workflow.scheduler import plan_workflow
        from repro.workflow.spec import FileUse, Stage, Workflow

        def producer(io):
            fh = io.open("feed.bin", "wb")
            fh.write(b"x" * 4096)
            fh.flush()
            raise RuntimeError("simulated stage crash")

        def consumer(io):
            with io.open("feed.bin", "rb") as fh:
                while fh.read(1024):
                    pass

        wf = Workflow(
            "chaos-abort",
            [
                Stage("produce", writes=(FileUse("feed.bin"),), func=producer),
                Stage("consume", reads=(FileUse("feed.bin"),), func=consumer),
            ],
        )
        plan = plan_workflow(
            wf, {"produce": "m1", "consume": "m2"}, coupling={"feed.bin": "buffer"}
        )
        runner = RealRunner(plan, stage_timeout=30.0)
        t0 = time.monotonic()
        result = runner.run()
        elapsed = time.monotonic() - t0
        runner.deployment.stop()
        assert "produce" in result.errors
        assert "consume" in result.errors  # saw StreamFailed, did not hang
        assert elapsed < 25.0, "reader must fail fast, not ride out its timeout"


# ---------------------------------------------------------------------------
# The chaos six-modes run
# ---------------------------------------------------------------------------
@pytest.fixture()
def chaos_world(tmp_path):
    hosts = HostRegistry(tmp_path / "hosts")
    for name in ("compute", "store1", "store2"):
        hosts.add_host(name)

    rng = random.Random(SEED)
    source = bytes(rng.randbytes(96 * 1024))
    replica_payload = bytes(rng.randbytes(640 * 1024))
    stream_payload = bytes(rng.randbytes(192 * 1024))

    # Non-replicated inputs live on store2: store1 is the host the
    # chaos run kills, so only failover-capable paths may depend on it.
    src = hosts.host("store2").resolve("/in/source.dat")
    src.parent.mkdir(parents=True, exist_ok=True)
    src.write_bytes(source)
    for host in ("store1", "store2"):  # replicas are byte-identical
        p = hosts.host(host).resolve("/replicas/big.dat")
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_bytes(replica_payload)

    servers = {
        name: GridFtpServer(hosts.host(name).root).start()
        for name in ("compute", "store1", "store2")
    }
    buffer_server = GridBufferServer(cache_dir=tmp_path / "cache").start()

    catalog = ReplicaCatalog()
    catalog.register("lfn://big", Replica("store1", "/replicas/big.dat", size=len(replica_payload)))
    catalog.register("lfn://big", Replica("store2", "/replicas/big.dat", size=len(replica_payload)))
    # Static costs prefer store1 — the host the chaos run kills.
    selector = ReplicaSelector(
        catalog, static_cost=lambda s, d: 1.0 if s == "store1" else 2.0
    )

    ns = NameService(locate_buffer_server=lambda m: buffer_server.address)
    ns.add_all(
        [
            GnsRecord(
                machine="compute", path="/job/remote-in.dat", mode=IOMode.REMOTE,
                remote_host="store2", remote_path="/in/source.dat",
            ),
            GnsRecord(
                machine="compute", path="/job/copied-in.dat", mode=IOMode.COPY,
                remote_host="store2", remote_path="/in/source.dat",
            ),
            GnsRecord(
                machine="compute", path="/job/replica-remote.dat",
                mode=IOMode.REMOTE_REPLICA, logical_name="lfn://big",
            ),
            GnsRecord(
                machine="compute", path="/job/replica-local.dat",
                mode=IOMode.LOCAL_REPLICA, logical_name="lfn://big",
                local_path="/cache/big.dat",
            ),
            GnsRecord(
                machine="*", path="/job/stream.dat", mode=IOMode.BUFFER,
                buffer=BufferEndpoint(stream="chaos-stream", cache=True),
            ),
            # A stream whose buffer endpoint is dead on arrival: the
            # fallback chain degrades it to COPY via store2.
            GnsRecord(
                machine="*", path="/job/degraded.dat", mode=IOMode.BUFFER,
                buffer=BufferEndpoint(stream="dead-stream", host="127.0.0.1", port=1),
                fallback=GnsRecord(
                    machine="*", path="/job/degraded.dat", mode=IOMode.COPY,
                    remote_host="store2", remote_path="/handoff/degraded.dat",
                ),
            ),
        ]
    )
    gns = LocalGnsClient(ns)

    def ctx(machine):
        return GridContext(
            machine=machine,
            gns=gns,
            hosts=hosts,
            gridftp={name: s.address for name, s in servers.items()},
            buffer_locator=lambda m: buffer_server.address,
            selector=selector,
            scratch_dir=tmp_path / "scratch",
            io_timeout=30.0,
            prefetch=False,  # deterministic per-op fault counting
        )

    fms = {name: FileMultiplexer(ctx(name)) for name in ("compute", "store2")}
    world = {
        "fms": fms,
        "hosts": hosts,
        "servers": servers,
        "buffer_server": buffer_server,
        "payloads": {
            "source": source,
            "replica": replica_payload,
            "stream": stream_payload,
        },
    }
    yield world
    for fm in fms.values():
        fm.close()
    for s in servers.values():
        s.stop()
    buffer_server.stop()


class TestChaosSixModes:
    @pytest.mark.timeout(120)
    def test_all_modes_survive_seeded_faults(self, chaos_world):
        fm = chaos_world["fms"]["compute"]
        fm_store2 = chaos_world["fms"]["store2"]
        payloads = chaos_world["payloads"]
        before = {
            "injected": _counter("fault_injected_total"),
            "retries": _counter("rpc_retries_total"),
            "failovers": _counter("replica_failovers_total"),
            "degraded": _counter("fm_mode_degraded_total"),
        }

        # Deterministic chaos across every layer: connection closes on
        # the client transport, an injected failure at the GridFTP layer
        # (lands in mode 4, whose handle fails over), and a service-side
        # delay in the Grid Buffer.  On top of the rules, store1 dies
        # outright after mode 4 and the GB front end restarts mid-stream.
        rules = [
            FaultRule(layer="rpc.client", op="get_block", action="close", nth=3),
            FaultRule(layer="rpc.client", op="gb.write*", action="close", nth=2),
            FaultRule(layer="rpc.client", op="gb.read*", action="close", nth=4),
            FaultRule(layer="gb.service", op="read", action="delay", nth=2, delay=0.02),
            FaultRule(layer="gridftp", op="get_block", peer="store1", action="error", nth=2),
        ]
        modes_used = []
        with faults.injected(*rules, seed=SEED) as injector:
            # 1. LOCAL
            f = fm.open("/job/local.dat", "w")
            modes_used.append(f.io_mode)
            f.write(payloads["source"][:1024])
            f.close()
            f = fm.open("/job/local.dat", "r")
            assert f.read() == payloads["source"][:1024]
            f.close()

            # 2. COPY (store2 -> compute) through dropped connections.
            f = fm.open("/job/copied-in.dat", "r")
            modes_used.append(f.io_mode)
            assert f.read() == payloads["source"]
            f.close()

            # 3. REMOTE proxy reads through dropped connections.
            f = fm.open("/job/remote-in.dat", "r")
            modes_used.append(f.io_mode)
            assert f.read() == payloads["source"]
            f.close()

            # 4. REMOTE_REPLICA: store1 (the preferred source) dies
            # mid-read; the handle must fail over and keep its offset.
            f = fm.open("/job/replica-remote.dat", "r")
            modes_used.append(f.io_mode)
            got = f.read(64 * 1024)
            chaos_world["servers"]["store1"].stop()
            chaos_world["servers"]["store1"].disconnect_all()
            while True:
                chunk = f.read(64 * 1024)
                if not chunk:
                    break
                got += chunk
            f.close()
            assert got == payloads["replica"]
            assert f.stats.failovers >= 1

            # 5. LOCAL_REPLICA: store1 is already dead, so the copy-in
            # must come from store2 (selection skips the dead source
            # after the first failed attempt).
            f = fm.open("/job/replica-local.dat", "r")
            modes_used.append(f.io_mode)
            assert f.read() == payloads["replica"]
            f.close()

            # 6. BUFFER: restart the Grid Buffer front end mid-stream.
            stream = payloads["stream"]
            wrote = threading.Event()

            def produce():
                w = fm_store2.open("/job/stream.dat", "w")
                half = len(stream) // 2
                w.write(stream[:half])
                w.flush()
                wrote.set()
                w.write(stream[half:])
                w.close()

            t = threading.Thread(target=produce, daemon=True)
            t.start()
            r = fm.open("/job/stream.dat", "r")
            modes_used.append(r.io_mode)
            got = r.read(32 * 1024)
            wrote.wait(timeout=10)
            chaos_world["buffer_server"].restart()
            while len(got) < len(stream):
                chunk = r.read(32 * 1024)
                if not chunk:
                    break
                got += chunk
            r.close()
            t.join(timeout=15)
            assert not t.is_alive(), "producer must survive the restart"
            assert got == stream

            # Degraded stream: BUFFER endpoint dead -> COPY fallback.
            w = fm_store2.open("/job/degraded.dat", "w")
            w.write(b"degraded-payload")
            w.close()
            f = fm.open("/job/degraded.dat", "r")
            assert f.read() == b"degraded-payload"
            assert f.stats.io_mode == IOMode.COPY.value
            assert f.stats.remaps >= 1
            f.close()

            fired_layers = {layer for layer, _, _, _ in injector.fired}
            assert {"rpc.client", "gb.service", "gridftp"} <= fired_layers

        assert set(modes_used) == set(IOMode), "all six IO modes must run"

        # Recovery work is visible in one obs snapshot.
        assert _counter("fault_injected_total") > before["injected"]
        assert _counter("rpc_retries_total") > before["retries"]
        assert _counter("replica_failovers_total") > before["failovers"]
        assert _counter("fm_mode_degraded_total") > before["degraded"]
        assert (
            obs.value("fm_mode_degraded_total", {"from_mode": "buffer", "to_mode": "copy"})
            or 0
        ) > 0


class TestExcludeSelection:
    def test_rank_skips_excluded_and_raises_when_exhausted(self):
        catalog = ReplicaCatalog()
        catalog.register("lfn://x", Replica("h1", "/a", size=10))
        catalog.register("lfn://x", Replica("h2", "/b", size=10))
        selector = ReplicaSelector(catalog, static_cost=lambda s, d: 1.0)
        ranked = selector.rank("lfn://x", "dst", exclude={("h1", "/a")})
        assert [c.replica.host for c in ranked] == ["h2"]
        with pytest.raises(NoReplicaError):
            selector.best("lfn://x", "dst", exclude={("h1", "/a"), ("h2", "/b")})
