#!/usr/bin/env python3
"""Quickstart: the File Multiplexer in five minutes.

Demonstrates the paper's core claim end to end:

1. a "legacy program" that only calls plain ``open()``;
2. run it with local files;
3. re-wire the same program to stream writer→reader through a Grid
   Buffer over TCP — by changing ONE GNS record, zero code changes.

Run:  python examples/quickstart.py
"""

import tempfile
import threading
from pathlib import Path

from repro.core import FileMultiplexer, GridContext, interposed
from repro.gns import BufferEndpoint, GnsRecord, IOMode, LocalGnsClient, NameService
from repro.gridbuffer import GridBufferServer
from repro.transport import HostRegistry


# --- the "legacy application": knows nothing about grids ---------------------

def legacy_writer():
    with open("/job/results.dat", "w") as fh:
        for i in range(10):
            fh.write(f"timestep {i}: value {i * i}\n")


def legacy_reader():
    with open("/job/results.dat") as fh:
        lines = fh.readlines()
    print(f"  reader consumed {len(lines)} records; last = {lines[-1].strip()!r}")


def main() -> None:
    base = Path(tempfile.mkdtemp(prefix="griddles-quickstart-"))

    # A tiny in-process "grid": two virtual hosts + one buffer server.
    hosts = HostRegistry(base / "hosts")
    hosts.add_host("machineA")
    hosts.add_host("machineB")
    buffer_server = GridBufferServer(cache_dir=base / "cache").start()

    gns = NameService(locate_buffer_server=lambda m: buffer_server.address)
    client = LocalGnsClient(gns)

    def fm_for(machine: str) -> FileMultiplexer:
        return FileMultiplexer(
            GridContext(
                machine=machine,
                gns=client,
                hosts=hosts,
                buffer_locator=lambda m: buffer_server.address,
            )
        )

    # ---- 1. plain local files --------------------------------------------
    print("run 1: local files on machineA")
    fm = fm_for("machineA")
    with interposed(fm, prefixes=("/job/",)):
        legacy_writer()
        legacy_reader()
    fm.close()

    # ---- 2. re-wire to a live stream: ONLY a GNS record changes ----------
    print("run 2: same code, writer on machineA streams to reader on machineB")
    gns.add(
        GnsRecord(
            machine="*",
            path="/job/results.dat",
            mode=IOMode.BUFFER,
            buffer=BufferEndpoint(stream="quickstart", cache=True),
        )
    )
    fm_a, fm_b = fm_for("machineA"), fm_for("machineB")

    # The writer's OPEN blocks until a reader announces (the GNS matcher
    # places the buffer at the reader end), so both sides must run
    # concurrently.  interposed() patches builtins process-globally, so
    # the writer thread uses its FM through an explicit FmOpen instead.
    from repro.core.interpose import FmOpen

    writer_open = FmOpen(fm_a, prefixes=("/job/",))

    def run_writer():
        with writer_open("/job/results.dat", "w") as fh:
            for i in range(10):
                fh.write(f"timestep {i}: value {i * i}\n")

    t = threading.Thread(target=run_writer)
    t.start()
    with interposed(fm_b, prefixes=("/job/",)):
        legacy_reader()
    t.join()

    stats = fm_b.open_history[-1]
    print(f"  reader's IO mode this time: {stats.io_mode} (was: local)")
    fm_a.close()
    fm_b.close()
    buffer_server.stop()
    print("done — identical program, two IO mechanisms.")


if __name__ == "__main__":
    main()
