"""ASCII / PGM rendering of the Figure 6 stress field.

No plotting libraries are available offline, so the stress distribution
is rendered two ways: an ASCII shade map for the terminal and a binary
PGM image (readable by any image viewer) for the record.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["rasterize_von_mises", "ascii_field", "write_pgm"]

_SHADES = " .:-=+*#%@"


def rasterize_von_mises(result, resolution: int = 80) -> np.ndarray:
    """Sample the element von Mises field onto a square raster.

    Points inside the hole (or outside the plate) are NaN.  Brute-force
    nearest-centroid sampling — fine at report resolutions.
    """
    mesh = result.mesh
    hw = mesh.half_width
    centroids = mesh.nodes[mesh.triangles].mean(axis=1)
    xs = np.linspace(-hw, hw, resolution)
    ys = np.linspace(-hw, hw, resolution)
    raster = np.full((resolution, resolution), np.nan)
    # Hole test: compare against the polygon radius at each angle.
    hole = mesh.nodes[: mesh.n_around]
    hole_theta = np.arctan2(hole[:, 1], hole[:, 0])
    order = np.argsort(hole_theta)
    hole_theta_s = hole_theta[order]
    hole_r_s = np.hypot(hole[order, 0], hole[order, 1])
    for j, y in enumerate(ys):
        for i, x in enumerate(xs):
            r = np.hypot(x, y)
            theta = np.arctan2(y, x)
            r_hole = np.interp(theta, hole_theta_s, hole_r_s, period=2 * np.pi)
            if r <= r_hole:
                continue  # inside the hole
            d2 = (centroids[:, 0] - x) ** 2 + (centroids[:, 1] - y) ** 2
            raster[j, i] = result.von_mises[int(np.argmin(d2))]
    return raster


def ascii_field(raster: np.ndarray) -> str:
    """Shade a raster with ASCII characters (NaN → space)."""
    finite = raster[np.isfinite(raster)]
    if finite.size == 0:
        return ""
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0
    lines = []
    for row in raster[::-1]:  # +y up
        chars = []
        for value in row:
            if not np.isfinite(value):
                chars.append(" ")
            else:
                idx = int((value - lo) / span * (len(_SHADES) - 1))
                chars.append(_SHADES[idx])
        lines.append("".join(chars))
    return "\n".join(lines)


def write_pgm(raster: np.ndarray, path: Path, invalid: int = 0) -> None:
    """Write the raster as an 8-bit binary PGM image."""
    finite = raster[np.isfinite(raster)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 1.0
    span = hi - lo if hi > lo else 1.0
    scaled = np.nan_to_num((raster - lo) / span * 254 + 1, nan=float(invalid))
    img = np.where(np.isfinite(raster), scaled, float(invalid)).astype(np.uint8)[::-1]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(f"P5\n{img.shape[1]} {img.shape[0]}\n255\n".encode())
        fh.write(img.tobytes())
