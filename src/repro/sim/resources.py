"""Shared-resource primitives for the simulation engine.

Provides the queuing building blocks the grid model needs:

* :class:`Resource` — counted resource with FIFO queuing (CPU slots, NIC
  channels).
* :class:`Store` — unbounded/bounded FIFO of Python objects (message
  queues between simulated processes).
* :class:`Container` — continuous quantity (disk space, credit pools).
* :class:`ProcessorSharing` — a processor-sharing CPU: *n* jobs on one
  core each progress at ``1/n`` of full speed.  This is what makes the
  paper's "all models concurrent on one machine" experiments (Table 4)
  behave correctly: two compute-bound stages on a single 2004-era CPU
  time-share it, yet IO waits overlap with the other job's compute.
"""

from __future__ import annotations

import math

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Resource", "Store", "Container", "ProcessorSharing"]


class Resource:
    """A counted FIFO resource.

    >>> env = Environment()
    >>> cpu = Resource(env, capacity=1)
    >>> def job(env, cpu, t, out):
    ...     req = cpu.request()
    ...     yield req
    ...     yield env.timeout(t)
    ...     cpu.release(req)
    ...     out.append(env.now)
    >>> out = []
    >>> _ = env.process(job(env, cpu, 2, out)); _ = env.process(job(env, cpu, 3, out))
    >>> env.run(); out
    [2.0, 5.0]
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        evt = self.env.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            evt.succeed(self)
        else:
            self._waiters.append(evt)
        return evt

    def release(self, request: Optional[Event] = None) -> None:
        if self.in_use <= 0:
            raise SimulationError("release without matching request")
        if self._waiters:
            nxt = self._waiters.popleft()
            nxt.succeed(self)
        else:
            self.in_use -= 1

    def cancel(self, request: Event) -> bool:
        """Remove a still-queued request; returns True if it was queued."""
        try:
            self._waiters.remove(request)
            return True
        except ValueError:
            return False

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Store:
    """FIFO store of arbitrary items with blocking get/put.

    ``capacity=None`` means unbounded (puts never block).
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        evt = self.env.event()
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            evt.succeed(None)
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            evt.succeed(None)
        else:
            self._putters.append((evt, item))
        return evt

    def get(self) -> Event:
        evt = self.env.event()
        if self.items:
            item = self.items.popleft()
            if self._putters:
                pevt, pitem = self._putters.popleft()
                self.items.append(pitem)
                pevt.succeed(None)
            evt.succeed(item)
        else:
            self._getters.append(evt)
        return evt

    def __len__(self) -> int:
        return len(self.items)


class Container:
    """A continuous quantity with blocking get (never negative)."""

    def __init__(self, env: Environment, init: float = 0.0, capacity: float = float("inf")):
        if init < 0 or init > capacity:
            raise ValueError("init outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.level = float(init)
        self._getters: Deque[tuple[Event, float]] = deque()
        self._putters: Deque[tuple[Event, float]] = deque()

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        evt = self.env.event()
        if self.level + amount <= self.capacity:
            self.level += amount
            evt.succeed(None)
            self._drain_getters()
        else:
            self._putters.append((evt, amount))
        return evt

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        evt = self.env.event()
        if amount <= self.level:
            self.level -= amount
            evt.succeed(None)
            self._drain_putters()
        else:
            self._getters.append((evt, amount))
        return evt

    def _drain_getters(self) -> None:
        while self._getters and self._getters[0][1] <= self.level:
            evt, amount = self._getters.popleft()
            self.level -= amount
            evt.succeed(None)

    def _drain_putters(self) -> None:
        while self._putters and self.level + self._putters[0][1] <= self.capacity:
            evt, amount = self._putters.popleft()
            self.level += amount
            evt.succeed(None)


@dataclass
class _PSJob:
    remaining: float        # work units left
    done: Event
    last_update: float
    rate_share: float = 1.0


class ProcessorSharing:
    """Processor-sharing CPU model.

    Jobs submit an amount of *work* (abstract units); a machine with
    ``speed`` executes ``speed`` work units per simulated second split
    evenly across all currently active jobs.  ``compute(work)`` returns
    an event that triggers when the job's work is done.

    The implementation re-profiles remaining work at every arrival and
    departure, which is exact for piecewise-constant sharing.
    """

    def __init__(self, env: Environment, speed: float = 1.0, cores: int = 1):
        if speed <= 0:
            raise ValueError("speed must be positive")
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.env = env
        self.speed = float(speed)
        self.cores = cores
        self._jobs: list[_PSJob] = []
        self._wake: Optional[Event] = None
        self._scheduler_running = False

    @property
    def load(self) -> int:
        """Number of jobs currently computing."""
        return len(self._jobs)

    def compute(self, work: float) -> Event:
        """Submit ``work`` units; returns event triggered at completion."""
        if work < 0:
            raise ValueError("work must be >= 0")
        done = self.env.event()
        if work == 0:
            done.succeed(None)
            return done
        self._advance_all()
        self._jobs.append(_PSJob(remaining=float(work), done=done, last_update=self.env.now))
        self._kick()
        return done

    # -- internals -----------------------------------------------------------
    def _per_job_rate(self) -> float:
        n = len(self._jobs)
        if n == 0:
            return 0.0
        # With c cores and n jobs, each job gets min(1, c/n) of one core.
        return self.speed * min(1.0, self.cores / n)

    def _advance_all(self) -> None:
        now = self.env.now
        rate = self._per_job_rate()
        for job in self._jobs:
            elapsed = now - job.last_update
            if elapsed > 0:
                job.remaining = max(0.0, job.remaining - elapsed * rate)
            job.last_update = now

    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)
        if not self._scheduler_running:
            self._scheduler_running = True
            self.env.process(self._scheduler(), name="ps-scheduler")

    def _scheduler(self):
        while self._jobs:
            self._advance_all()
            # A job is done when less than a nanosecond of work remains
            # — or less than the clock can resolve: once env.now is
            # large, ulp(now) exceeds a fixed nanosecond, a scheduled
            # timeout below it no longer advances float time and the
            # loop would livelock on the unreachable residue.
            rate = self._per_job_rate()
            eps = rate * max(1e-9, 2.0 * math.ulp(self.env.now))
            finished = [j for j in self._jobs if j.remaining <= eps]
            if finished:
                self._jobs = [j for j in self._jobs if j.remaining > eps]
                for job in finished:
                    job.done.succeed(None)
                continue
            next_done = min(j.remaining for j in self._jobs) / rate
            self._wake = self.env.event()
            timeout = self.env.timeout(next_done)
            yield self.env.any_of([timeout, self._wake])
            self._wake = None
        self._scheduler_running = False
        return None
