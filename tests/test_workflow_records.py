"""Tests for the plan → GNS-records translation and its persistence."""


from repro.gns.persistence import dump_records, load_records
from repro.gns.records import IOMode
from repro.workflow.runner import records_for_plan
from repro.workflow.scheduler import plan_workflow
from repro.workflow.spec import FileUse, Stage, Workflow


def wf():
    return Workflow(
        "wiring",
        [
            Stage("a", writes=(FileUse("ab"),)),
            Stage("b", reads=(FileUse("ab"),), writes=(FileUse("bc"),)),
            Stage("c", reads=(FileUse("bc"),)),
        ],
    )


class TestRecordsForPlan:
    def test_all_local_needs_no_records(self):
        plan = plan_workflow(wf(), {s: "m" for s in ("a", "b", "c")})
        assert records_for_plan(plan) == []

    def test_copy_records_one_per_remote_consumer(self):
        plan = plan_workflow(
            wf(), {"a": "m1", "b": "m2", "c": "m2"}, coupling={"ab": "copy", "bc": "local"}
        )
        records = records_for_plan(plan)
        assert len(records) == 1
        rec = records[0]
        assert rec.mode is IOMode.COPY
        assert rec.machine == "m2"
        assert rec.remote_host == "m1"
        assert rec.path == "/wf/wiring/ab"

    def test_buffer_records_count_readers(self):
        fan = Workflow(
            "fan",
            [
                Stage("src", writes=(FileUse("s"),)),
                Stage("c1", reads=(FileUse("s"),)),
                Stage("c2", reads=(FileUse("s"),)),
            ],
        )
        plan = plan_workflow(
            fan, {"src": "m1", "c1": "m2", "c2": "m3"}, coupling={"s": "buffer"}
        )
        records = records_for_plan(plan)
        assert len(records) == 1
        assert records[0].mode is IOMode.BUFFER
        assert records[0].buffer.n_readers == 2
        assert records[0].buffer.stream == "fan:s"

    def test_custom_prefix(self):
        plan = plan_workflow(wf(), {"a": "m1", "b": "m2", "c": "m2"})
        records = records_for_plan(plan, prefix="/custom")
        assert all(r.path.startswith("/custom/") for r in records)

    def test_records_serialise_roundtrip(self):
        """The wiring can live in a JSON file next to the workflow."""
        plan = plan_workflow(
            wf(),
            {"a": "m1", "b": "m2", "c": "m1"},
            coupling={"ab": "buffer", "bc": "copy"},
        )
        records = records_for_plan(plan)
        assert load_records(dump_records(records)) == records

    def test_rewired_plan_changes_only_records(self):
        """Same workflow, two couplings: everything that differs fits in
        the GNS records — the paper's claim made concrete."""
        placement = {"a": "m1", "b": "m2", "c": "m1"}
        plan_files = plan_workflow(
            wf(), placement, coupling={"ab": "copy", "bc": "copy"}
        )
        plan_streams = plan_workflow(
            wf(), placement, coupling={"ab": "buffer", "bc": "buffer"}
        )
        rec_files = records_for_plan(plan_files)
        rec_streams = records_for_plan(plan_streams)
        assert {r.mode for r in rec_files} == {IOMode.COPY}
        assert {r.mode for r in rec_streams} == {IOMode.BUFFER}
        assert plan_files.workflow.stages.keys() == plan_streams.workflow.stages.keys()
