"""The File Multiplexer (FM).

"The key to providing a flexible IO system is to interpose a library
between the application and the Grid...  The FM intercepts all file
operations as specified in the legacy application.  When the program
performs an OPEN operation, the FM determines which mode to use, and
sets up the appropriate pathways.  Each OPEN operation makes an
independent choice." (Section 3.1)

:class:`FileMultiplexer` is that library.  ``open()`` consults the GNS
for the ``(machine, path)`` of the call and returns an :class:`FMFile`
backed by whichever client the record selects:

* ``local``           → :class:`~repro.core.local_client.LocalFileClient`
* ``copy``            → :class:`~repro.core.remote_client.CopyInOutFile`
* ``remote``          → :class:`~repro.core.remote_client.RemoteProxyFile`
* ``remote-replica``  → replica selection + proxy, with dynamic re-map
* ``local-replica``   → replica selection + copy-in, then local IO
* ``buffer``          → :class:`~repro.core.buffer_client.GridBufferClientPool`

No application source changes are required: the program calls plain
``open/read/write/seek/close`` (optionally via
:mod:`repro.core.interpose`) and re-wiring happens entirely in the GNS.
"""

from __future__ import annotations

import io
import logging
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from .. import obs
from ..gns.client import GnsClient, GnsWatchUnsupported, LocalGnsClient
from ..gns.records import BufferEndpoint, GnsRecord, IOMode
from ..grid.replica_catalog import Replica
from ..ioutil import ReadIntoFromRead
from ..transport.gridftp import GridFtpClient, TransferError
from ..transport.inmem import HostRegistry
from ..transport.tcp import RpcError
from .buffer_client import GridBufferClientPool
from .local_client import LocalFileClient
from .policy import AccessEstimate, AccessPolicy, observed_estimate
from .remote_client import RemoteFileClient
from .replica import NoReplicaError, ReplicaSelector

__all__ = ["FMError", "OpenStats", "GridContext", "FMFile", "FileMultiplexer"]

logger = logging.getLogger("repro.core.fm")

_FM_OPENS = obs.counter(
    "fm_opens_total", "FM open() calls by resolved IO mode", labelnames=("mode",)
)
_FM_OPS = obs.counter(
    "fm_ops_total", "FM file operations by op and IO mode", labelnames=("op", "mode")
)
_FM_BYTES = obs.counter(
    "fm_bytes_total", "Bytes through FM handles by direction and IO mode",
    labelnames=("direction", "mode"),
)
_FM_REMAPS = obs.counter(
    "fm_remaps_total", "Mid-read replica re-mappings performed by FM handles"
)
_FM_LIVE_REMAPS = obs.counter(
    "fm_live_remaps_total",
    "Open streams migrated between IO modes mid-run by a GNS change",
    labelnames=("from", "to"),
)
_FM_FAILOVERS = obs.counter(
    "replica_failovers_total",
    "Replica sources abandoned after an IO failure, by logical name",
    labelnames=("logical_name",),
)
_FM_DEGRADED = obs.counter(
    "fm_mode_degraded_total",
    "Opens degraded to a fallback IO mode (unreachable primary)",
    labelnames=("from_mode", "to_mode"),
)

Address = Tuple[str, int]
Locator = Union[Callable[[str], Address], Dict[str, Address]]


class FMError(RuntimeError):
    """Configuration or dispatch failure inside the FM."""


#: IO modes a live stream can be migrated between mid-run.  The two
#: replica modes keep their own selector-driven remap machinery and a
#: buffered *writer* owns its stream, so neither participates.
_MIGRATABLE = frozenset({IOMode.LOCAL, IOMode.COPY, IOMode.REMOTE, IOMode.BUFFER})


def _as_locator(loc: Optional[Locator], what: str) -> Callable[[str], Address]:
    if loc is None:
        def missing(host: str) -> Address:
            raise FMError(f"no {what} locator configured (needed for host {host!r})")
        return missing
    if callable(loc):
        return loc
    table = dict(loc)

    def lookup(host: str) -> Address:
        try:
            return table[host]
        except KeyError:
            raise FMError(f"no {what} registered for host {host!r}") from None
    return lookup


@dataclass
class OpenStats:
    """Per-open counters — the 'access pattern' input to the policy."""

    path: str = ""
    mode: str = ""
    io_mode: str = ""
    bytes_read: int = 0
    bytes_written: int = 0
    read_ops: int = 0
    write_ops: int = 0
    seeks: int = 0
    remaps: int = 0
    failovers: int = 0


@dataclass
class GridContext:
    """Everything one FM instance needs to reach the grid.

    Only ``machine`` and ``gns`` are mandatory; the other fields are
    required only by the modes that use them (e.g. ``gridftp`` for
    remote/copy, ``buffer_locator`` for direct connections).
    """

    machine: str
    gns: Union[GnsClient, LocalGnsClient]
    hosts: Optional[HostRegistry] = None
    gridftp: Optional[Locator] = None
    buffer_locator: Optional[Locator] = None
    selector: Optional[ReplicaSelector] = None
    policy: AccessPolicy = field(default_factory=AccessPolicy)
    scratch_dir: Optional[Path] = None
    io_timeout: Optional[float] = 120.0
    #: Re-consult the replica selector every N reads on read-only
    #: replicated opens (Section 3.1's dynamic re-mapping cadence).
    remap_every: int = 64
    #: Verify the SHA-256 of every copy-in against the remote server.
    verify_copies: bool = False
    #: Pipeline sequential proxy reads through a background prefetcher.
    prefetch: bool = True
    #: Parallel TCP streams for bulk copies (fetch and store).
    parallel_streams: int = 1
    #: Pipeline Grid Buffer reads through an adaptive read-ahead window.
    buffer_readahead: bool = True
    #: Maximum windowed read RPCs kept in flight per buffered reader.
    buffer_readahead_depth: int = 4
    #: Coalesce Grid Buffer writes into batches of this many bytes.
    #: Safe by default: the writer's flush deadline bounds how long a
    #: partial batch stays local (0 = write-through per WRITE call).
    buffer_coalesce_bytes: int = 64 * 1024
    #: Upper bound (seconds) on coalesced-write visibility lag; None
    #: uses REPRO_BUFFER_FLUSH_DEADLINE (default 20 ms).
    buffer_flush_deadline: Optional[float] = None
    #: Share fetched blocks between co-located readers of one broadcast
    #: stream (None = auto: enabled when the endpoint has >1 readers).
    buffer_shared_cache: Optional[bool] = None
    #: Subscribe to GNS changes and live-migrate open read streams
    #: between IO modes mid-run (COPY↔BUFFER and friends) when their
    #: records are edited.  Off by default: resolve-at-open only.
    live_remap: bool = False
    #: Long-poll budget (seconds) for one ``gns.watch`` round of the
    #: live-remap watcher; also bounds how long FM close can stall on
    #: a parked watch.
    watch_budget: float = 1.0


class FMFile(ReadIntoFromRead, io.RawIOBase):
    """The handle returned by :meth:`FileMultiplexer.open`.

    Wraps whichever client implements this open's IO mode, counts
    traffic, and (for read-only replicated opens) consults the replica
    selector periodically to re-map mid-run.
    """

    def __init__(
        self,
        inner: io.RawIOBase,
        record: GnsRecord,
        stats: OpenStats,
        remap_hook: Optional[Callable[["FMFile"], Optional[io.RawIOBase]]] = None,
        remap_every: int = 64,
        failover_hook: Optional[
            Callable[["FMFile", BaseException], Optional[io.RawIOBase]]
        ] = None,
    ):
        super().__init__()
        self._inner = inner
        self.record = record
        self.stats = stats
        self._remap_hook = remap_hook
        self._remap_every = max(1, remap_every)
        self._failover_hook = failover_hook
        # Live-remap plumbing, attached by the FM after a live open:
        # the watcher parks a pending record here and the reader's own
        # thread applies it at the next read boundary (the quiesce
        # point — FMFile is single-reader, so no IO is in flight).
        self._migrate_opener: Optional[Callable[[GnsRecord], io.RawIOBase]] = None
        self._on_close: Optional[Callable[[], None]] = None
        self._pending_record: Optional[GnsRecord] = None
        self._pending_lock = threading.Lock()
        self._bind_metrics(record.mode.value)

    def _bind_metrics(self, mode: str) -> None:
        # Children bound once per open (and re-bound on a live
        # migration): the per-op cost is a lock + add.
        self._m_reads = _FM_OPS.labels(op="read", mode=mode)
        self._m_writes = _FM_OPS.labels(op="write", mode=mode)
        self._m_seeks = _FM_OPS.labels(op="seek", mode=mode)
        self._m_closes = _FM_OPS.labels(op="close", mode=mode)
        self._m_bytes_read = _FM_BYTES.labels(direction="read", mode=mode)
        self._m_bytes_written = _FM_BYTES.labels(direction="write", mode=mode)

    # -- capability passthrough ---------------------------------------------
    def readable(self) -> bool:
        return self._inner.readable()

    def writable(self) -> bool:
        return self._inner.writable()

    def seekable(self) -> bool:
        return self._inner.seekable()

    @property
    def io_mode(self) -> IOMode:
        return self.record.mode

    # -- IO with accounting ---------------------------------------------------
    def read(self, size: int = -1) -> bytes:  # type: ignore[override]
        self._maybe_migrate()
        self._maybe_remap()
        data = self._read_failsafe(size)
        self.stats.read_ops += 1
        self.stats.bytes_read += len(data or b"")
        self._m_reads.inc()
        self._m_bytes_read.inc(len(data or b""))
        return data

    def _read_failsafe(self, size: int) -> bytes:
        """One logical read; fails over to a replacement source if wired.

        The position is captured *before* the attempt: a failed read may
        already have advanced the inner handle's bookkeeping for bytes
        that were never returned, so the replacement must resume from
        the pre-read offset, not the post-failure one.
        """
        while True:
            pos = self._inner.tell()
            try:
                return self._inner.read(size)
            except (OSError, RpcError) as exc:
                if self._failover_hook is None:
                    raise
                replacement = self._failover_hook(self, exc)
                if replacement is None:
                    raise
                try:
                    self._inner.close()
                except (OSError, RpcError):
                    pass  # the old source is already dead
                replacement.seek(pos)
                self._inner = replacement
                self.stats.failovers += 1

    def write(self, data) -> int:  # type: ignore[override]
        n = self._inner.write(bytes(data)) or 0
        self.stats.write_ops += 1
        self.stats.bytes_written += n
        self._m_writes.inc()
        self._m_bytes_written.inc(n)
        return n

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        self.stats.seeks += 1
        self._m_seeks.inc()
        return self._inner.seek(offset, whence)

    def tell(self) -> int:
        return self._inner.tell()

    def flush(self) -> None:
        if not self._inner.closed:
            self._inner.flush()

    def close(self) -> None:
        if not self.closed:
            self._m_closes.inc()
            try:
                self._inner.close()
            finally:
                super().close()
                if self._on_close is not None:
                    self._on_close()

    def abort(self) -> None:
        """Abandon the handle after a stage crash.

        Buffered writers propagate the abort so blocked readers fail
        fast (StreamFailed) instead of hanging to their timeout; other
        clients just close.
        """
        if self.closed:
            return
        inner_abort = getattr(self._inner, "abort", None)
        try:
            if callable(inner_abort):
                inner_abort()
            else:
                self._inner.close()
        finally:
            super().close()
            if self._on_close is not None:
                self._on_close()

    # -- dynamic re-mapping -------------------------------------------------
    def _maybe_remap(self) -> None:
        if self._remap_hook is None:
            return
        if self.stats.read_ops % self._remap_every != 0:
            return
        replacement = self._remap_hook(self)
        if replacement is not None:
            pos = self._inner.tell()
            old = self._inner
            replacement.seek(pos)
            self._inner = replacement
            old.close()
            self.stats.remaps += 1
            _FM_REMAPS.inc()

    # -- live migration (GNS-driven mode change) ----------------------------
    def request_migration(self, record: GnsRecord) -> bool:
        """Ask this handle to move to ``record`` at its next read boundary.

        Called by the FM's GNS watcher (any thread).  The actual swap
        happens on the reader's own thread inside :meth:`read`, which
        is the safe block boundary: no IO is in flight, the offset is
        a clean checkpoint, and the stream resumes byte-exact.
        """
        if self._migrate_opener is None or self.closed:
            return False
        if record.mode not in _MIGRATABLE or self.record.mode not in _MIGRATABLE:
            return False
        if record == self.record:
            return False
        with self._pending_lock:
            self._pending_record = record
        return True

    def _maybe_migrate(self) -> None:
        with self._pending_lock:
            record, self._pending_record = self._pending_record, None
        if record is None or record == self.record or self._migrate_opener is None:
            return
        from_mode = self.record.mode.value
        to_mode = record.mode.value
        with obs.span(
            "remap", path=self.stats.path, from_mode=from_mode, to_mode=to_mode
        ):
            pos = self._inner.tell()
            try:
                replacement = self._migrate_opener(record)
                replacement.seek(pos)
            except (OSError, RpcError, FMError) as exc:
                # New binding unreachable: stay on the current one; a
                # later GNS change (or the same record, retried by the
                # watcher on its next batch) can still move us.
                obs.event(
                    "fm.live_remap_failed",
                    path=self.stats.path,
                    from_mode=from_mode,
                    to_mode=to_mode,
                    error=str(exc),
                )
                logger.warning(
                    "live remap of %s %s->%s failed (%s); staying on %s",
                    self.stats.path, from_mode, to_mode, exc, from_mode,
                )
                return
            old = self._inner
            self._inner = replacement
            try:
                old.close()
            except (OSError, RpcError):
                pass  # the old binding may already be dead; we have moved on
            self.record = record
            self.stats.io_mode = to_mode
            self.stats.remaps += 1
            self._bind_metrics(to_mode)
            _FM_LIVE_REMAPS.labels(**{"from": from_mode, "to": to_mode}).inc()
            obs.event(
                "fm.live_remap",
                path=self.stats.path,
                from_mode=from_mode,
                to_mode=to_mode,
                offset=pos,
            )
            logger.info(
                "live remap %s: %s -> %s at offset %d",
                self.stats.path, from_mode, to_mode, pos,
            )


class FileMultiplexer:
    """One per application process; dispatches opens by GNS record."""

    def __init__(self, ctx: GridContext):
        self.ctx = ctx
        host = ctx.hosts.host(ctx.machine) if ctx.hosts is not None else None
        self._local = LocalFileClient(host)
        self._gridftp_locator = _as_locator(ctx.gridftp, "GridFTP")
        self._buffer_locator = _as_locator(ctx.buffer_locator, "Grid Buffer")
        self._ftp_clients: Dict[str, GridFtpClient] = {}
        self._remote_clients: Dict[str, RemoteFileClient] = {}
        self._lock = threading.Lock()
        self.open_history: list[OpenStats] = []
        # Measured per-host throughput/latency; feeds the access policy
        # and sizes the buffered readers' read-ahead windows.
        from .trace import TransferMonitor  # local import: trace imports us

        self.monitor = TransferMonitor()
        self._buffer_pool = GridBufferClientPool(ctx.machine, monitor=self.monitor)
        # Live-remap state: open read handles watching the GNS, plus
        # the background thread driving the gns.watch long-poll.
        self._watched: Dict[int, Tuple[str, FMFile]] = {}
        self._watch_lock = threading.Lock()
        self._watch_stop = threading.Event()
        self._watch_thread: Optional[threading.Thread] = None

    # -- plumbing ----------------------------------------------------------
    def _ftp(self, host: str) -> GridFtpClient:
        with self._lock:
            client = self._ftp_clients.get(host)
            if client is None:
                addr = self._gridftp_locator(host)
                client = GridFtpClient(
                    *addr,
                    parallel_streams=self.ctx.parallel_streams,
                    monitor=self.monitor,
                    peer=host,
                )
                self._ftp_clients[host] = client
            return client

    def _remote(self, host: str) -> RemoteFileClient:
        with self._lock:
            remote = self._remote_clients.get(host)
        if remote is not None:
            return remote
        client = self._ftp(host)
        with self._lock:
            remote = self._remote_clients.get(host)
            if remote is None:
                remote = RemoteFileClient(
                    client, scratch_dir=self.ctx.scratch_dir, prefetch=self.ctx.prefetch
                )
                self._remote_clients[host] = remote
            return remote

    def link_estimate(self, host: str, file_size: int, read_fraction: float = 1.0) -> AccessEstimate:
        """An :class:`AccessEstimate` for ``host`` from measured numbers."""
        return observed_estimate(self.monitor, host, file_size, read_fraction=read_fraction)

    # -- the public entry point ----------------------------------------------
    def open(self, path: str, mode: str = "r") -> FMFile:
        """Open ``path`` the way the GNS says this machine should."""
        record = self.ctx.gns.resolve(self.ctx.machine, path)
        stats = OpenStats(path=path, mode=mode, io_mode=record.mode.value)
        self.open_history.append(stats)
        _FM_OPENS.labels(mode=record.mode.value).inc()
        obs.event(
            "fm.open", path=path, machine=self.ctx.machine, io_mode=record.mode.value
        )
        logger.debug(
            "open %s mode=%s on %s -> %s", path, mode, self.ctx.machine, record.mode.value
        )
        dispatch = {
            IOMode.LOCAL: self._open_local,
            IOMode.COPY: self._open_copy,
            IOMode.REMOTE: self._open_remote,
            IOMode.REMOTE_REPLICA: self._open_remote_replica,
            IOMode.LOCAL_REPLICA: self._open_local_replica,
            IOMode.BUFFER: self._open_buffer,
        }
        try:
            opener = dispatch[record.mode]
        except KeyError:  # pragma: no cover - enum is closed
            raise FMError(f"unhandled IO mode {record.mode!r}")
        fmfile = opener(record, path, mode, stats)
        self._maybe_register_live(path, mode, fmfile)
        return fmfile

    # -- per-mode openers ---------------------------------------------------
    def _open_local(self, record: GnsRecord, path: str, mode: str, stats: OpenStats) -> FMFile:
        real = record.local_path or path
        return FMFile(self._local.open(real, mode), record, stats)

    def _open_copy(self, record: GnsRecord, path: str, mode: str, stats: OpenStats) -> FMFile:
        remote = self._remote(record.remote_host)  # type: ignore[arg-type]
        inner = remote.open_copy(
            record.remote_path, mode, verify=self.ctx.verify_copies  # type: ignore[arg-type]
        )
        return FMFile(inner, record, stats)

    def _open_remote(self, record: GnsRecord, path: str, mode: str, stats: OpenStats) -> FMFile:
        remote = self._remote(record.remote_host)  # type: ignore[arg-type]
        inner = remote.open_proxy(record.remote_path, mode)  # type: ignore[arg-type]
        return FMFile(inner, record, stats)

    def _choose_replica(self, record: GnsRecord, exclude=()) -> Replica:
        if self.ctx.selector is None:
            raise FMError(
                f"replicated file {record.logical_name!r} needs a ReplicaSelector"
            )
        choice = self.ctx.selector.best(
            record.logical_name, self.ctx.machine, exclude=exclude  # type: ignore[arg-type]
        )
        return choice.replica

    def _open_remote_replica(
        self, record: GnsRecord, path: str, mode: str, stats: OpenStats
    ) -> FMFile:
        core = mode.replace("b", "").replace("t", "")
        if core != "r":
            raise FMError("replicated files are read-only")
        failed: set = set()  # (host, path) of sources that died mid-read
        replica = self._choose_replica(record)
        current = {"replica": replica}
        inner = self._open_replica_source(replica)

        def remap_hook(_fmfile: FMFile) -> Optional[io.RawIOBase]:
            choice = self.ctx.selector.maybe_remap(  # type: ignore[union-attr]
                record.logical_name, self.ctx.machine, current["replica"],  # type: ignore[arg-type]
                exclude=failed,
            )
            if choice is None:
                return None
            current["replica"] = choice.replica
            return self._open_replica_source(choice.replica)

        def failover_hook(_fmfile: FMFile, exc: BaseException) -> Optional[io.RawIOBase]:
            dead = current["replica"]
            failed.add((dead.host, dead.path))
            try:
                choice = self.ctx.selector.best(  # type: ignore[union-attr]
                    record.logical_name, self.ctx.machine, exclude=failed  # type: ignore[arg-type]
                )
            except NoReplicaError:
                return None  # exhausted: let the original failure surface
            current["replica"] = choice.replica
            _FM_FAILOVERS.labels(logical_name=record.logical_name).inc()
            obs.event(
                "fm.replica_failover",
                logical_name=record.logical_name,
                from_host=dead.host,
                to_host=choice.replica.host,
                error=str(exc),
            )
            logger.warning(
                "replica %s on %s failed (%s); failing over to %s",
                record.logical_name, dead.host, exc, choice.replica.host,
            )
            return self._open_replica_source(choice.replica)

        return FMFile(
            inner,
            record,
            stats,
            remap_hook=remap_hook,
            remap_every=self.ctx.remap_every,
            failover_hook=failover_hook,
        )

    def _open_replica_source(self, replica: Replica) -> io.RawIOBase:
        if replica.host == self.ctx.machine:
            return self._local.open(replica.path, "r")
        return self._remote(replica.host).open_proxy(replica.path, "r")

    def _open_local_replica(
        self, record: GnsRecord, path: str, mode: str, stats: OpenStats
    ) -> FMFile:
        core = mode.replace("b", "").replace("t", "")
        if core != "r":
            raise FMError("replicated files are read-only")
        failed: set = set()
        resume = 0  # contiguous bytes already copied by failed attempts
        last_exc: Optional[Exception] = None
        local_copy = record.local_path or f"/fm-replica-cache{path}"
        while True:
            try:
                replica = self._choose_replica(record, exclude=failed)
            except NoReplicaError:
                if last_exc is not None:
                    raise last_exc
                raise
            if replica.host == self.ctx.machine:
                return FMFile(self._local.open(replica.path, "r"), record, stats)
            target = self._local.resolve(local_copy)
            try:
                # Replicas are byte-identical, so a copy interrupted at
                # offset N resumes at N from the *next* source.
                self._ftp(replica.host).fetch_file(
                    replica.path, target, resume_from=resume
                )
            except (TransferError, OSError, RpcError) as exc:
                failed.add((replica.host, replica.path))
                if isinstance(exc, TransferError):
                    resume = exc.copied
                last_exc = exc
                stats.failovers += 1
                _FM_FAILOVERS.labels(logical_name=record.logical_name).inc()
                obs.event(
                    "fm.replica_failover",
                    logical_name=record.logical_name,
                    from_host=replica.host,
                    resume_from=resume,
                    error=str(exc),
                )
                logger.warning(
                    "copy-in of %s from %s died at byte %d (%s); trying next replica",
                    record.logical_name, replica.host, resume, exc,
                )
                continue
            return FMFile(self._local.open(local_copy, "r"), record, stats)

    def _open_buffer(self, record: GnsRecord, path: str, mode: str, stats: OpenStats) -> FMFile:
        endpoint = record.buffer
        assert endpoint is not None  # enforced by GnsRecord validation
        core = mode.replace("b", "").replace("t", "")
        role = "reader" if core == "r" else "writer"
        if core in ("r+", "w+", "a+"):
            raise FMError("buffered streams are unidirectional (read xor write)")
        try:
            server = self._locate_buffer(endpoint, role)
            if role == "writer":
                inner = self._buffer_pool.open_writer(
                    endpoint,
                    server,
                    write_timeout=self.ctx.io_timeout,
                    coalesce_bytes=self.ctx.buffer_coalesce_bytes,
                    flush_after=self.ctx.buffer_flush_deadline,
                )
            else:
                inner = self._buffer_pool.open_reader(
                    endpoint,
                    server,
                    read_timeout=self.ctx.io_timeout,
                    read_ahead=self.ctx.buffer_readahead,
                    read_ahead_depth=self.ctx.buffer_readahead_depth,
                    shared_cache=self.ctx.buffer_shared_cache,
                )
        except (OSError, RpcError) as exc:
            if record.fallback is None:
                raise
            return self._degrade(record, path, mode, stats, exc)
        return FMFile(inner, record, stats)

    def _degrade(
        self,
        record: GnsRecord,
        path: str,
        mode: str,
        stats: OpenStats,
        exc: BaseException,
    ) -> FMFile:
        """Walk the record's fallback chain after an unreachable OPEN."""
        fallback = record.fallback
        while fallback is not None:
            _FM_DEGRADED.labels(
                from_mode=record.mode.value, to_mode=fallback.mode.value
            ).inc()
            _FM_REMAPS.inc()
            stats.remaps += 1
            stats.io_mode = fallback.mode.value
            obs.event(
                "fm.mode_degraded",
                path=path,
                from_mode=record.mode.value,
                to_mode=fallback.mode.value,
                error=str(exc),
            )
            logger.warning(
                "open %s: %s unreachable (%s); degrading to %s",
                path, record.mode.value, exc, fallback.mode.value,
            )
            try:
                return self._open_with(fallback, path, mode, stats)
            except (OSError, RpcError) as next_exc:
                exc = next_exc
                record, fallback = fallback, fallback.fallback
        raise exc

    def _open_with(self, record: GnsRecord, path: str, mode: str, stats: OpenStats) -> FMFile:
        # Dispatch for fallback records; open() keeps its own inline
        # table (the conformance suite checks the mode names there).
        openers = {
            IOMode.LOCAL: self._open_local,
            IOMode.COPY: self._open_copy,
            IOMode.REMOTE: self._open_remote,
            IOMode.REMOTE_REPLICA: self._open_remote_replica,
            IOMode.LOCAL_REPLICA: self._open_local_replica,
            IOMode.BUFFER: self._open_buffer,
        }
        return openers[record.mode](record, path, mode, stats)

    # -- live remap (GNS change subscription) -------------------------------
    def _maybe_register_live(self, path: str, mode: str, fmfile: FMFile) -> None:
        """Put a freshly opened read handle under GNS watch.

        Writers keep their binding (a buffered writer owns its stream)
        and replica opens keep their selector-driven remap machinery;
        everything else migrates when its record changes.
        """
        if not self.ctx.live_remap:
            return
        core = mode.replace("b", "").replace("t", "")
        if core != "r" or fmfile.record.mode not in _MIGRATABLE:
            return
        key = id(fmfile)
        fmfile._migrate_opener = lambda record: self._migration_inner(record, path, mode)
        fmfile._on_close = lambda: self._unregister_live(key)
        with self._watch_lock:
            self._watched[key] = (path, fmfile)
            if self._watch_thread is None and not self._watch_stop.is_set():
                self._watch_thread = threading.Thread(
                    target=self._watch_loop,
                    name=f"fm-gns-watch-{self.ctx.machine}",
                    daemon=True,
                )
                self._watch_thread.start()
        # Close the open-vs-subscribe race: a txn landing between this
        # open's resolve and the watcher's baseline would otherwise be
        # invisible until the next change.
        try:
            current = self.ctx.gns.resolve(self.ctx.machine, path)
        except (OSError, RpcError):
            return  # control plane briefly unreachable; watcher retries
        if current != fmfile.record:
            fmfile.request_migration(current)

    def _unregister_live(self, key: int) -> None:
        with self._watch_lock:
            self._watched.pop(key, None)

    def _watch_loop(self) -> None:
        """Drive the gns.watch long-poll; resume from revision on faults.

        Server death mid-watch surfaces here as OSError/RpcError: the
        loop backs off and re-issues the watch from the last revision
        it has applied, so the store replays whatever was missed — no
        change is lost or seen twice.  An old GNS peer without watch
        support degrades to resolve-at-open, silently.
        """
        gns = self.ctx.gns
        revision = -1
        while not self._watch_stop.is_set():
            try:
                if revision < 0:
                    revision = gns.watch(from_revision=-1, timeout=0.0).revision
                    self._apply_watch()
                    continue
                batch = gns.watch(from_revision=revision, timeout=self.ctx.watch_budget)
            except GnsWatchUnsupported:
                obs.event("fm.watch_degraded", machine=self.ctx.machine)
                logger.info(
                    "GNS peer predates gns.watch; live remap degrades to resolve-at-open"
                )
                return
            except (OSError, RpcError) as exc:
                obs.event("fm.watch_retry", machine=self.ctx.machine, error=str(exc))
                if self._watch_stop.wait(0.1):
                    return
                continue
            if batch.events or batch.reset:
                self._apply_watch()
            revision = batch.revision

    def _apply_watch(self) -> None:
        """Re-resolve every watched path; queue migrations for changes."""
        with self._watch_lock:
            snapshot = list(self._watched.values())
        for path, fmfile in snapshot:
            if fmfile.closed:
                continue
            try:
                record = self.ctx.gns.resolve(self.ctx.machine, path)
            except (OSError, RpcError):
                continue  # control plane briefly unreachable; next batch retries
            if record != fmfile.record:
                fmfile.request_migration(record)

    def _migration_inner(self, record: GnsRecord, path: str, mode: str) -> io.RawIOBase:
        """Open the raw source a live migration moves a read handle onto."""
        if record.mode is IOMode.LOCAL:
            return self._local.open(record.local_path or path, mode)
        if record.mode is IOMode.COPY:
            remote = self._remote(record.remote_host)  # type: ignore[arg-type]
            return remote.open_copy(
                record.remote_path, mode, verify=self.ctx.verify_copies  # type: ignore[arg-type]
            )
        if record.mode is IOMode.REMOTE:
            remote = self._remote(record.remote_host)  # type: ignore[arg-type]
            return remote.open_proxy(record.remote_path, mode)  # type: ignore[arg-type]
        if record.mode is IOMode.BUFFER:
            endpoint = record.buffer
            assert endpoint is not None  # enforced by GnsRecord validation
            server = self._locate_buffer(endpoint, "reader")
            return self._buffer_pool.open_reader(
                endpoint,
                server,
                read_timeout=self.ctx.io_timeout,
                read_ahead=self.ctx.buffer_readahead,
                read_ahead_depth=self.ctx.buffer_readahead_depth,
                shared_cache=self.ctx.buffer_shared_cache,
            )
        raise FMError(f"live migration to mode {record.mode.value!r} is unsupported")

    def _locate_buffer(self, endpoint: BufferEndpoint, role: str) -> Address:
        if endpoint.host and endpoint.port:
            return (endpoint.host, endpoint.port)
        # Ask the GNS matcher; it places the server per the endpoint's
        # placement policy once the matching endpoint announces.
        host, port = self.ctx.gns.announce(
            endpoint.stream, role, self.ctx.machine, endpoint.placement
        )
        if not host or not port:
            # Matcher had no locator: place on this machine if we can.
            return self._buffer_locator(self.ctx.machine)
        return (host, port)

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        self._watch_stop.set()
        thread = self._watch_thread
        if thread is not None:
            # Best-effort: the watcher is a daemon parked in a bounded
            # long-poll; it observes the stop flag on its next round.
            thread.join(timeout=0.2)
            self._watch_thread = None
        with self._watch_lock:
            self._watched.clear()
        self._buffer_pool.close()
        with self._lock:
            for client in self._ftp_clients.values():
                client.close()
            self._ftp_clients.clear()

    def __enter__(self) -> "FileMultiplexer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
