"""GNS client used by each File Multiplexer instance.

A thin RPC mirror of :class:`~repro.gns.server.NameService`; also
usable purely in-process via :class:`LocalGnsClient` when the workflow
runs inside one Python process (tests, examples, the simulator).

Both clients carry an optional ``namespace``/``token`` identity: every
call is scoped to that namespace and authenticated with its bearer
token.  The defaults (``"default"``, no token) produce byte-identical
requests to a pre-control-plane client, so old servers interoperate;
against a server that predates ``gns.watch`` the control-plane calls
raise :class:`GnsWatchUnsupported` and callers degrade to
resolve-at-open only.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..transport.tcp import RpcClient, RpcError
from .records import GnsRecord
from .server import NameService
from .store import DEFAULT_NAMESPACE

__all__ = ["GnsClient", "GnsWatchUnsupported", "LocalGnsClient", "WatchBatch"]


class GnsWatchUnsupported(RuntimeError):
    """The peer GNS server predates the control-plane ops (version skew)."""


@dataclass
class WatchBatch:
    """One ``gns.watch`` reply: change events up to ``revision``.

    ``reset`` means the server compacted past the watcher's position:
    ``events`` is a full snapshot (synthetic adds) and any local view
    must be replaced, not patched.
    """

    events: List[Dict[str, Any]] = field(default_factory=list)
    revision: int = 0
    reset: bool = False


class GnsClient:
    """Remote GNS access over TCP."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        namespace: str = DEFAULT_NAMESPACE,
        token: Optional[str] = None,
    ):
        self._rpc = RpcClient(host, port, timeout=timeout)
        self.namespace = namespace
        self._token = token

    def _hdr(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        # Only stamp the identity fields when they deviate from the
        # defaults: a default-namespace, tokenless client sends frames
        # an old server already understands.
        if self.namespace != DEFAULT_NAMESPACE:
            fields["ns"] = self.namespace
        if self._token is not None:
            fields["auth"] = self._token
        return fields

    def resolve(self, machine: str, path: str) -> GnsRecord:
        reply, _ = self._rpc.call("gns.resolve", self._hdr({"machine": machine, "path": path}))
        return GnsRecord.from_dict(reply["record"])

    def add(self, record: GnsRecord) -> None:
        self._rpc.call("gns.add", self._hdr({"record": record.to_dict()}))

    def remove(self, machine: str, path: str) -> int:
        reply, _ = self._rpc.call("gns.remove", self._hdr({"machine": machine, "path": path}))
        return int(reply["removed"])

    def list_records(self) -> list[GnsRecord]:
        reply, _ = self._rpc.call("gns.list", self._hdr({}))
        return [GnsRecord.from_dict(d) for d in reply["records"]]

    # -- control plane -----------------------------------------------------
    def txn(self, ops: List[Any], token: Optional[str] = None) -> int:
        """Atomically apply add/remove operations; return the new revision.

        Safe to retry: each txn carries a dedupe token (generated here
        unless supplied), so a redial that replays an already-committed
        batch gets the original revision back instead of applying it
        twice — the exactly-once discipline ``gb.write`` established.
        """
        wire_ops = []
        for op in ops:
            if isinstance(op, dict):
                wire_ops.append(op)
            elif len(op) == 2 and op[0] == "add":
                rec = op[1]
                wire_ops.append(
                    {"action": "add", "record": rec.to_dict() if isinstance(rec, GnsRecord) else rec}
                )
            elif len(op) == 3 and op[0] == "remove":
                wire_ops.append({"action": "remove", "machine": op[1], "path": op[2]})
            else:
                raise ValueError(f"malformed txn op: {op!r}")
        hdr = self._hdr({"ops": wire_ops, "token": token or uuid.uuid4().hex})
        try:
            reply, _ = self._rpc.call("gns.txn", hdr, retryable=True)
        except RpcError as exc:
            if exc.kind == "unknown-op":
                raise GnsWatchUnsupported("peer GNS server has no gns.txn") from exc
            raise
        return int(reply["revision"])

    def watch(self, from_revision: int, timeout: float = 10.0) -> WatchBatch:
        """Long-poll for changes after ``from_revision``.

        Blocks server-side until changes exist or ``timeout`` lapses
        (empty batch → poll again).  The op is idempotent, so the
        pooled client redials and replays it transparently when the
        server dies mid-watch; resuming from the last seen revision
        means no event is missed or duplicated across the crash.
        """
        hdr = self._hdr({"from_revision": int(from_revision), "timeout": float(timeout)})
        try:
            reply, _ = self._rpc.call("gns.watch", hdr)
        except RpcError as exc:
            if exc.kind == "unknown-op":
                raise GnsWatchUnsupported("peer GNS server has no gns.watch") from exc
            raise
        return WatchBatch(
            events=list(reply.get("events") or []),
            revision=int(reply["revision"]),
            reset=bool(reply.get("reset", False)),
        )

    def revision(self) -> int:
        """Current revision of this client's namespace (a watch probe)."""
        return self.watch(from_revision=-1, timeout=0.0).revision

    def announce(
        self,
        stream: str,
        role: str,
        machine: str,
        placement: str = "reader",
        wait: bool = True,
        poll_interval: float = 0.02,
        timeout: float = 30.0,
    ) -> Tuple[str, int]:
        """Announce an endpoint; optionally block until the buffer is placed.

        A writer may open before any reader exists (or vice versa); with
        ``wait=True`` the call polls until the matcher can name a buffer
        location, which mirrors the FM blocking the legacy OPEN call.
        """
        deadline = time.monotonic() + timeout
        while True:
            reply, _ = self._rpc.call(
                "gns.announce",
                {"stream": stream, "role": role, "machine": machine, "placement": placement},
            )
            if reply["located"] or not wait:
                return reply["host"], int(reply["port"])
            if time.monotonic() > deadline:
                raise TimeoutError(f"stream {stream!r} never acquired a buffer location")
            time.sleep(poll_interval)

    def pin_stream(self, stream: str, host: str, port: int, placement: str = "reader") -> None:
        self._rpc.call(
            "gns.pin", {"stream": stream, "host": host, "port": port, "placement": placement}
        )

    def close(self) -> None:
        self._rpc.close()

    def __enter__(self) -> "GnsClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LocalGnsClient:
    """Same interface, directly over an in-process :class:`NameService`."""

    def __init__(
        self,
        service: NameService,
        namespace: str = DEFAULT_NAMESPACE,
        token: Optional[str] = None,
    ):
        self.service = service
        self.namespace = namespace
        self._token = token

    def _check(self) -> None:
        self.service.check_token(self.namespace, self._token)

    def resolve(self, machine: str, path: str) -> GnsRecord:
        self._check()
        return self.service.resolve(machine, path, ns=self.namespace)

    def add(self, record: GnsRecord) -> None:
        self._check()
        self.service.add(record, ns=self.namespace)

    def remove(self, machine: str, path: str) -> int:
        self._check()
        return self.service.remove(machine, path, ns=self.namespace)

    def list_records(self) -> list[GnsRecord]:
        self._check()
        return self.service.records(ns=self.namespace)

    # -- control plane -----------------------------------------------------
    def txn(self, ops: List[Any], token: Optional[str] = None) -> int:
        self._check()
        return self.service.txn(ops, ns=self.namespace, token=token)

    def watch(self, from_revision: int, timeout: float = 10.0) -> WatchBatch:
        self._check()
        if from_revision < 0:
            return WatchBatch(revision=self.service.revision(ns=self.namespace))
        events, revision, reset = self.service.wait_changes(
            self.namespace, int(from_revision), timeout
        )
        return WatchBatch(events=events, revision=revision, reset=reset)

    def revision(self) -> int:
        self._check()
        return self.service.revision(ns=self.namespace)

    def announce(
        self,
        stream: str,
        role: str,
        machine: str,
        placement: str = "reader",
        wait: bool = True,
        poll_interval: float = 0.02,
        timeout: float = 30.0,
    ) -> Tuple[str, int]:
        deadline = time.monotonic() + timeout
        while True:
            binding = self.service.announce(stream, role, machine, placement)
            if binding.located or not wait:
                return binding.host, binding.port
            if time.monotonic() > deadline:
                raise TimeoutError(f"stream {stream!r} never acquired a buffer location")
            time.sleep(poll_interval)

    def pin_stream(self, stream: str, host: str, port: int, placement: str = "reader") -> None:
        self.service.pin_stream(stream, host, port, placement)

    def close(self) -> None:  # symmetry with GnsClient
        pass
