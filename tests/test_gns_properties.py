"""Property-based tests of the GNS versioned record store.

Two invariants hypothesis hammers with random interleavings:

* **Convergence** — whatever sequence of transactions and compactions
  runs, a watcher that starts from *any* historical revision and
  replays ``changes_since`` (honouring resets) ends with exactly the
  store's final record list, in order.  This is the contract the FM's
  live-remap watcher and the resume-after-crash path both build on.
* **Isolation** — namespaces are airtight: operations in one namespace
  never appear in another's records, revisions, or change feed, and a
  wrong bearer token is always rejected before any state is touched.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.gns import GnsAuthError, GnsRecord, IOMode, RecordStore

MACHINES = ("m1", "m2")
PATHS = ("/a", "/b", "/c")


def _rec(machine, path, tag):
    return GnsRecord(machine=machine, path=path, mode=IOMode.LOCAL, local_path=f"/real/{tag}")


def _key(record):
    return (record.machine, record.path)


# One mutation: add some record, or remove one (machine, path) pair.
_op = st.one_of(
    st.tuples(
        st.just("add"), st.sampled_from(MACHINES), st.sampled_from(PATHS), st.integers(0, 99)
    ),
    st.tuples(st.just("remove"), st.sampled_from(MACHINES), st.sampled_from(PATHS)),
)
# One step: a txn of 1-3 mutations, or a compaction.
_step = st.one_of(
    st.lists(_op, min_size=1, max_size=3),
    st.just("compact"),
)


def _to_store_ops(ops):
    out = []
    for op in ops:
        if op[0] == "add":
            out.append(("add", _rec(op[1], op[2], op[3])))
        else:
            out.append(("remove", op[1], op[2]))
    return out


def _apply_model(state, ops):
    """Reference semantics: ordered list, remove filters, add appends."""
    for op in ops:
        if op[0] == "add":
            state = state + [_rec(op[1], op[2], op[3])]
        else:
            state = [r for r in state if _key(r) != (op[1], op[2])]
    return state


def _replay(base, events, reset):
    """What a watcher does with one ``changes_since`` batch."""
    state = [] if reset else list(base)
    for event in events:
        if event["action"] == "add":
            state.append(GnsRecord.from_dict(event["record"]))
        else:
            state = [r for r in state if _key(r) != (event["machine"], event["path"])]
    return state


class TestConvergence:
    @given(steps=st.lists(_step, min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_watchers_from_any_revision_converge(self, steps):
        store = RecordStore()
        try:
            # states[r] = model record list at revision r.
            states = {0: []}
            for step in steps:
                if step == "compact":
                    store.compact()
                else:
                    before = store.revision()
                    store.txn(_to_store_ops(step))
                    model = _apply_model(states[before], step)
                    # txn bumps the revision once per mutation; fill in
                    # the intermediate states (one op at a time).
                    for i in range(1, len(step) + 1):
                        states[before + i] = _apply_model(states[before], step[:i])
            final = store.records()
            final_rev = store.revision()
            # Model and store agree on the end state.
            assert [(_key(r), r.local_path) for r in final] == [
                (_key(r), r.local_path) for r in states[final_rev]
            ]
            # A watcher starting at ANY historical revision converges.
            for start in range(0, final_rev + 1):
                events, revision, reset = store.changes_since("default", start)
                assert revision == final_rev
                replayed = _replay(states[start], events, reset)
                assert [(_key(r), r.local_path) for r in replayed] == [
                    (_key(r), r.local_path) for r in final
                ], f"watcher from revision {start} diverged"
                # Replay is complete: watching again from the returned
                # revision yields nothing.
                events2, _, reset2 = store.changes_since("default", revision)
                assert events2 == [] and not reset2
        finally:
            store.close()

    @given(steps=st.lists(_step, min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_revision_never_goes_backwards(self, steps):
        store = RecordStore()
        try:
            last = 0
            for step in steps:
                if step == "compact":
                    store.compact()
                else:
                    store.txn(_to_store_ops(step))
                now = store.revision()
                assert now >= last
                assert store.compacted() <= now
                last = now
        finally:
            store.close()


_ns_step = st.tuples(st.sampled_from(("ns-a", "ns-b", "ns-c")), st.lists(_op, min_size=1, max_size=2))


class TestIsolation:
    @given(steps=st.lists(_ns_step, min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_namespaces_are_airtight(self, steps):
        store = RecordStore()
        try:
            store.set_token("ns-a", "tok-a")
            store.set_token("ns-b", "tok-b")  # ns-c stays open
            tokens = {"ns-a": "tok-a", "ns-b": "tok-b", "ns-c": None}
            models = {ns: [] for ns in tokens}
            for ns, ops in steps:
                # The server gates every mutation on the bearer token
                # before touching state; model that same sequence here.
                store.check_token(ns, tokens[ns])
                store.txn(_to_store_ops(ops), ns=ns)
                models[ns] = _apply_model(models[ns], ops)
            for ns in tokens:
                # Records and revisions are per-namespace.
                assert [(_key(r), r.local_path) for r in store.records(ns)] == [
                    (_key(r), r.local_path) for r in models[ns]
                ]
                # The change feed for ns replays ONLY ns's mutations.
                events, revision, reset = store.changes_since(ns, 0)
                assert revision == store.revision(ns)
                replayed = _replay([], events, reset)
                assert [(_key(r), r.local_path) for r in replayed] == [
                    (_key(r), r.local_path) for r in models[ns]
                ]
                own_mutations = sum(len(ops) for n, ops in steps if n == ns)
                assert revision == own_mutations
        finally:
            store.close()

    def test_wrong_token_rejected_before_state_changes(self):
        store = RecordStore()
        try:
            store.set_token("tenant", "s3cret")
            with pytest.raises(GnsAuthError):
                store.check_token("tenant", "wrong")
            with pytest.raises(GnsAuthError):
                store.check_token("tenant", None)
            store.check_token("tenant", "s3cret")
            store.check_token("open-ns", None)  # no token configured: open
        finally:
            store.close()
