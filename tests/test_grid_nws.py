"""Unit + property tests for the Network Weather Service."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.nws import Forecast, Forecaster, Measurement, NetworkWeatherService


class TestMeasurement:
    def test_validation(self):
        with pytest.raises(ValueError):
            Measurement(time=0, bandwidth=0, latency=0)
        with pytest.raises(ValueError):
            Measurement(time=0, bandwidth=1e6, latency=-1)


class TestForecast:
    def test_transfer_time(self):
        fc = Forecast(bandwidth=1e6, latency=0.5, method="mean")
        assert fc.transfer_time(2_000_000) == pytest.approx(2.5)


class TestForecaster:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Forecaster().forecast()

    def test_single_value_is_last(self):
        f = Forecaster()
        f.observe(5.0)
        value, method = f.forecast()
        assert value == 5.0
        assert method == "last"

    def test_constant_series_predicts_constant(self):
        f = Forecaster()
        for _ in range(10):
            f.observe(3.0)
        value, _ = f.forecast()
        assert value == pytest.approx(3.0)

    def test_median_wins_with_outliers(self):
        """A series that is constant except rare spikes favours the
        median predictor (classic NWS behaviour)."""
        f = Forecaster()
        series = [10.0] * 4 + [100.0] + [10.0] * 4 + [100.0] + [10.0] * 6
        for v in series:
            f.observe(v)
        value, method = f.forecast()
        assert method == "median"
        assert value == pytest.approx(10.0)

    def test_window_bounds_history(self):
        f = Forecaster(window=4)
        for v in [100, 100, 100, 1, 1, 1, 1]:
            f.observe(v)
        assert len(f) == 4
        value, _ = f.forecast()
        assert value == pytest.approx(1.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Forecaster(window=0)

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_forecast_within_history_range(self, values):
        """Any predictor output lies within [min, max] of its history —
        they are all convex combinations or order statistics."""
        f = Forecaster()
        for v in values:
            f.observe(v)
        pred, _ = f.forecast()
        assert min(values) - 1e-9 <= pred <= max(values) + 1e-9


class TestNetworkWeatherService:
    def _nws(self) -> NetworkWeatherService:
        nws = NetworkWeatherService()
        for i in range(5):
            nws.record("src1", "dst", Measurement(time=i, bandwidth=10e6, latency=0.01))
            nws.record("src2", "dst", Measurement(time=i, bandwidth=1e6, latency=0.3))
        return nws

    def test_has_data(self):
        nws = self._nws()
        assert nws.has_data("src1", "dst")
        assert not nws.has_data("dst", "src1")

    def test_last(self):
        nws = self._nws()
        assert nws.last("src1", "dst").bandwidth == 10e6
        with pytest.raises(KeyError):
            nws.last("x", "y")

    def test_forecast_unknown_path_raises(self):
        with pytest.raises(KeyError):
            NetworkWeatherService().forecast("a", "b")

    def test_best_source_prefers_fast_path(self):
        nws = self._nws()
        assert nws.best_source(["src1", "src2"], "dst", 10_000_000) == "src1"

    def test_best_source_small_transfer_prefers_low_latency(self):
        nws = NetworkWeatherService()
        for i in range(3):
            nws.record("fat", "dst", Measurement(time=i, bandwidth=100e6, latency=1.0))
            nws.record("near", "dst", Measurement(time=i, bandwidth=1e6, latency=0.001))
        assert nws.best_source(["fat", "near"], "dst", 1000) == "near"

    def test_best_source_unmeasured_fallback(self):
        nws = self._nws()
        assert nws.best_source(["unknown1", "unknown2"], "dst", 100) == "unknown1"

    def test_best_source_empty_returns_none(self):
        assert NetworkWeatherService().best_source([], "dst", 1) is None

    def test_adaptation_to_changed_conditions(self):
        """After a path degrades, the forecast should track downward and
        flip the best-source decision — the FM's dynamic re-map input."""
        nws = NetworkWeatherService(window=8)
        for i in range(8):
            nws.record("a", "dst", Measurement(time=i, bandwidth=10e6, latency=0.01))
            nws.record("b", "dst", Measurement(time=i, bandwidth=5e6, latency=0.01))
        assert nws.best_source(["a", "b"], "dst", 50_000_000) == "a"
        for i in range(8, 16):
            nws.record("a", "dst", Measurement(time=i, bandwidth=0.5e6, latency=0.01))
        assert nws.best_source(["a", "b"], "dst", 50_000_000) == "b"
