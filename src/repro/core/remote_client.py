"""Remote File Client: proxy access and copy-in/copy-out.

Section 3.1 describes the two remote strategies the FM can choose:

* **copy** — "the remote file can be copied to the local machine, and
  then local operations can be performed.  If the file is modified it
  can be copied back when it is CLOSED."  Implemented by
  :class:`CopyInOutFile`.
* **proxy** — "the FM can access the file on the remote machine using a
  proxy file server" (our GridFTP-like block server).  Implemented by
  :class:`RemoteProxyFile`, a file-like object that fetches blocks on
  demand with read-ahead and a small LRU block cache.
"""

from __future__ import annotations

import io
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple

from ..ioutil import ReadIntoFromRead
from ..transport.gridftp import DEFAULT_BLOCK, GridFtpClient

__all__ = ["RemoteProxyFile", "CopyInOutFile", "RemoteFileClient"]


class RemoteProxyFile(ReadIntoFromRead, io.RawIOBase):
    """File-like proxy over a remote file, block at a time.

    Reads fetch ``block_size`` aligned blocks and keep the most recent
    ``cache_blocks`` of them, so sequential legacy read loops make one
    RPC per block rather than one per READ call.  Writes go straight
    through (write-through, no local buffering) to keep close() simple.
    """

    def __init__(
        self,
        client: GridFtpClient,
        path: str,
        writable: bool = False,
        block_size: int = DEFAULT_BLOCK,
        cache_blocks: int = 8,
    ):
        super().__init__()
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self._client = client
        self._path = path
        self._writable = writable
        self._block_size = block_size
        self._pos = 0
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self._cache_blocks = max(1, cache_blocks)
        self._size_cache: Optional[int] = None
        self.rpc_reads = 0  # observable for tests/policy

    # -- capabilities ----------------------------------------------------------
    def readable(self) -> bool:
        return True

    def writable(self) -> bool:
        return self._writable

    def seekable(self) -> bool:
        return True

    # -- geometry ----------------------------------------------------------
    def _size(self, refresh: bool = False) -> int:
        if self._size_cache is None or refresh:
            self._size_cache = self._client.size(self._path)
        return self._size_cache

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        if whence == os.SEEK_SET:
            self._pos = offset
        elif whence == os.SEEK_CUR:
            self._pos += offset
        elif whence == os.SEEK_END:
            self._pos = self._size(refresh=True) + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if self._pos < 0:
            raise ValueError("negative seek position")
        return self._pos

    def tell(self) -> int:
        return self._pos

    # -- reads -----------------------------------------------------------
    def _fetch_block(self, block_no: int) -> bytes:
        cached = self._cache.get(block_no)
        if cached is not None:
            self._cache.move_to_end(block_no)
            return cached
        data = self._client.read_block(
            self._path, block_no * self._block_size, self._block_size
        )
        self.rpc_reads += 1
        self._cache[block_no] = data
        while len(self._cache) > self._cache_blocks:
            self._cache.popitem(last=False)
        return data

    def read(self, size: int = -1) -> bytes:  # type: ignore[override]
        if size is None or size < 0:
            size = max(0, self._size(refresh=True) - self._pos)
        out = bytearray()
        while size > 0:
            block_no, inner = divmod(self._pos, self._block_size)
            block = self._fetch_block(block_no)
            if inner >= len(block):
                break  # EOF
            take = min(size, len(block) - inner)
            out += block[inner : inner + take]
            self._pos += take
            size -= take
            if len(block) < self._block_size and inner + take >= len(block):
                break  # short block == end of file
        return bytes(out)

    # -- writes -----------------------------------------------------------
    def write(self, data) -> int:  # type: ignore[override]
        if not self._writable:
            raise io.UnsupportedOperation("file not open for writing")
        data = bytes(data)
        if data:
            self._client.write_block(self._path, self._pos, data)
            # Invalidate cached blocks the write touched.
            first = self._pos // self._block_size
            last = (self._pos + len(data) - 1) // self._block_size
            for b in range(first, last + 1):
                self._cache.pop(b, None)
            self._pos += len(data)
            self._size_cache = None
        return len(data)


class CopyInOutFile(ReadIntoFromRead, io.RawIOBase):
    """Whole-file copy-in on open, copy-out on close (if modified).

    With ``verify=True`` the local copy's SHA-256 is compared against
    the server's after the fetch (end-to-end integrity over however
    many blocks/streams the transfer used).
    """

    def __init__(
        self,
        client: GridFtpClient,
        remote_path: str,
        mode: str,
        scratch_dir: Optional[Path] = None,
        verify: bool = False,
    ):
        super().__init__()
        self._client = client
        self._remote_path = remote_path
        self._verify = verify
        core = mode.replace("b", "").replace("t", "")
        self._reading = "r" in core or "+" in core
        self._writing = any(f in core for f in ("w", "a")) or "+" in core
        self._dirty = False
        if scratch_dir is not None:
            Path(scratch_dir).mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix="fm-copy-", dir=str(scratch_dir) if scratch_dir else None
        )
        os.close(fd)
        self._local_path = Path(tmp)
        if core in ("r", "r+", "a", "a+"):
            if not client.exists(remote_path):
                self._local_path.unlink(missing_ok=True)
                raise FileNotFoundError(remote_path)
            client.fetch_file(remote_path, self._local_path)
            if verify:
                self._verify_against_remote()
        self._fh = open(self._local_path, self._local_mode(core))
        if core.startswith("a"):
            self._fh.seek(0, os.SEEK_END)

    def _verify_against_remote(self) -> None:
        import hashlib

        digest = hashlib.sha256()
        with open(self._local_path, "rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 20), b""):
                digest.update(chunk)
        remote = self._client.checksum(self._remote_path)
        if digest.hexdigest() != remote:
            self._local_path.unlink(missing_ok=True)
            raise IOError(
                f"copy-in of {self._remote_path!r} failed checksum verification "
                f"(local {digest.hexdigest()[:12]}…, remote {remote[:12]}…)"
            )

    @staticmethod
    def _local_mode(core: str) -> str:
        # The local scratch copy always allows read+write so seeks work.
        return {"r": "rb", "r+": "r+b", "w": "w+b", "w+": "w+b", "a": "r+b", "a+": "r+b"}[core]

    @property
    def local_path(self) -> Path:
        return self._local_path

    def readable(self) -> bool:
        return self._reading

    def writable(self) -> bool:
        return self._writing

    def seekable(self) -> bool:
        return True

    def read(self, size: int = -1) -> bytes:  # type: ignore[override]
        if not self._reading:
            raise io.UnsupportedOperation("file not open for reading")
        return self._fh.read(size)

    def write(self, data) -> int:  # type: ignore[override]
        if not self._writing:
            raise io.UnsupportedOperation("file not open for writing")
        n = self._fh.write(bytes(data))
        self._dirty = True
        return n

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        return self._fh.seek(offset, whence)

    def tell(self) -> int:
        return self._fh.tell()

    def close(self) -> None:
        if self.closed:
            return
        try:
            self._fh.flush()
            if self._dirty:
                self._client.store_file(self._local_path, self._remote_path)
        finally:
            self._fh.close()
            self._local_path.unlink(missing_ok=True)
            super().close()


class RemoteFileClient:
    """Factory choosing proxy vs copy for one remote server."""

    def __init__(self, client: GridFtpClient, scratch_dir: Optional[Path] = None):
        self.client = client
        self.scratch_dir = scratch_dir

    def open_proxy(self, path: str, mode: str = "r", block_size: int = DEFAULT_BLOCK) -> RemoteProxyFile:
        core = mode.replace("b", "").replace("t", "")
        writable = any(f in core for f in ("w", "a", "+"))
        if core in ("r", "r+", "a", "a+") and not self.client.exists(path):
            raise FileNotFoundError(path)
        if core in ("w", "w+"):
            self.client.write_block(path, 0, b"", truncate=True)
        f = RemoteProxyFile(self.client, path, writable=writable, block_size=block_size)
        if core.startswith("a"):
            f.seek(0, os.SEEK_END)
        return f

    def open_copy(self, path: str, mode: str = "r", verify: bool = False) -> CopyInOutFile:
        return CopyInOutFile(
            self.client, path, mode, scratch_dir=self.scratch_dir, verify=verify
        )
