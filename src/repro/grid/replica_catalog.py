"""Replica catalogue (Globus Replica Catalogue / SRB analogue).

Maps *logical* file names to sets of physical replicas
(``host:path``).  The FM queries it when the GNS marks a file as
replicated, then uses the NWS to pick the cheapest replica — and, for
read-only opens, may re-query mid-run and switch replicas when network
conditions change (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

__all__ = ["Replica", "ReplicaCatalog"]


@dataclass(frozen=True)
class Replica:
    """One physical copy of a logical file."""

    host: str
    path: str
    size: Optional[int] = None

    def __str__(self) -> str:
        return f"{self.host}:{self.path}"


class ReplicaCatalog:
    """Logical-name → replica-set mapping with registration history."""

    def __init__(self) -> None:
        self._entries: Dict[str, List[Replica]] = {}

    def register(self, logical_name: str, replica: Replica) -> None:
        """Add a replica; registering the same (host, path) twice updates size."""
        replicas = self._entries.setdefault(logical_name, [])
        for i, existing in enumerate(replicas):
            if existing.host == replica.host and existing.path == replica.path:
                replicas[i] = replica
                return
        replicas.append(replica)

    def unregister(self, logical_name: str, host: str, path: str) -> bool:
        """Remove one replica; returns True if it existed."""
        replicas = self._entries.get(logical_name, [])
        for i, existing in enumerate(replicas):
            if existing.host == host and existing.path == path:
                del replicas[i]
                if not replicas:
                    del self._entries[logical_name]
                return True
        return False

    def lookup(self, logical_name: str) -> List[Replica]:
        """All replicas of a logical file (copy; empty list if unknown)."""
        return list(self._entries.get(logical_name, []))

    def exists(self, logical_name: str) -> bool:
        return logical_name in self._entries

    def logical_names(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def hosts_holding(self, logical_name: str) -> Set[str]:
        return {r.host for r in self.lookup(logical_name)}

    def __len__(self) -> int:
        return len(self._entries)
