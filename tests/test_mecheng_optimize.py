"""Tests for the hole-shape design study and in-memory execution."""

import pytest

from repro.apps.mecheng.chammy import HoleShape
from repro.apps.mecheng.optimize import (
    best_by_life,
    best_by_stress,
    evaluate_shape,
    grid_study,
    optimize_shape,
)
from repro.workflow.localio import MemoryStageIO, run_workflow_in_memory
from repro.workflow.spec import Stage, Workflow, WorkflowError

FAST_KW = {"n_boundary": 32, "n_rings": 8}


class TestMemoryStageIO:
    def test_text_roundtrip(self):
        io_a = MemoryStageIO()
        with io_a.open("f.txt", "w") as fh:
            fh.write("hello\n")
        with io_a.open("f.txt", "r") as fh:
            assert fh.read() == "hello\n"

    def test_binary_roundtrip(self):
        io_a = MemoryStageIO()
        with io_a.open("f.bin", "wb") as fh:
            fh.write(b"\x00\x01")
        with io_a.open("f.bin", "rb") as fh:
            assert fh.read() == b"\x00\x01"

    def test_append(self):
        io_a = MemoryStageIO()
        with io_a.open("f", "w") as fh:
            fh.write("a")
        with io_a.open("f", "a") as fh:
            fh.write("b")
        with io_a.open("f") as fh:
            assert fh.read() == "ab"

    def test_missing_read_raises(self):
        with pytest.raises(FileNotFoundError):
            MemoryStageIO().open("nope", "r")

    def test_params(self):
        io_a = MemoryStageIO(params={"n": 5})
        assert io_a.param("n") == 5
        assert io_a.param("missing", "dflt") == "dflt"

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            MemoryStageIO().open("f", "r+")

    def test_seeded_inputs(self):
        io_a = MemoryStageIO(files={"seed": b"xyz"})
        with io_a.open("seed", "rb") as fh:
            assert fh.read() == b"xyz"


class TestRunInMemory:
    def test_stage_ordering_respected(self):
        log = []

        def first(io):
            log.append("first")
            with io.open("f", "w") as fh:
                fh.write("1")

        def second(io):
            with io.open("f") as fh:
                assert fh.read() == "1"
            log.append("second")

        wf = Workflow(
            "order",
            [
                Stage("second", reads=("f",), func=second),
                Stage("first", writes=("f",), func=first),
            ],
        )
        files = run_workflow_in_memory(wf)
        assert log == ["first", "second"]
        assert files["f"] == b"1"

    def test_missing_func_rejected(self):
        wf = Workflow("nf", [Stage("s")])
        with pytest.raises(WorkflowError):
            run_workflow_in_memory(wf)


class TestDesignStudy:
    def test_evaluate_circle(self):
        point = evaluate_shape(HoleShape(), **FAST_KW)
        assert point.life > 0
        assert point.peak_stress > 2.0 * 100e6  # concentration near 3x

    def test_grid_study_covers_all_points(self):
        points = grid_study([2.0, 3.0], [0.9, 1.1], **FAST_KW)
        assert len(points) == 4
        combos = {(p.shape.power, p.shape.aspect) for p in points}
        assert combos == {(2.0, 0.9), (2.0, 1.1), (3.0, 0.9), (3.0, 1.1)}

    def test_higher_stress_means_lower_life(self):
        """Across the design grid, life anti-correlates with peak stress
        (Paris law makes life ~ stress^-3)."""
        points = grid_study([2.0, 3.0, 4.0], [0.8, 1.0, 1.3], **FAST_KW)
        ordered_by_stress = sorted(points, key=lambda p: p.peak_stress)
        assert ordered_by_stress[0].life > ordered_by_stress[-1].life

    def test_best_selectors(self):
        points = grid_study([2.0, 4.0], [1.0], **FAST_KW)
        assert best_by_life(points).life == max(p.life for p in points)
        assert best_by_stress(points).peak_stress == min(p.peak_stress for p in points)

    @pytest.mark.slow
    def test_optimizer_improves_or_matches_start(self):
        start = evaluate_shape(HoleShape(), **FAST_KW)
        refined = optimize_shape(start=HoleShape(), max_evals=12, **FAST_KW)
        assert refined.life >= start.life * 0.999

    def test_optimizer_respects_bounds(self):
        refined = optimize_shape(
            start=HoleShape(power=2.0, aspect=1.0),
            bounds=((1.5, 3.0), (0.8, 1.2)),
            max_evals=10,
            **FAST_KW,
        )
        assert 1.5 <= refined.shape.power <= 3.0
        assert 0.8 <= refined.shape.aspect <= 1.2

    def test_deterministic(self):
        a = evaluate_shape(HoleShape(power=3.0), **FAST_KW)
        b = evaluate_shape(HoleShape(power=3.0), **FAST_KW)
        assert a.life == b.life
        assert a.peak_stress == b.peak_stress
