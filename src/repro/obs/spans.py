"""Hierarchical span tracing with cross-thread context propagation.

The paper's FM sat on an interception layer precisely because seeing
*when* each IO call happens is as valuable as counting them.  This
module supplies that timeline: nested spans (``span("workflow")`` →
``span("task")`` → per-IO events) recorded as JSON-lines, one record
per finished span, cheap enough to leave compiled in.

Design points:

* **thread-local stack** — ``tracer.span(...)`` nests under whatever
  span is active on the current thread.
* **explicit propagation** — a runner spawning worker threads captures
  :meth:`Tracer.current_context` and re-attaches it inside the worker
  with :meth:`Tracer.attach`, so task spans parent under the workflow
  span even though they finish on different threads.
* **sinks** — anything with ``write(dict)``; :class:`JsonLinesSink`
  persists to disk for ``python -m repro.obs.report``,
  :class:`MemorySink` collects in-memory for tests.  With no sink
  configured, spans still nest (context is maintained) but nothing is
  written and per-IO :meth:`Tracer.event` calls are no-ops.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, NamedTuple, Optional, TextIO, Union

__all__ = [
    "SpanContext",
    "Span",
    "Tracer",
    "JsonLinesSink",
    "MemorySink",
    "get_tracer",
    "context_from_wire",
]

_ids = itertools.count(1)
_id_lock = threading.Lock()

#: Distinguishes this process's span ids from every other process in a
#: merged multi-process trace.  A per-process counter alone would
#: collide the moment two trace files are merged, which would corrupt
#: the parent links the distributed report is built on.
_PROC_NONCE = os.urandom(4).hex()


def _new_id() -> str:
    with _id_lock:
        return f"{_PROC_NONCE}-{next(_ids):x}"


def _default_proc() -> str:
    """This process's clock-domain label in merged traces.

    ``REPRO_OBS_PROC`` overrides for readable labels ("gridftp-1");
    the default is unique per (host, pid) so records from different
    processes never share a monotonic-clock domain by accident.
    """
    label = os.environ.get("REPRO_OBS_PROC")
    if label:
        return label
    try:
        host = socket.gethostname()
    except OSError:  # pragma: no cover - hostname lookup failure
        host = "localhost"
    return f"{host}:{os.getpid()}"


class SpanContext(NamedTuple):
    """The (trace, span) coordinates needed to parent remote work."""

    trace_id: str
    span_id: str

    def to_wire(self) -> List[str]:
        """Encoding carried in the RPC ``_trace`` header field."""
        return [self.trace_id, self.span_id]


def context_from_wire(value: Any) -> Optional["SpanContext"]:
    """Parse a ``_trace`` header field; None for absent/malformed.

    Malformed values are dropped rather than raised: a trace header
    must never be able to fail an otherwise-valid RPC.
    """
    if (
        isinstance(value, (list, tuple))
        and len(value) == 2
        and all(isinstance(part, str) and part for part in value)
    ):
        return SpanContext(value[0], value[1])
    return None


class Span:
    """One timed, named, attributed interval in a trace."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs", "start", "end", "thread")

    def __init__(self, name: str, trace_id: str, span_id: str, parent_id: Optional[str],
                 attrs: Dict[str, Any], start: float):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None
        self.thread = threading.current_thread().name

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes mid-span."""
        self.attrs.update(attrs)
        return self

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def to_record(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end,
            "dur": (self.end - self.start) if self.end is not None else None,
            "thread": self.thread,
            "attrs": self.attrs,
        }


class MemorySink:
    """In-memory sink for tests; records are plain dicts."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def write(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self.records.append(record)

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Finished span records, optionally filtered by span name."""
        with self._lock:
            return [
                r for r in self.records
                if r.get("type") == "span" and (name is None or r.get("name") == name)
            ]

    def close(self) -> None:  # symmetry with JsonLinesSink
        pass


class JsonLinesSink:
    """Appends one JSON object per line to a file (or text stream)."""

    def __init__(self, target: Union[str, Path, TextIO]):
        self._lock = threading.Lock()
        if hasattr(target, "write"):
            self._fh: TextIO = target  # type: ignore[assignment]
            self._own = False
        else:
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(path, "a", encoding="utf-8")
            self._own = True

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._own:
                self._fh.close()

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _Frame(NamedTuple):
    context: SpanContext
    virtual: bool  # True for attach()ed remote parents (no local Span)


class Tracer:
    """Produces nested spans and point events; writes them to a sink."""

    #: Finished-span records retained for the ``_obs.spans_tail`` op.
    TAIL_SPANS = 256

    def __init__(self, sink: Optional[Any] = None, clock=time.perf_counter):
        self.sink = sink
        self._clock = clock
        self._tls = threading.local()
        #: Clock-domain label stamped onto every record (multi-process merge).
        self.proc = _default_proc()
        #: Ring of the most recent finished-span records, kept whenever a
        #: sink is configured so a live peer can answer ``_obs.spans_tail``
        #: without touching the trace file.
        self.tail: Deque[Dict[str, Any]] = deque(maxlen=self.TAIL_SPANS)

    # -- configuration -------------------------------------------------------
    def configure(self, sink: Optional[Any]) -> Optional[Any]:
        """Swap the sink; returns the previous one."""
        prior, self.sink = self.sink, sink
        return prior

    # -- context -------------------------------------------------------------
    def _stack(self) -> List[_Frame]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current_context(self) -> Optional[SpanContext]:
        """The innermost active span context on this thread (if any)."""
        stack = self._stack()
        return stack[-1].context if stack else None

    @contextmanager
    def attach(self, context: Optional[SpanContext]) -> Iterator[None]:
        """Adopt ``context`` as this thread's current parent span.

        The cross-thread propagation primitive: a worker thread wraps
        its body in ``attach(ctx)`` so spans it opens parent under the
        spawning thread's span.  ``None`` is accepted and is a no-op,
        so callers need not special-case "tracing not active".
        """
        if context is None:
            yield
            return
        stack = self._stack()
        stack.append(_Frame(context, virtual=True))
        try:
            yield
        finally:
            stack.pop()

    # -- spans ----------------------------------------------------------------
    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[SpanContext] = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Open a nested span; emitted to the sink when the block exits."""
        stack = self._stack()
        effective_parent = parent if parent is not None else (
            stack[-1].context if stack else None
        )
        trace_id = effective_parent.trace_id if effective_parent else _new_id()
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=_new_id(),
            parent_id=effective_parent.span_id if effective_parent else None,
            attrs=dict(attrs),
            start=self._clock(),
        )
        stack.append(_Frame(span.context, virtual=False))
        try:
            yield span
        except BaseException as exc:
            span.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            span.end = self._clock()
            stack.pop()
            if self.sink is not None:
                self._emit(span)

    # -- stack-free spans ------------------------------------------------------
    def start_span(
        self, name: str, parent: Optional[SpanContext] = None, **attrs: Any
    ) -> Span:
        """Open a span WITHOUT touching the thread-local stack.

        The async engine needs this: a native-coroutine handler's span
        brackets awaits, and other coroutines interleave on the same
        loop thread between them — a stack push there would be popped
        by the wrong coroutine.  Pair with :meth:`finish_span`.
        """
        trace_id = parent.trace_id if parent is not None else _new_id()
        return Span(
            name=name,
            trace_id=trace_id,
            span_id=_new_id(),
            parent_id=parent.span_id if parent is not None else None,
            attrs=dict(attrs),
            start=self._clock(),
        )

    def finish_span(self, span: Span, error: Optional[str] = None) -> None:
        """Close and emit a span opened with :meth:`start_span`."""
        span.end = self._clock()
        if error is not None:
            span.attrs.setdefault("error", error)
        if self.sink is not None:
            self._emit(span)

    def _emit(self, span: Span) -> None:
        record = span.to_record()
        record["proc"] = self.proc
        self.sink.write(record)
        self.tail.append(record)

    def event(self, name: str, **attrs: Any) -> None:
        """A zero-duration point record under the current span.

        No-op without a sink, so per-IO call sites can stay compiled
        in: the cost when idle is one attribute load and a comparison.
        """
        if self.sink is None:
            return
        now = self._clock()
        ctx = self.current_context()
        self.sink.write(
            {
                "type": "event",
                "name": name,
                "trace": ctx.trace_id if ctx else None,
                "parent": ctx.span_id if ctx else None,
                "time": now,
                "thread": threading.current_thread().name,
                "proc": self.proc,
                "attrs": attrs,
            }
        )

    def write_metrics(self, registry) -> None:
        """Embed a metrics snapshot record into the trace stream."""
        if self.sink is None:
            return
        self.sink.write(
            {
                "type": "metrics",
                "time": self._clock(),
                "proc": self.proc,
                "snapshot": registry.snapshot(),
            }
        )


#: Process-wide default tracer, analogous to the default registry.
_DEFAULT_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default :class:`Tracer`."""
    return _DEFAULT_TRACER
