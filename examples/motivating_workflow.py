#!/usr/bin/env python3
"""The paper's Figure 1 motivating workflow, exercising all six IO modes.

Phase 1 (machine1) reads an *instrument stream* and a *database export*;
its output feeds Phase 2 (machine2), which also reads a *replicated*
reference dataset chosen by NWS forecasts; Phase 2's output streams
directly into Phase 3 (machine3), which writes the final product.

IO modes used, per Section 2's list:
  1. local file IO              — phase 1 scratch files
  2. copy between machines      — database export copied to machine1
  3. remote file IO             — instrument data proxied from its host
  4. remote replicated IO       — reference data, best replica, proxied
  5. local replicated IO        — calibration table, copied in
  6. direct message passing     — phase2 → phase3 Grid Buffer stream

Run:  python examples/motivating_workflow.py
"""

import tempfile
import threading
from pathlib import Path

from repro.core import FileMultiplexer, GridContext, ReplicaSelector
from repro.gns import BufferEndpoint, GnsRecord, IOMode, LocalGnsClient, NameService
from repro.grid import Measurement, NetworkWeatherService, Replica, ReplicaCatalog
from repro.gridbuffer import GridBufferServer
from repro.transport import GridFtpServer, HostRegistry


def seed_world(base: Path):
    hosts = HostRegistry(base / "hosts")
    for name in ("machine1", "machine2", "machine3", "instrument-host", "db-host", "mirror-eu", "mirror-au"):
        hosts.add_host(name)
    # Instrument samples, database export, replicated reference data.
    hosts.host("instrument-host").resolve("/stream/run-0042.raw").parent.mkdir(parents=True)
    hosts.host("instrument-host").resolve("/stream/run-0042.raw").write_bytes(
        bytes(i % 251 for i in range(50_000))
    )
    hosts.host("db-host").resolve("/exports/catalog.csv").parent.mkdir(parents=True)
    hosts.host("db-host").resolve("/exports/catalog.csv").write_text(
        "".join(f"source{i},{i * 0.5}\n" for i in range(500))
    )
    for mirror in ("mirror-eu", "mirror-au"):
        p = hosts.host(mirror).resolve("/data/reference.tbl")
        p.parent.mkdir(parents=True)
        p.write_text(f"# served by {mirror}\n" + "".join(f"{i} {i**0.5:.6f}\n" for i in range(1000)))
    return hosts


def main() -> None:
    base = Path(tempfile.mkdtemp(prefix="griddles-fig1-"))
    hosts = seed_world(base)
    ftp = {
        name: GridFtpServer(hosts.host(name).root).start()
        for name in hosts.hosts()
    }
    buffer_server = GridBufferServer(cache_dir=base / "cache").start()

    catalog = ReplicaCatalog()
    catalog.register("lfn://reference", Replica("mirror-eu", "/data/reference.tbl"))
    catalog.register("lfn://reference", Replica("mirror-au", "/data/reference.tbl"))
    nws = NetworkWeatherService()
    for i in range(4):  # the AU mirror is much closer to machine2
        nws.record("mirror-eu", "machine2", Measurement(time=i, bandwidth=0.4e6, latency=0.3))
        nws.record("mirror-au", "machine2", Measurement(time=i, bandwidth=8e6, latency=0.004))

    ns = NameService(locate_buffer_server=lambda m: buffer_server.address)
    ns.add_all(
        [
            GnsRecord(machine="machine1", path="/in/instrument.raw", mode=IOMode.REMOTE,
                      remote_host="instrument-host", remote_path="/stream/run-0042.raw"),
            GnsRecord(machine="machine1", path="/in/catalog.csv", mode=IOMode.COPY,
                      remote_host="db-host", remote_path="/exports/catalog.csv"),
            GnsRecord(machine="machine2", path="/in/reference.tbl", mode=IOMode.REMOTE_REPLICA,
                      logical_name="lfn://reference"),
            GnsRecord(machine="machine2", path="/in/calibration.tbl", mode=IOMode.LOCAL_REPLICA,
                      logical_name="lfn://reference", local_path="/cache/calibration.tbl"),
            GnsRecord(machine="machine1", path="/flow/phase1-out.dat", mode=IOMode.BUFFER,
                      buffer=BufferEndpoint(stream="p1p2", cache=True)),
            GnsRecord(machine="machine2", path="/flow/phase1-out.dat", mode=IOMode.BUFFER,
                      buffer=BufferEndpoint(stream="p1p2", cache=True)),
            GnsRecord(machine="*", path="/flow/phase2-out.dat", mode=IOMode.BUFFER,
                      buffer=BufferEndpoint(stream="p2p3", cache=True)),
        ]
    )
    gns = LocalGnsClient(ns)
    selector = ReplicaSelector(catalog, nws)

    def fm_for(machine):
        return FileMultiplexer(GridContext(
            machine=machine, gns=gns, hosts=hosts,
            gridftp={name: s.address for name, s in ftp.items()},
            buffer_locator=lambda m: buffer_server.address,
            selector=selector, scratch_dir=base / "scratch",
        ))

    modes_seen = {}

    def phase1():
        fm = fm_for("machine1")
        raw = fm.open("/in/instrument.raw", "r")
        catalog_file = fm.open("/in/catalog.csv", "r")
        scratch = fm.open("/tmp/phase1-scratch.dat", "w")
        out = fm.open("/flow/phase1-out.dat", "w")
        instrument = raw.read()
        n_sources = len(catalog_file.read().splitlines())
        scratch.write(b"checkpoint")
        # "Process" the data: summarise instrument blocks per source.
        for i in range(n_sources // 50):
            block = instrument[i * 100 : (i + 1) * 100]
            out.write(f"{i} {sum(block)}\n".encode())
        for f in (raw, catalog_file, scratch, out):
            modes_seen[f.record.mode] = True
            f.close()
        fm.close()

    def phase2():
        fm = fm_for("machine2")
        upstream = fm.open("/flow/phase1-out.dat", "r")
        reference = fm.open("/in/reference.tbl", "r")
        calib = fm.open("/in/calibration.tbl", "r")
        out = fm.open("/flow/phase2-out.dat", "w")
        ref_lines = reference.read().decode().splitlines()
        served_by = ref_lines[0]
        calib.read(64)
        data = upstream.read().decode().splitlines()
        for line in data:
            idx, total = line.split()
            out.write(f"{idx} {int(total) * 2}\n".encode())
        out.write(f"# reference {served_by}\n".encode())
        for f in (upstream, reference, calib, out):
            modes_seen[f.record.mode] = True
            f.close()
        fm.close()

    def phase3():
        fm = fm_for("machine3")
        upstream = fm.open("/flow/phase2-out.dat", "r")
        final = fm.open("/out/final-product.dat", "w")
        final.write(upstream.read())
        for f in (upstream, final):
            modes_seen[f.record.mode] = True
            f.close()
        fm.close()

    print("running the Figure 1 workflow across 7 virtual hosts ...")
    threads = [threading.Thread(target=fn) for fn in (phase1, phase2, phase3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)

    product = hosts.host("machine3").resolve("/out/final-product.dat").read_text()
    print(f"final product: {len(product.splitlines())} lines; footer: {product.splitlines()[-1]!r}")
    print("IO modes exercised:")
    for mode in IOMode:
        mark = "x" if mode in modes_seen else " "
        print(f"  [{mark}] {mode.value}")
    assert set(modes_seen) == set(IOMode), "expected all six IO modes"
    assert "mirror-au" in product, "NWS should have picked the nearby replica"

    for s in ftp.values():
        s.stop()
    buffer_server.stop()
    print("all six IO mechanisms exercised in one workflow ✓")


if __name__ == "__main__":
    main()
