"""GNS client used by each File Multiplexer instance.

A thin RPC mirror of :class:`~repro.gns.server.NameService`; also
usable purely in-process via :class:`LocalGnsClient` when the workflow
runs inside one Python process (tests, examples, the simulator).
"""

from __future__ import annotations

import time
from typing import Tuple

from ..transport.tcp import RpcClient
from .records import GnsRecord
from .server import NameService

__all__ = ["GnsClient", "LocalGnsClient"]


class GnsClient:
    """Remote GNS access over TCP."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._rpc = RpcClient(host, port, timeout=timeout)

    def resolve(self, machine: str, path: str) -> GnsRecord:
        reply, _ = self._rpc.call("gns.resolve", {"machine": machine, "path": path})
        return GnsRecord.from_dict(reply["record"])

    def add(self, record: GnsRecord) -> None:
        self._rpc.call("gns.add", {"record": record.to_dict()})

    def remove(self, machine: str, path: str) -> int:
        reply, _ = self._rpc.call("gns.remove", {"machine": machine, "path": path})
        return int(reply["removed"])

    def list_records(self) -> list[GnsRecord]:
        reply, _ = self._rpc.call("gns.list", {})
        return [GnsRecord.from_dict(d) for d in reply["records"]]

    def announce(
        self,
        stream: str,
        role: str,
        machine: str,
        placement: str = "reader",
        wait: bool = True,
        poll_interval: float = 0.02,
        timeout: float = 30.0,
    ) -> Tuple[str, int]:
        """Announce an endpoint; optionally block until the buffer is placed.

        A writer may open before any reader exists (or vice versa); with
        ``wait=True`` the call polls until the matcher can name a buffer
        location, which mirrors the FM blocking the legacy OPEN call.
        """
        deadline = time.monotonic() + timeout
        while True:
            reply, _ = self._rpc.call(
                "gns.announce",
                {"stream": stream, "role": role, "machine": machine, "placement": placement},
            )
            if reply["located"] or not wait:
                return reply["host"], int(reply["port"])
            if time.monotonic() > deadline:
                raise TimeoutError(f"stream {stream!r} never acquired a buffer location")
            time.sleep(poll_interval)

    def pin_stream(self, stream: str, host: str, port: int, placement: str = "reader") -> None:
        self._rpc.call(
            "gns.pin", {"stream": stream, "host": host, "port": port, "placement": placement}
        )

    def close(self) -> None:
        self._rpc.close()

    def __enter__(self) -> "GnsClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LocalGnsClient:
    """Same interface, directly over an in-process :class:`NameService`."""

    def __init__(self, service: NameService):
        self.service = service

    def resolve(self, machine: str, path: str) -> GnsRecord:
        return self.service.resolve(machine, path)

    def add(self, record: GnsRecord) -> None:
        self.service.add(record)

    def remove(self, machine: str, path: str) -> int:
        return self.service.remove(machine, path)

    def list_records(self) -> list[GnsRecord]:
        return self.service.records()

    def announce(
        self,
        stream: str,
        role: str,
        machine: str,
        placement: str = "reader",
        wait: bool = True,
        poll_interval: float = 0.02,
        timeout: float = 30.0,
    ) -> Tuple[str, int]:
        deadline = time.monotonic() + timeout
        while True:
            binding = self.service.announce(stream, role, machine, placement)
            if binding.located or not wait:
                return binding.host, binding.port
            if time.monotonic() > deadline:
                raise TimeoutError(f"stream {stream!r} never acquired a buffer location")
            time.sleep(poll_interval)

    def pin_stream(self, stream: str, host: str, port: int, placement: str = "reader") -> None:
        self.service.pin_stream(stream, host, port, placement)

    def close(self) -> None:  # symmetry with GnsClient
        pass
