"""Secondary coverage: smaller behaviours not hit by the main suites."""

import socket
import struct

import pytest

from repro.sim.engine import Environment
from repro.transport.tcp import FrameError, recv_frame


class TestTcpLimits:
    def test_oversized_header_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 64 * 1024 * 1024))  # 64 MiB header claim
            with pytest.raises(FrameError, match="exceeds maximum"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestBufferCacheLifecycle:
    def test_drop_stream_closes_cache(self, tmp_path):
        from repro.gridbuffer.cache import BufferCache
        from repro.gridbuffer.service import GridBufferService

        cache = BufferCache(tmp_path / "c.cache")
        svc = GridBufferService()
        svc.create_stream("s", cache=cache)
        svc.register_reader("s", "r")
        svc.write("s", 0, b"payload")
        svc.drop_stream("s")
        # Cache file remains on disk (close without delete) but the
        # stream is gone.
        assert not svc.exists("s")
        assert (tmp_path / "c.cache").exists()


class TestPolicyKnobs:
    def test_setup_rtts_scales_copy_cost(self):
        from repro.core.policy import AccessEstimate, AccessPolicy

        est = AccessEstimate(file_size=1024, bandwidth=1e6, latency=0.1)
        cheap_setup = AccessPolicy(copy_setup_rtts=1.0).copy_cost(est)
        pricey_setup = AccessPolicy(copy_setup_rtts=5.0).copy_cost(est)
        assert pricey_setup > cheap_setup
        assert pricey_setup - cheap_setup == pytest.approx(4 * 0.2)


class TestForecasterInternals:
    def test_ewma_pathway_selectable(self):
        """A trending series should prefer a recency-weighted predictor
        (last or ewma) over the long-run mean."""
        from repro.grid.nws import Forecaster

        f = Forecaster()
        for v in [1, 2, 4, 8, 16, 32, 64, 128]:
            f.observe(float(v))
        value, method = f.forecast()
        assert method in ("last", "ewma")
        assert value > 32


class TestFmFileRemapContinuity:
    def test_remap_preserves_position(self, tmp_path):
        """After a re-map the handle continues at the same byte offset."""
        import io

        from repro.core.multiplexer import FMFile, OpenStats
        from repro.gns.records import GnsRecord, IOMode

        record = GnsRecord(machine="m", path="/f", mode=IOMode.LOCAL)
        first = io.BytesIO(b"A" * 100)
        second = io.BytesIO(b"B" * 100)
        calls = {"n": 0}

        # The hook is consulted every `remap_every` reads (including
        # before the very first); switch on its SECOND consultation so
        # some bytes are read from the original source first.
        def hook(_fmfile):
            calls["n"] += 1
            return second if calls["n"] == 2 else None

        f = FMFile(first, record, OpenStats(), remap_hook=hook, remap_every=2)
        out = b"".join(f.read(10) for _ in range(4))
        # Reads 1-2 come from A; the switch happens at offset 20 and the
        # replacement is seeked there, so B bytes continue seamlessly.
        assert out[:20] == b"A" * 20
        assert out[20:] == b"B" * 20
        assert second.tell() == 40  # continued from position 20, read 20 more
        assert f.stats.remaps == 1


class TestStoreScale:
    def test_many_items_fifo(self):
        from repro.sim.resources import Store

        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            for i in range(500):
                yield store.put(i)

        def consumer(env):
            for _ in range(500):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == list(range(500))


class TestWorkflowBuildFuncs:
    def test_build_wires_funcs(self):
        from repro.workflow.localio import run_workflow_in_memory
        from repro.workflow.spec import Workflow

        def write_it(io):
            with io.open("out", "w") as fh:
                fh.write("built")

        wf = Workflow.build("b", [{"name": "s", "writes": ["out"], "func": write_it}])
        files = run_workflow_in_memory(wf)
        assert files["out"] == b"built"


class TestTranslatingReaderEdge:
    def test_read_zero_bytes(self):
        import io as _io

        from repro.core.heterogeneity import FieldType, RecordSchema
        from repro.core.translating import TranslatingReader

        schema = RecordSchema([FieldType("x", "int32")])
        r = TranslatingReader(_io.BytesIO(struct.pack(">i", 5)), schema, "big")
        assert r.read(0) == b""
        assert r.read(4) == struct.pack("=i", 5)
