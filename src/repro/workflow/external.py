"""External (workflow-input) data sources for the simulated runner.

Section 3.1's remote-file modes apply not only to pipeline edges but to
a workflow's *inputs* — datasets that exist before the run (Figure 1's
database export and replicated files).  :class:`ExternalInput` declares
where such a file lives and how a consuming stage accesses it:

* ``"local"``  — already on the consumer's machine (no cost);
* ``"copy"``   — GridFTP bulk copy before the stage starts (whole file,
  latency paid ~once);
* ``"remote"`` — per-block proxy reads during the run, touching only
  ``read_fraction`` of the file (one round trip per block).

This is the discrete-event realisation of the
:class:`~repro.core.policy.AccessPolicy` cost model, so the policy's
closed-form copy-vs-proxy predictions can be validated against the
simulator (``benchmarks/bench_extension_remote_modes.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExternalInput", "REMOTE_BLOCK"]

#: Proxy-read granularity (matches the FM remote client's default).
REMOTE_BLOCK = 256 * 1024


@dataclass(frozen=True)
class ExternalInput:
    """Placement and access mode of one workflow-input file.

    Attributes
    ----------
    host:
        Machine holding the dataset.
    mode:
        ``"local"`` / ``"copy"`` / ``"remote"`` (see module docstring).
    read_fraction:
        Expected fraction of the file the consumer actually reads —
        only meaningful for ``"remote"``; copies always move the whole
        file.
    """

    host: str
    mode: str = "copy"
    read_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("local", "copy", "remote"):
            raise ValueError(f"mode must be local/copy/remote, got {self.mode!r}")
        if not 0.0 < self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in (0, 1]")
