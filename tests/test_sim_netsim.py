"""Unit tests for the simulated WAN."""

import pytest

from repro.sim.engine import Environment
from repro.sim.netsim import LOCALHOST_LINK, Link, LinkSpec, Network


def run_to_completion(env, evt):
    env.run()
    assert evt.triggered
    return env.now


class TestLinkSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=0, latency=0)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=1e6, latency=-1)

    def test_rtt(self):
        assert LinkSpec(bandwidth=1e6, latency=0.05).rtt == pytest.approx(0.1)


class TestLink:
    def test_message_time_is_latency_plus_serialisation(self):
        env = Environment()
        link = Link(env, LinkSpec(bandwidth=1e6, latency=0.5))
        evt = link.message(1_000_000)
        t = run_to_completion(env, evt)
        assert t == pytest.approx(0.5 + 1.0)

    def test_zero_byte_message_costs_latency_only(self):
        env = Environment()
        link = Link(env, LinkSpec(bandwidth=1e6, latency=0.25))
        evt = link.message(0)
        assert run_to_completion(env, evt) == pytest.approx(0.25)

    def test_concurrent_messages_share_bandwidth(self):
        env = Environment()
        link = Link(env, LinkSpec(bandwidth=1e6, latency=0.0))
        done = []

        def send(env):
            yield link.message(1_000_000)
            done.append(env.now)

        env.process(send(env))
        env.process(send(env))
        env.run()
        assert done == [pytest.approx(2.0)] * 2

    def test_negative_size_rejected(self):
        env = Environment()
        link = Link(env, LOCALHOST_LINK)
        with pytest.raises(ValueError):
            link.message(-1)


class TestNetwork:
    def _net(self, env):
        net = Network(env)
        net.connect("a", "b", LinkSpec(bandwidth=1e6, latency=0.1))
        return net

    def test_symmetric_lookup(self):
        env = Environment()
        net = self._net(env)
        assert net.spec("a", "b") == net.spec("b", "a")

    def test_loopback_implicit(self):
        env = Environment()
        net = self._net(env)
        assert net.spec("a", "a") == LOCALHOST_LINK

    def test_unknown_pair_raises_without_default(self):
        env = Environment()
        net = self._net(env)
        with pytest.raises(KeyError):
            net.spec("a", "zzz")

    def test_default_spec_fallback(self):
        env = Environment()
        net = Network(env, default=LinkSpec(bandwidth=5e5, latency=0.2))
        assert net.spec("x", "y").latency == 0.2

    def test_request_response_costs_one_rtt(self):
        env = Environment()
        net = self._net(env)
        evt = net.request_response("a", "b", 100, 100)
        env.run()
        assert evt.triggered
        # Two latencies + two tiny serialisations.
        assert env.now == pytest.approx(0.2 + 200 / 1e6, rel=1e-6)

    def test_bulk_transfer_latency_insensitive(self):
        env = Environment()
        net = self._net(env)
        evt = net.bulk_transfer("a", "b", 10_000_000)
        env.run()
        # setup (2 rtts = 0.4) + 10 s serialisation + final latency.
        assert env.now == pytest.approx(0.4 + 10.0 + 0.1, rel=1e-6)

    def test_windowed_stream_pays_per_window_rtt(self):
        env = Environment()
        net = Network(env)
        net.connect("a", "b", LinkSpec(bandwidth=1e9, latency=0.1))
        # 16 blocks of 1000 bytes, window 4 -> 4 acks; latency dominates.
        evt = net.windowed_stream("a", "b", 16_000, block_size=1000, window=4)
        env.run()
        # Each block pays one latency (0.1 * 16) + 4 ack latencies.
        assert env.now == pytest.approx(16 * 0.1 + 4 * 0.1, rel=0.05)

    def test_stream_slower_than_bulk_on_high_latency(self):
        """The Table 5 mechanism: per-block streams lose to bulk copies
        when latency is high."""
        env = Environment()
        net = Network(env)
        net.connect("au", "uk", LinkSpec(bandwidth=0.33 * 1024 * 1024, latency=0.32))
        nbytes = 10 * 1024 * 1024
        bulk = net.estimate_bulk_time("au", "uk", nbytes)
        stream = net.estimate_stream_time("au", "uk", nbytes, block_size=4096, window=8)
        assert stream > 2 * bulk

    def test_stream_competitive_on_lan(self):
        """On a LAN the per-block stream is the same order of magnitude
        as the bulk copy (its cost hides under compute overlap); on the
        WAN (previous test) it is many times worse."""
        env = Environment()
        net = Network(env)
        net.connect("m1", "m2", LinkSpec(bandwidth=10 * 1024 * 1024, latency=0.0005))
        nbytes = 10 * 1024 * 1024
        bulk = net.estimate_bulk_time("m1", "m2", nbytes)
        stream = net.estimate_stream_time("m1", "m2", nbytes, block_size=4096, window=8)
        assert stream < 3 * bulk

    def test_parallel_streams_validation(self):
        env = Environment()
        net = self._net(env)
        with pytest.raises(ValueError):
            net.bulk_transfer("a", "b", 100, streams=0)

    def test_windowed_stream_validation(self):
        env = Environment()
        net = self._net(env)
        with pytest.raises(ValueError):
            net.windowed_stream("a", "b", 100, block_size=0)
        with pytest.raises(ValueError):
            net.windowed_stream("a", "b", 100, block_size=10, window=0)
