"""Grid Buffer Client: the FM-facing face of direct connections.

"The Grid Buffer Client is responsible for implementing inter-process
communication.  It connects to a corresponding Grid Buffer Server on
the other host, and sends blocks of data for each local WRITE call."
(Section 4)

The FM asks the GNS matcher where the stream's buffer server lives
(reader-end or writer-end placement), then opens a writer or reader
adapter on it.  Connections to each distinct server are pooled per
client instance.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from ..gridbuffer.client import BufferReader, BufferWriter, GridBufferClient
from ..gns.records import BufferEndpoint

__all__ = ["GridBufferClientPool"]


class GridBufferClientPool:
    """Pool of :class:`GridBufferClient` keyed by server address."""

    def __init__(
        self,
        machine: str,
        default_timeout: float = 120.0,
        monitor: Optional[object] = None,
    ):
        self.machine = machine
        self.default_timeout = default_timeout
        self.monitor = monitor
        self._clients: Dict[Tuple[str, int], GridBufferClient] = {}
        self._lock = threading.Lock()

    def client_for(self, host: str, port: int) -> GridBufferClient:
        key = (host, port)
        with self._lock:
            client = self._clients.get(key)
            if client is None:
                client = GridBufferClient(
                    host,
                    port,
                    timeout=self.default_timeout,
                    monitor=self.monitor,
                    peer=host,
                )
                self._clients[key] = client
            return client

    def open_writer(
        self,
        endpoint: BufferEndpoint,
        server: Tuple[str, int],
        write_timeout: Optional[float] = None,
        coalesce_bytes: int = 0,
        flush_after: Optional[float] = None,
    ) -> BufferWriter:
        client = self.client_for(*server)
        return client.open_writer(
            endpoint.stream,
            n_readers=endpoint.n_readers,
            capacity_bytes=endpoint.capacity_bytes,
            cache=endpoint.cache,
            write_timeout=write_timeout,
            coalesce_bytes=coalesce_bytes,
            flush_after=flush_after,
        )

    def open_reader(
        self,
        endpoint: BufferEndpoint,
        server: Tuple[str, int],
        reader_id: Optional[str] = None,
        read_timeout: Optional[float] = None,
        read_ahead: bool = False,
        read_ahead_depth: int = 4,
        shared_cache: Optional[bool] = None,
    ) -> BufferReader:
        client = self.client_for(*server)
        # The stream may not exist yet if the reader opens first: create
        # it with the endpoint's declared config (create is idempotent).
        client.create_stream(
            endpoint.stream,
            n_readers=endpoint.n_readers,
            capacity_bytes=endpoint.capacity_bytes,
            cache=endpoint.cache,
        )
        rid = reader_id or f"{self.machine}:{endpoint.stream}"
        if shared_cache is None:
            # Dedup fetches only when the stream actually broadcasts.
            shared_cache = endpoint.n_readers > 1
        return client.open_reader(
            endpoint.stream,
            reader_id=rid,
            read_timeout=read_timeout,
            read_ahead=read_ahead,
            read_ahead_depth=read_ahead_depth,
            shared_cache=shared_cache,
        )

    def close(self) -> None:
        with self._lock:
            for client in self._clients.values():
                client.close()
            self._clients.clear()
