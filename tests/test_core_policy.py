"""Unit + property tests for the copy-vs-proxy access policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import AccessEstimate, AccessPolicy


def est(**kw) -> AccessEstimate:
    base = dict(file_size=100 * 1024 * 1024, bandwidth=1e6, latency=0.1, read_fraction=1.0)
    base.update(kw)
    return AccessEstimate(**base)


class TestValidation:
    def test_estimate_rejects_bad_values(self):
        with pytest.raises(ValueError):
            est(file_size=-1)
        with pytest.raises(ValueError):
            est(bandwidth=0)
        with pytest.raises(ValueError):
            est(latency=-1)
        with pytest.raises(ValueError):
            est(read_fraction=1.5)
        with pytest.raises(ValueError):
            est(block_size=0)

    def test_policy_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AccessPolicy(max_copy_bytes=-1)


class TestDecisions:
    def test_full_sequential_read_prefers_copy(self):
        """Reading the whole file: one bulk copy beats per-block RPCs."""
        policy = AccessPolicy()
        decision = policy.decide(est(read_fraction=1.0, latency=0.1))
        assert decision.mode == "copy"

    def test_tiny_fraction_prefers_proxy(self):
        """Section 3.1: 'if an application reads a small fraction of the
        remote file, it may not warrant copying it'."""
        policy = AccessPolicy()
        decision = policy.decide(est(read_fraction=0.001))
        assert decision.mode == "proxy"

    def test_huge_file_forced_to_proxy(self):
        """'if the file is very large, it may not be possible to copy it'."""
        policy = AccessPolicy(max_copy_bytes=1024)
        decision = policy.decide(est(file_size=10_000, read_fraction=1.0))
        assert decision.mode == "proxy"
        assert "max_copy_bytes" in decision.reason

    def test_small_file_high_latency_copies(self):
        """'if a file is small and the latency high... more efficient to
        copy the file'."""
        policy = AccessPolicy()
        decision = policy.decide(
            est(file_size=512 * 1024, latency=0.5, read_fraction=0.5, block_size=4096)
        )
        assert decision.mode == "copy"

    def test_decision_records_both_costs(self):
        policy = AccessPolicy()
        d = policy.decide(est())
        assert d.copy_cost > 0
        assert d.proxy_cost > 0


class TestCrossover:
    def test_crossover_between_zero_and_one(self):
        policy = AccessPolicy()
        frac = policy.crossover_fraction(est(latency=0.05, block_size=64 * 1024))
        assert 0.0 < frac < 1.0
        # Just below: proxy wins; just above: copy wins.
        below = policy.decide(est(read_fraction=max(0.0, frac - 0.05), latency=0.05, block_size=64 * 1024))
        above = policy.decide(est(read_fraction=min(1.0, frac + 0.05), latency=0.05, block_size=64 * 1024))
        assert below.mode == "proxy"
        assert above.mode == "copy"

    def test_crossover_one_when_copy_never_wins(self):
        # Zero latency: proxy has no penalty, copy never strictly wins.
        policy = AccessPolicy(copy_setup_rtts=10.0)
        frac = policy.crossover_fraction(est(latency=0.0))
        assert frac == 1.0


class TestProperties:
    @given(
        size=st.integers(min_value=1, max_value=10**9),
        bw=st.floats(min_value=1e3, max_value=1e9),
        lat=st.floats(min_value=0.0, max_value=1.0),
        frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_proxy_cost_monotone_in_fraction(self, size, bw, lat, frac):
        policy = AccessPolicy()
        base = est(file_size=size, bandwidth=bw, latency=lat, read_fraction=frac)
        more = est(
            file_size=size, bandwidth=bw, latency=lat, read_fraction=min(1.0, frac + 0.1)
        )
        assert policy.proxy_cost(more) >= policy.proxy_cost(base) - 1e-9

    @given(
        size=st.integers(min_value=1, max_value=10**9),
        bw=st.floats(min_value=1e3, max_value=1e9),
        lat=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_copy_cost_independent_of_fraction(self, size, bw, lat):
        policy = AccessPolicy()
        a = policy.copy_cost(est(file_size=size, bandwidth=bw, latency=lat, read_fraction=0.1))
        b = policy.copy_cost(est(file_size=size, bandwidth=bw, latency=lat, read_fraction=0.9))
        assert a == b

    @given(
        size=st.integers(min_value=1, max_value=10**8),
        lat=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_decision_picks_cheaper_unless_capped(self, size, lat):
        policy = AccessPolicy()
        e = est(file_size=size, latency=lat)
        d = policy.decide(e)
        if size <= policy.max_copy_bytes:
            expected = "copy" if d.copy_cost <= d.proxy_cost else "proxy"
            assert d.mode == expected
