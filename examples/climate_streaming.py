#!/usr/bin/env python3
"""Nested climate models coupled by Grid Buffers (paper Section 5.3).

C-CAM (stretched-grid global model) streams per-timestep history into
cc2lam (nesting interpolator), which streams regional forcing into
DARLAM (limited-area model) — across three virtual machines, exactly
the paper's Figure 6b wiring.  DARLAM finishes by seeking back to the
first input record, which the Grid Buffer serves from its *cache file*
because the stream's hash-table copy was deleted as it was consumed.

Run:  python examples/climate_streaming.py
"""

import struct
import time

from repro.apps.climate import climate_workflow
from repro.workflow import RealRunner, plan_workflow

PARAMS = {"nlon": 96, "nlat": 48, "nsteps": 16, "lam_nx": 72, "lam_ny": 60, "lam_refine": 2}


def main() -> None:
    wf = climate_workflow()
    placement = {"ccam": "brecca", "cc2lam": "brecca", "darlam": "dione"}
    plan = plan_workflow(
        wf, placement, coupling={"ccam_hist": "buffer", "lam_input": "buffer"}
    )
    runner = RealRunner(plan, params=PARAMS, stage_timeout=300)
    print("streaming C-CAM → cc2lam → DARLAM across brecca/dione ...")
    t0 = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - t0
    if not result.ok:
        raise SystemExit(f"FAILED: {result.errors}")

    # Inspect the Grid Buffer streams: DARLAM's backwards seek must have
    # hit the cache file.
    svc = runner.deployment.buffer_server.service
    lam_stats = svc.stats("climate:lam_input")
    print(f"completed in {elapsed:.2f}s")
    print(f"  lam_input stream: {lam_stats.bytes_written/1e6:.1f} MB written, "
          f"{lam_stats.cache_hits} cache hit(s) (DARLAM's re-read)")
    assert lam_stats.cache_hits >= 1, "re-read should have come from the cache file"

    # Decode DARLAM's output: per-step means plus the final drift record.
    out = (
        runner.deployment.hosts.host("dione")
        .resolve("/wf/climate/darlam_out")
        .read_bytes()
    )
    magic_len = len(b"DARLAMOUT1\n")
    nx, ny, nsteps = struct.unpack_from("<iii", out, magic_len)
    print(f"  DARLAM grid {nx}x{ny}, {nsteps} steps:")
    offset = magic_len + 12
    for step in range(0, nsteps, 4):
        s, mean, std = struct.unpack_from("<idd", out, offset + step * 20)
        print(f"    step {s:3d}: mean={mean:7.3f}  std={std:6.3f}")
    (drift,) = struct.unpack_from("<d", out, offset + nsteps * 20)
    print(f"  regional-mean drift over the run: {drift:+.4f}")
    runner.deployment.stop()


if __name__ == "__main__":
    main()
