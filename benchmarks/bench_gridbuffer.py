"""A/B the Grid Buffer fast path against the legacy per-block path.

One writer streams a file through a Grid Buffer server to 1 or 4
readers over a link with injected latency (0/1/5/20 ms one-way,
applied as a full round trip per RPC by the server).  Two arms per
cell:

* **legacy** — PR 1 behaviour: one ``gb.write`` per WRITE call, one
  ``gb.read`` per READ call, no read-ahead, no shared cache.
* **fast** — PR 3 behaviour: coalesced vectored writes
  (``gb.write_multi`` behind the bounded flush deadline), adaptive
  windowed read-ahead (``gb.read_multi``), and — for the broadcast
  cell — the shared per-process block cache with ``gb.consume`` acks.

The paper's crossover argument (Section 5) is that buffered streaming
wins exactly when round trips dominate; the fast path widens that win
by collapsing round trips, so the speedup must grow with latency.
Asserted: >= 2x end-to-end streaming speedup on the 5 ms link, and
4-reader broadcast costs no more per byte *served* than 1-reader.

Emits ``BENCH_gridbuffer.json`` at the repo root; run with ``--obs``
to embed a metrics snapshot (RPC counts, read-ahead hits, shared-cache
hits) alongside the timings.
"""

import hashlib
import json
import threading
import time
from pathlib import Path

import pytest

from repro.gridbuffer.client import GridBufferClient
from repro.gridbuffer.server import GridBufferServer

BLOCK = 4096                      # legacy application write/read size
N_BLOCKS = 64
FILE_BYTES = BLOCK * N_BLOCKS     # 256 KiB per stream
LATENCIES_MS = (0.0, 1.0, 5.0, 20.0)
READER_COUNTS = (1, 4)
MIN_SPEEDUP_AT_5MS = 2.0


def _payload() -> bytes:
    return bytes((i * 31) % 256 for i in range(FILE_BYTES))


def _run_stream(tmp_path, latency_s: float, n_readers: int, fast: bool) -> dict:
    """One writer -> n readers through a fresh server; returns timings."""
    data = _payload()
    digest = hashlib.sha256(data).hexdigest()
    stream = f"bench-{int(latency_s * 1e6)}-{n_readers}-{'fast' if fast else 'legacy'}"
    errors: list = []

    with GridBufferServer(
        cache_dir=tmp_path, simulated_latency=latency_s
    ) as server:
        host, port = server.address
        client = GridBufferClient(host, port, timeout=60.0)
        try:
            # Register every reader before the writer starts so
            # delete-on-read GC sees the full audience from block one.
            client.create_stream(stream, n_readers=n_readers)
            readers = [
                client.open_reader(
                    stream,
                    reader_id=f"r{i}",
                    read_ahead=fast,
                    read_ahead_depth=4,
                    shared_cache=fast and n_readers > 1,
                )
                for i in range(n_readers)
            ]

            def write_all():
                try:
                    w = client.open_writer(
                        stream,
                        n_readers=n_readers,
                        coalesce_bytes=BLOCK * 16 if fast else 0,
                    )
                    for off in range(0, FILE_BYTES, BLOCK):
                        w.write(data[off : off + BLOCK])
                    w.close()
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            def read_all(reader):
                try:
                    h = hashlib.sha256()
                    got = 0
                    while True:
                        chunk = reader.read(BLOCK)
                        if not chunk:
                            break
                        h.update(chunk)
                        got += len(chunk)
                    assert got == FILE_BYTES, f"short read: {got}"
                    assert h.hexdigest() == digest, "corrupted stream"
                    reader.close()
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=write_all)] + [
                threading.Thread(target=read_all, args=(r,)) for r in readers
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - t0
        finally:
            client.close()

    if errors:
        raise errors[0]
    served = FILE_BYTES * n_readers
    return {
        "latency_ms": latency_s * 1e3,
        "readers": n_readers,
        "arm": "fast" if fast else "legacy",
        "elapsed_s": round(elapsed, 5),
        "bytes_served": served,
        "mb_per_s": round(served / elapsed / 1e6, 3),
    }


@pytest.mark.slow
def test_gridbuffer_fastpath_ab(tmp_path, obs_snapshot):
    cells = []
    for latency_ms in LATENCIES_MS:
        for n_readers in READER_COUNTS:
            legacy = _run_stream(tmp_path, latency_ms / 1e3, n_readers, fast=False)
            fast = _run_stream(tmp_path, latency_ms / 1e3, n_readers, fast=True)
            speedup = legacy["elapsed_s"] / fast["elapsed_s"]
            cells.append(
                {
                    "latency_ms": latency_ms,
                    "readers": n_readers,
                    "legacy": legacy,
                    "fast": fast,
                    "speedup": round(speedup, 2),
                }
            )
            print(
                f"lat={latency_ms:>4.0f}ms readers={n_readers}: "
                f"legacy {legacy['elapsed_s'] * 1e3:8.1f}ms "
                f"fast {fast['elapsed_s'] * 1e3:8.1f}ms "
                f"speedup {speedup:5.2f}x"
            )

    by_cell = {(c["latency_ms"], c["readers"]): c for c in cells}

    # Acceptance 1: the vectored path collapses round trips — >= 2x
    # end-to-end streaming on the 5 ms link, single reader.
    cell_5ms = by_cell[(5.0, 1)]
    assert cell_5ms["speedup"] >= MIN_SPEEDUP_AT_5MS, (
        f"fast path only {cell_5ms['speedup']:.2f}x over legacy at 5ms "
        f"(need >= {MIN_SPEEDUP_AT_5MS}x)"
    )

    # Acceptance 2: broadcast scales — 4 readers serve 4x the bytes for
    # no more than 4x the single-reader wall time (shared cache +
    # consume acks should do much better; this is the floor).
    f1 = by_cell[(5.0, 1)]["fast"]
    f4 = by_cell[(5.0, 4)]["fast"]
    per_byte_1 = f1["elapsed_s"] / f1["bytes_served"]
    per_byte_4 = f4["elapsed_s"] / f4["bytes_served"]
    assert per_byte_4 <= per_byte_1 * 1.25, (
        f"4-reader broadcast costs {per_byte_4 / per_byte_1:.2f}x per byte "
        "served vs 1 reader (must stay <= 1.25x)"
    )

    out = {
        "bench": "gridbuffer_fastpath_ab",
        "block_size": BLOCK,
        "file_bytes": FILE_BYTES,
        "latencies_ms": list(LATENCIES_MS),
        "reader_counts": list(READER_COUNTS),
        "min_speedup_at_5ms": MIN_SPEEDUP_AT_5MS,
        "cells": cells,
    }
    if obs_snapshot is not None:
        out["metrics"] = obs_snapshot()
    (Path(__file__).resolve().parents[1] / "BENCH_gridbuffer.json").write_text(
        json.dumps(out, indent=2) + "\n"
    )
