"""Simulated wide-area network.

Models the testbed's links as (bandwidth, latency) pairs.  Bandwidth on
a link is *shared* between concurrent transfers (processor-sharing of
the bottleneck), which matches TCP fair-sharing closely enough for the
paper's workloads; latency is charged per message.

Two levels of API:

* :meth:`Network.message` — one message of ``nbytes`` from ``src`` to
  ``dst``; completes after ``latency + nbytes / fair-share-bandwidth``.
* :meth:`Network.request_response` — a synchronous round trip, used by
  per-block protocols such as the Grid Buffer service.  This is where
  the paper's latency sensitivity comes from: a 4096-byte-block
  protocol pays a round trip every ``window`` blocks, while a bulk
  GridFTP copy pays the latency only once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .engine import Environment, Event
from .resources import ProcessorSharing

__all__ = ["LinkSpec", "Link", "Network", "LOCALHOST_LINK"]


@dataclass(frozen=True)
class LinkSpec:
    """Static characteristics of a network path.

    Attributes
    ----------
    bandwidth:
        Usable bytes/second of the path.
    latency:
        One-way message latency in seconds.
    """

    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be >= 0")

    @property
    def rtt(self) -> float:
        return 2.0 * self.latency


#: Loopback path: effectively instant, very high bandwidth.
LOCALHOST_LINK = LinkSpec(bandwidth=400e6, latency=20e-6)


class Link:
    """One directed network path with shared bandwidth."""

    def __init__(self, env: Environment, spec: LinkSpec):
        self.env = env
        self.spec = spec
        self._pipe = ProcessorSharing(env, speed=spec.bandwidth)

    def message(self, nbytes: int) -> Event:
        """Deliver one message; triggers at arrival time of last byte."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        done = self.env.event()
        self.env.process(self._deliver(nbytes, done), name="link-msg")
        return done

    def _deliver(self, nbytes: int, done: Event):
        yield self.env.timeout(self.spec.latency)
        if nbytes:
            yield self._pipe.compute(float(nbytes))
        done.succeed(nbytes)
        return None

    @property
    def active_transfers(self) -> int:
        return self._pipe.load


class Network:
    """A set of named hosts and the links between them.

    Links are looked up symmetrically: registering ``(a, b)`` also
    serves ``(b, a)`` unless an explicit reverse entry exists.  Every
    host implicitly has a loopback link to itself.
    """

    def __init__(self, env: Environment, default: Optional[LinkSpec] = None):
        self.env = env
        self.default = default
        self._specs: Dict[Tuple[str, str], LinkSpec] = {}
        self._links: Dict[Tuple[str, str], Link] = {}

    def connect(self, a: str, b: str, spec: LinkSpec) -> None:
        """Register the path between hosts ``a`` and ``b``."""
        self._specs[(a, b)] = spec

    def spec(self, src: str, dst: str) -> LinkSpec:
        if src == dst:
            return LOCALHOST_LINK
        found = self._specs.get((src, dst)) or self._specs.get((dst, src))
        if found is None:
            if self.default is None:
                raise KeyError(f"no link between {src!r} and {dst!r}")
            return self.default
        return found

    def link(self, src: str, dst: str) -> Link:
        key = (src, dst)
        if key not in self._links:
            self._links[key] = Link(self.env, self.spec(src, dst))
        return self._links[key]

    def set_spec(self, a: str, b: str, spec: LinkSpec) -> None:
        """Change a path's characteristics mid-simulation.

        New transfers use the new spec; transfers already in flight
        finish under the old one (both directions are invalidated).
        Models changing "network weather" for NWS/adaptation studies.
        """
        self._specs.pop((b, a), None)
        self._specs[(a, b)] = spec
        for key in ((a, b), (b, a)):
            self._links.pop(key, None)

    # -- protocol helpers --------------------------------------------------
    def message(self, src: str, dst: str, nbytes: int) -> Event:
        """One message from ``src`` to ``dst``."""
        return self.link(src, dst).message(nbytes)

    def request_response(
        self, src: str, dst: str, request_bytes: int, response_bytes: int
    ) -> Event:
        """A synchronous round trip; triggers when the response lands."""
        done = self.env.event()

        def rpc():
            yield self.link(src, dst).message(request_bytes)
            yield self.link(dst, src).message(response_bytes)
            done.succeed(None)
            return None

        self.env.process(rpc(), name="rpc")
        return done

    def bulk_transfer(
        self,
        src: str,
        dst: str,
        nbytes: int,
        streams: int = 1,
        setup_rtts: float = 2.0,
    ) -> Event:
        """A GridFTP-style bulk copy.

        Pays connection setup (``setup_rtts`` round trips) once, then
        streams the payload at full shared bandwidth — the
        latency-insensitive path the paper contrasts with per-block
        buffer traffic.  ``streams`` models parallel TCP streams, which
        only matter when the link is shared (they claim a larger share).
        """
        if streams < 1:
            raise ValueError("streams must be >= 1")
        spec = self.spec(src, dst)
        done = self.env.event()

        def go():
            yield self.env.timeout(setup_rtts * spec.rtt)
            if nbytes:
                link = self.link(src, dst)
                per = float(nbytes) / streams
                yield self.env.all_of([link._pipe.compute(per) for _ in range(streams)])
            yield self.env.timeout(spec.latency)  # final-byte propagation
            done.succeed(nbytes)
            return None

        self.env.process(go(), name="bulk")
        return done

    def windowed_stream(
        self,
        src: str,
        dst: str,
        nbytes: int,
        block_size: int,
        window: int = 4,
        per_block_overhead: int = 256,
    ) -> Event:
        """A per-block acknowledged stream (the Grid Buffer pattern).

        ``window`` outstanding blocks are allowed; every window the
        sender stalls for one round trip waiting on the ack.  Total
        time ≈ ``latency + nbytes/bw + ceil(nblocks/window) * rtt`` —
        strongly latency-sensitive for small blocks, which is exactly
        the behaviour behind Table 5's file-copy-vs-buffer crossover.
        """
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        spec = self.spec(src, dst)
        link = self.link(src, dst)
        done = self.env.event()
        nblocks = max(1, -(-nbytes // block_size))

        def go():
            sent = 0
            for i in range(nblocks):
                chunk = min(block_size, nbytes - sent)
                sent += chunk
                yield link.message(chunk + per_block_overhead)
                if (i + 1) % window == 0 or i == nblocks - 1:
                    yield self.link(dst, src).message(per_block_overhead)
            done.succeed(nbytes)
            return None

        self.env.process(go(), name="windowed-stream")
        return done

    def estimate_bulk_time(self, src: str, dst: str, nbytes: int, setup_rtts: float = 2.0) -> float:
        """Closed-form lower bound of :meth:`bulk_transfer` (idle link)."""
        spec = self.spec(src, dst)
        return setup_rtts * spec.rtt + nbytes / spec.bandwidth + spec.latency

    def estimate_stream_time(
        self, src: str, dst: str, nbytes: int, block_size: int, window: int = 4
    ) -> float:
        """Closed-form lower bound of :meth:`windowed_stream` (idle link)."""
        spec = self.spec(src, dst)
        nblocks = max(1, -(-nbytes // block_size))
        acks = -(-nblocks // window)
        return nblocks * spec.latency + nbytes / spec.bandwidth + acks * spec.latency
