"""Small IO helpers shared across FM clients.

CPython's ``io.RawIOBase`` implements ``read()`` in terms of
``readinto()`` — not the other way round — so raw classes that only
define ``read()`` break under ``io.BufferedReader``.
:class:`ReadIntoFromRead` supplies the missing direction.
"""

from __future__ import annotations

__all__ = ["ReadIntoFromRead"]


class ReadIntoFromRead:
    """Mixin providing ``readinto`` for classes that implement ``read``."""

    def readinto(self, buffer) -> int:  # type: ignore[override]
        data = self.read(len(buffer))  # type: ignore[attr-defined]
        n = len(data)
        buffer[:n] = data
        return n
