"""Unit tests for machine specs and instances."""

import pytest

from repro.grid.machine import Machine, MachineSpec
from repro.grid.testbed import TESTBED, make_machines, paper_table1_rows
from repro.grid.testbed import testbed_topology as _testbed_topology
from repro.sim.engine import Environment


def spec(**overrides) -> MachineSpec:
    base = dict(
        name="test",
        address="test.example.org",
        country="AU",
        cpu="Test CPU",
        mem_mb=256,
        speed=1.0,
    )
    base.update(overrides)
    return MachineSpec(**base)


class TestMachineSpec:
    def test_compute_seconds(self):
        assert spec(speed=2.0).compute_seconds(10.0) == pytest.approx(5.0)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            spec().compute_seconds(-1)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("speed", 0.0),
            ("speed", -1.0),
            ("cores", 0),
            ("mem_mb", 0),
            ("buffer_cpu_per_mb", -0.1),
            ("file_cpu_per_mb", -0.1),
            ("idle_io_fraction", 1.0),
            ("idle_io_fraction", -0.1),
            ("file_stream_sync", -1.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            spec(**{field: value})


class TestMachine:
    def test_compute_uses_speed(self):
        env = Environment()
        machine = Machine(env, spec(speed=4.0))

        def job(env):
            yield machine.compute(8.0)

        env.process(job(env))
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_concurrent_jobs_share_cpu(self):
        env = Environment()
        machine = Machine(env, spec(speed=1.0, cores=1))
        done = []

        def job(env):
            yield machine.compute(3.0)
            done.append(env.now)

        env.process(job(env))
        env.process(job(env))
        env.run()
        assert done == [pytest.approx(6.0)] * 2

    def test_fs_attached_to_host(self):
        env = Environment()
        machine = Machine(env, spec(name="mach1"))
        assert machine.fs.host == "mach1"


class TestTestbed:
    def test_all_paper_machines_present(self):
        expected = {"dione", "freak", "vpac27", "brecca", "bouscat", "jagan", "koume00"}
        assert set(TESTBED) == expected

    def test_speeds_ordered_like_table3(self):
        """Table 3's C-CAM column implies brecca > dione/freak > vpac27/bouscat."""
        s = {name: m.speed for name, m in TESTBED.items()}
        assert s["brecca"] > s["dione"] > s["vpac27"]
        assert s["brecca"] > s["freak"] > s["bouscat"]
        assert s["jagan"] < s["vpac27"]  # 350 MHz P3 is the slowest

    def test_brecca_is_multicore(self):
        assert TESTBED["brecca"].cores == 2
        assert all(m.cores == 1 for n, m in TESTBED.items() if n != "brecca")

    def test_countries_match_table1(self):
        assert TESTBED["freak"].country == "US"
        assert TESTBED["bouscat"].country == "UK"
        assert TESTBED["koume00"].country == "JP"
        assert TESTBED["dione"].country == "AU"

    def test_make_machines_instantiates_all(self):
        env = Environment()
        machines = make_machines(env)
        assert set(machines) == set(TESTBED)
        assert all(m.env is env for m in machines.values())

    def test_topology_same_site_pairs(self):
        topo = _testbed_topology()
        assert topo.classify("brecca", "vpac27") == "same-site"
        assert topo.classify("dione", "jagan") == "same-site"
        assert topo.classify("dione", "brecca") == "metro"
        assert topo.classify("brecca", "bouscat") == "AU-UK"
        assert topo.classify("freak", "koume00") == "JP-US"

    def test_paper_table1_rows_complete(self):
        rows = paper_table1_rows()
        assert len(rows) == 7
        assert all({"name", "address", "cpu", "mem_mb", "country"} <= set(r) for r in rows)
