"""Machine model for the simulated testbed.

Each :class:`MachineSpec` captures the handful of parameters the timing
model needs: relative CPU speed (work units per second, brecca ≡ 1.0),
core count, disk throughput, and the per-megabyte CPU cost of pushing
data through the two FM data paths (local files vs. the SOAP-encoded
Grid Buffer stack).  The last two are *calibrated* per machine — they
play the role of the memory-pressure / IO-subsystem differences the
paper invokes to explain why buffers lose on dione and vpac27
(Section 5.3, Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.fssim import DiskSpec

__all__ = ["MachineSpec", "Machine"]


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one testbed machine.

    Attributes
    ----------
    name:
        Short host name (e.g. ``"brecca"``).
    address:
        Fully qualified name from the paper's Table 1.
    country:
        Two-letter country code (AU/US/JP/UK) — drives the WAN model.
    cpu:
        Human-readable CPU description.
    mem_mb:
        Physical memory in MB (Table 1).
    speed:
        Relative compute rate in work-units/second; brecca (2.8 GHz
        Xeon) defines 1.0.  Fitted from the paper's Table 3 C-CAM
        column.
    cores:
        Schedulable CPUs.  brecca is a dual-CPU cluster node, which is
        the only way its concurrent-buffers run can beat the sum of the
        sequential compute times (Table 4).
    disk:
        Local disk throughput model.
    buffer_cpu_per_mb:
        CPU seconds (at unit speed) consumed per MB moved through the
        Grid Buffer stack (SOAP encode/decode + copies).  High values
        model the low-memory machines where the in-memory hash table
        causes paging.
    file_cpu_per_mb:
        CPU seconds (at unit speed) per MB through the plain FM local
        file path when stages run concurrently.
    step_io_seconds:
        Blocking (CPU-idle) IO per *sequential* model run, as a
        fraction of that run's compute seconds.  This is the slack that
        concurrent execution can reclaim by overlapping another stage's
        compute with it.
    """

    name: str
    address: str
    country: str
    cpu: str
    mem_mb: int
    speed: float
    cores: int = 1
    disk: DiskSpec = field(default_factory=DiskSpec)
    buffer_cpu_per_mb: float = 0.9
    file_cpu_per_mb: float = 0.25
    idle_io_fraction: float = 0.02
    #: Blocking seconds per chunk per file-stream hop (FM file-following
    #: sync/poll cost).  Irrelevant on CPU-saturated single-core machines
    #: (absorbed by sharing); matters on multi-core nodes like brecca.
    file_stream_sync: float = 0.0

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"{self.name}: speed must be positive")
        if self.cores < 1:
            raise ValueError(f"{self.name}: cores must be >= 1")
        if self.mem_mb <= 0:
            raise ValueError(f"{self.name}: mem_mb must be positive")
        if self.buffer_cpu_per_mb < 0 or self.file_cpu_per_mb < 0:
            raise ValueError(f"{self.name}: per-MB CPU costs must be >= 0")
        if not 0 <= self.idle_io_fraction < 1:
            raise ValueError(f"{self.name}: idle_io_fraction must be in [0, 1)")
        if self.file_stream_sync < 0:
            raise ValueError(f"{self.name}: file_stream_sync must be >= 0")

    def compute_seconds(self, work: float) -> float:
        """Seconds to execute ``work`` units on an otherwise idle core."""
        if work < 0:
            raise ValueError("work must be >= 0")
        return work / self.speed


class Machine:
    """A live machine instance inside one simulation run.

    Owns the processor-sharing CPU and the simulated file system; the
    simulated workflow runner places stage processes on these.
    """

    def __init__(self, env, spec: MachineSpec):
        from ..sim.fssim import Disk, SimFileSystem
        from ..sim.resources import ProcessorSharing

        self.env = env
        self.spec = spec
        self.cpu = ProcessorSharing(env, speed=spec.speed, cores=spec.cores)
        self.fs = SimFileSystem(env, host=spec.name, disk=Disk(env, spec.disk))

    @property
    def name(self) -> str:
        return self.spec.name

    def compute(self, work: float):
        """Submit compute work to this machine's shared CPU."""
        return self.cpu.compute(work)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Machine {self.spec.name} speed={self.spec.speed} cores={self.spec.cores}>"
