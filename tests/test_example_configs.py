"""The shipped example GNS configs must stay loadable and faithful."""

from pathlib import Path


from repro.apps.climate import climate_workflow
from repro.gns.persistence import load_records
from repro.gns.records import IOMode
from repro.workflow.runner import records_for_plan
from repro.workflow.scheduler import plan_workflow

CONFIG_DIR = Path(__file__).resolve().parents[1] / "examples" / "configs"


class TestShippedConfigs:
    def test_buffers_config_loads(self):
        records = load_records((CONFIG_DIR / "climate_buffers.gns.json").read_text())
        assert len(records) == 2
        assert all(r.mode is IOMode.BUFFER for r in records)
        assert {r.buffer.stream for r in records} == {
            "climate:ccam_hist",
            "climate:lam_input",
        }

    def test_copies_config_loads(self):
        records = load_records((CONFIG_DIR / "climate_copies.gns.json").read_text())
        assert len(records) == 1  # only the cross-machine edge needs a record
        assert records[0].mode is IOMode.COPY
        assert records[0].machine == "dione"

    def test_configs_match_generated_wiring(self):
        """The files on disk equal what records_for_plan produces —
        regeneration is reproducible."""
        wf = climate_workflow()
        placement = {"ccam": "brecca", "cc2lam": "brecca", "darlam": "dione"}
        plan = plan_workflow(
            wf, placement, coupling={"ccam_hist": "buffer", "lam_input": "buffer"}
        )
        generated = records_for_plan(plan)
        shipped = load_records((CONFIG_DIR / "climate_buffers.gns.json").read_text())
        assert generated == shipped
