"""GriddLeS Name Service: the configuration database that makes the FM
re-wirable without touching application code."""

from .client import GnsClient, LocalGnsClient
from .matcher import ConnectionMatcher, StreamBinding
from .persistence import dump_records, load_gns, load_records, save_gns
from .records import BufferEndpoint, GnsRecord, IOMode
from .server import GnsServer, NameService

__all__ = [
    "GnsClient",
    "LocalGnsClient",
    "ConnectionMatcher",
    "StreamBinding",
    "BufferEndpoint",
    "GnsRecord",
    "IOMode",
    "GnsServer",
    "NameService",
    "dump_records",
    "load_gns",
    "load_records",
    "save_gns",
]
