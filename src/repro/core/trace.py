"""FM call tracing (the Bypass-style observability layer).

The paper's implementation sat on Condor's Bypass trap layer, whose
other role was *inspection* — seeing exactly which file operations a
legacy binary performs.  :class:`FmTracer` recreates that: wrap a
:class:`~repro.core.multiplexer.FileMultiplexer` and every open/read/
write/seek/close is appended to a bounded in-memory log (optionally
echoed to a stream), with per-path summaries for post-run analysis.

Usage::

    tracer = FmTracer(fm)
    f = tracer.open("/wf/x", "r")   # same API as fm.open
    ...
    print(tracer.summary())
"""

from __future__ import annotations

import io
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, TextIO

from ..ioutil import ReadIntoFromRead
from .multiplexer import FileMultiplexer, FMFile

__all__ = ["TraceEvent", "FmTracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced FM call."""

    timestamp: float
    op: str          # open / read / write / seek / close
    path: str
    mode: str        # IO mode in force for the handle
    detail: int = 0  # bytes for read/write, target for seek

    def __str__(self) -> str:
        return f"[{self.timestamp:.6f}] {self.op:<5} {self.path} ({self.mode}) {self.detail}"


class _TracedFile(ReadIntoFromRead, io.RawIOBase):
    def __init__(self, inner: FMFile, tracer: "FmTracer", path: str):
        super().__init__()
        self._inner = inner
        self._tracer = tracer
        self._path = path

    def _log(self, op: str, detail: int = 0) -> None:
        self._tracer._record(op, self._path, self._inner.record.mode.value, detail)

    def readable(self) -> bool:
        return self._inner.readable()

    def writable(self) -> bool:
        return self._inner.writable()

    def seekable(self) -> bool:
        return self._inner.seekable()

    def read(self, size: int = -1) -> bytes:  # type: ignore[override]
        data = self._inner.read(size)
        self._log("read", len(data or b""))
        return data

    def write(self, data) -> int:  # type: ignore[override]
        n = self._inner.write(data)
        self._log("write", n)
        return n

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        pos = self._inner.seek(offset, whence)
        self._log("seek", pos)
        return pos

    def tell(self) -> int:
        return self._inner.tell()

    def close(self) -> None:
        if not self.closed:
            self._log("close")
            self._inner.close()
            super().close()


class FmTracer:
    """Wraps an FM; opened handles log every operation."""

    def __init__(
        self,
        fm: FileMultiplexer,
        max_events: int = 100_000,
        echo: Optional[TextIO] = None,
        clock=time.monotonic,
    ):
        self.fm = fm
        self.events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.echo = echo
        self._clock = clock
        self._t0 = clock()

    def _record(self, op: str, path: str, mode: str, detail: int = 0) -> None:
        event = TraceEvent(
            timestamp=self._clock() - self._t0, op=op, path=path, mode=mode, detail=detail
        )
        self.events.append(event)
        if self.echo is not None:
            print(event, file=self.echo)

    def open(self, path: str, mode: str = "r") -> _TracedFile:
        handle = self.fm.open(path, mode)
        self._record("open", path, handle.record.mode.value)
        return _TracedFile(handle, self, path)

    # -- analysis ----------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-path op counts and byte totals."""
        out: Dict[str, Dict[str, int]] = {}
        for event in self.events:
            entry = out.setdefault(
                event.path,
                {"opens": 0, "reads": 0, "writes": 0, "seeks": 0, "bytes_read": 0, "bytes_written": 0},
            )
            if event.op == "open":
                entry["opens"] += 1
            elif event.op == "read":
                entry["reads"] += 1
                entry["bytes_read"] += event.detail
            elif event.op == "write":
                entry["writes"] += 1
                entry["bytes_written"] += event.detail
            elif event.op == "seek":
                entry["seeks"] += 1
        return out

    def clear(self) -> None:
        self.events.clear()
