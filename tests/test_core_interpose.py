"""Tests for builtins.open interposition (the LD_PRELOAD analogue)."""

import builtins

import pytest

from repro.core.interpose import FmOpen, interposed
from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.gns.records import BufferEndpoint, GnsRecord, IOMode


@pytest.fixture()
def fm(hosts, gns, buffer_server):
    fm = FileMultiplexer(
        GridContext(
            machine="alpha",
            gns=gns,
            hosts=hosts,
            buffer_locator=lambda m: buffer_server.address,
        )
    )
    yield fm
    fm.close()


class TestInterposed:
    def test_open_restored_after_context(self, fm):
        original = builtins.open
        with interposed(fm, prefixes=("/wf/",)):
            assert builtins.open is not original
        assert builtins.open is original

    def test_restored_on_exception(self, fm):
        original = builtins.open
        with pytest.raises(RuntimeError):
            with interposed(fm, prefixes=("/wf/",)):
                raise RuntimeError("boom")
        assert builtins.open is original

    def test_text_roundtrip_through_fm(self, fm, hosts):
        with interposed(fm, prefixes=("/wf/",)):
            with open("/wf/out.txt", "w") as fh:
                fh.write("line 1\nline 2\n")
            with open("/wf/out.txt") as fh:
                assert fh.readlines() == ["line 1\n", "line 2\n"]
        assert hosts.host("alpha").resolve("/wf/out.txt").exists()

    def test_binary_roundtrip(self, fm):
        with interposed(fm, prefixes=("/wf/",)):
            with open("/wf/data.bin", "wb") as fh:
                fh.write(b"\x00\x01\x02")
            with open("/wf/data.bin", "rb") as fh:
                assert fh.read() == b"\x00\x01\x02"

    def test_non_matching_path_falls_through(self, fm, tmp_path):
        outside = tmp_path / "outside.txt"
        with interposed(fm, prefixes=("/wf/",)):
            with open(outside, "w") as fh:
                fh.write("real fs")
        assert outside.read_text() == "real fs"
        assert all(s.path != str(outside) for s in fm.open_history)

    def test_legacy_function_unmodified(self, fm):
        """The paper's core claim: the 'legacy program' below knows
        nothing about the grid, yet its IO routes through the FM."""

        def legacy_program():
            with open("/wf/input.txt", "w") as out:
                out.write("42\n")
            with open("/wf/input.txt") as inp:
                return int(inp.readline())

        with interposed(fm, prefixes=("/wf/",)):
            assert legacy_program() == 42
        assert any(s.path == "/wf/input.txt" for s in fm.open_history)

    def test_legacy_streaming_through_buffer(self, fm, hosts, gns, buffer_server):
        """Rewiring a legacy file to a Grid Buffer stream requires only
        a GNS record — same open() calls."""
        import threading

        gns.add(
            GnsRecord(
                machine="*",
                path="/wf/pipe.dat",
                mode=IOMode.BUFFER,
                buffer=BufferEndpoint(stream="interpose-pipe", cache=True),
            )
        )
        fm2 = FileMultiplexer(
            GridContext(
                machine="beta",
                gns=gns,
                hosts=hosts,
                buffer_locator=lambda m: buffer_server.address,
            )
        )

        # Two FMs in one process: patching builtins globally would race,
        # so each side uses its own FmOpen callable directly.
        writer_open = FmOpen(fm2, prefixes=("/wf/",))

        def produce():
            with writer_open("/wf/pipe.dat", "w") as fh:
                fh.write("streamed text\n")

        t = threading.Thread(target=produce)
        t.start()
        reader_open = FmOpen(fm, prefixes=("/wf/",))
        with reader_open("/wf/pipe.dat") as fh:
            assert fh.readline() == "streamed text\n"
        t.join(timeout=10)
        fm2.close()

    def test_unbuffered_text_rejected(self, fm):
        fm_open = FmOpen(fm, prefixes=("/wf/",))
        with pytest.raises(ValueError):
            fm_open("/wf/x", "r", buffering=0)

    def test_empty_prefixes_rejected(self, fm):
        with pytest.raises(ValueError):
            FmOpen(fm, prefixes=())

    def test_nested_interposition_innermost_wins(self, fm, hosts, gns, buffer_server):
        """Nested contexts: the inner FM serves opens; the outer patch
        is restored when the inner context exits."""
        from repro.core.multiplexer import FileMultiplexer, GridContext

        hosts.add_host("gamma")
        fm_inner = FileMultiplexer(
            GridContext(
                machine="gamma",
                gns=gns,
                hosts=hosts,
                buffer_locator=lambda m: buffer_server.address,
            )
        )
        with interposed(fm, prefixes=("/wf/",)):
            with open("/wf/outer.txt", "w") as fh:
                fh.write("outer")
            with interposed(fm_inner, prefixes=("/wf/",)):
                with open("/wf/inner.txt", "w") as fh:
                    fh.write("inner")
            with open("/wf/outer2.txt", "w") as fh:
                fh.write("outer again")
        assert hosts.host("alpha").resolve("/wf/outer.txt").exists()
        assert hosts.host("gamma").resolve("/wf/inner.txt").exists()
        assert not hosts.host("alpha").resolve("/wf/inner.txt").exists()
        assert hosts.host("alpha").resolve("/wf/outer2.txt").exists()
        fm_inner.close()

    def test_path_objects_fall_through(self, fm, tmp_path):
        """Non-str path-likes are never intercepted."""
        target = tmp_path / "pathobj.txt"
        fm_open = FmOpen(fm, prefixes=("/",))
        with fm_open(target, "w") as fh:
            fh.write("via Path")
        assert target.read_text() == "via Path"
