"""The File Multiplexer — the paper's primary contribution.

Public surface:

* :class:`FileMultiplexer` / :class:`GridContext` — per-process FM.
* :class:`FMFile` — the POSIX-style handle it returns.
* :func:`interposed` — ``builtins.open`` interception for legacy code.
* :class:`AccessPolicy` — copy-vs-proxy heuristics.
* :class:`ReplicaSelector` — NWS-driven replica choice with re-mapping.
* :class:`RecordSchema` — XDR-style neutral encoding for heterogeneity.
"""

from .buffer_client import GridBufferClientPool
from .heterogeneity import (
    NATIVE_BYTE_ORDER,
    FieldType,
    HeterogeneityError,
    RecordSchema,
    needs_swap,
)
from .fortran import FortranRecordReader, FortranRecordWriter, translate_fortran_stream
from .interpose import FmOpen, interposed
from .local_client import LocalFileClient
from .modes import BufferEndpoint, GnsRecord, IOMode
from .multiplexer import FileMultiplexer, FMError, FMFile, GridContext, OpenStats
from .policy import AccessEstimate, AccessPolicy, RemoteDecision, observed_estimate
from .remote_client import CopyInOutFile, RemoteFileClient, RemoteProxyFile
from .remote_io import BlockCache, BlockPrefetcher, WriteCoalescer
from .replica import NoReplicaError, ReplicaChoice, ReplicaSelector
from .trace import FmTracer, TraceEvent, TransferMonitor, TransferSample
from .translating import TranslatingReader, TranslatingWriter

__all__ = [
    "GridBufferClientPool",
    "NATIVE_BYTE_ORDER",
    "FieldType",
    "HeterogeneityError",
    "RecordSchema",
    "needs_swap",
    "FortranRecordReader",
    "FortranRecordWriter",
    "translate_fortran_stream",
    "FmOpen",
    "interposed",
    "LocalFileClient",
    "BufferEndpoint",
    "GnsRecord",
    "IOMode",
    "FileMultiplexer",
    "FMError",
    "FMFile",
    "GridContext",
    "OpenStats",
    "AccessEstimate",
    "AccessPolicy",
    "RemoteDecision",
    "CopyInOutFile",
    "RemoteFileClient",
    "RemoteProxyFile",
    "NoReplicaError",
    "ReplicaChoice",
    "ReplicaSelector",
    "TranslatingReader",
    "TranslatingWriter",
    "FmTracer",
    "TraceEvent",
    "TransferMonitor",
    "TransferSample",
    "BlockCache",
    "BlockPrefetcher",
    "WriteCoalescer",
    "observed_estimate",
]
