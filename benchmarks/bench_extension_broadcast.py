"""Extension bench E1: broadcast scaling (multi-organizational models).

Section 5.3's outlook — one global model feeding regional models owned
by different partners — needs the Grid Buffer's broadcast mode.  This
bench sweeps the number of regions and checks that broadcast streaming
scales sub-linearly (the driver chain is shared), while the sequential
copy wiring pays per region.
"""

from repro.apps.climate.ensemble import ensemble_plan
from repro.bench.tables import TableBuilder, hms
from repro.workflow.simrunner import simulate_plan

#: Distinct partner machines per campaign size (fast metro/AU-JP links).
POOLS = {
    1: ["dione"],
    2: ["dione", "freak"],
    3: ["dione", "freak", "koume00"],
}


def run_scaling():
    table = TableBuilder(
        "Extension E1 — one C-CAM driving N regional models (simulated)",
        ["regions", "machines", "buffers", "copy"],
    )
    totals = {}
    for n, machines in POOLS.items():
        buf = simulate_plan(ensemble_plan("brecca", machines, "buffer")).makespan
        cop = simulate_plan(ensemble_plan("brecca", machines, "copy")).makespan
        totals[n] = (buf, cop)
        table.add_row(n, ",".join(machines), hms(buf), hms(cop))
    # The alternative to broadcasting: run the whole campaign once per
    # partner (the pre-grid practice the paper argues against).
    separate_total = sum(
        simulate_plan(ensemble_plan("brecca", [m], "buffer")).makespan
        for m in POOLS[3]
    )
    table.add_row("3x separate", "one campaign per partner", hms(separate_total), "-")
    # A high-latency subscriber gates everyone (one writer, blocks held
    # until ALL readers consume them).
    with_uk = simulate_plan(
        ensemble_plan("brecca", ["dione", "freak", "bouscat"], "buffer")
    ).makespan
    table.add_row("3 (w/ UK)", "dione,freak,bouscat", hms(with_uk), "-")
    table.add_check(
        "one broadcast campaign beats per-partner campaigns (3 regions < 70% of 3 runs)",
        totals[3][0] < 0.7 * separate_total,
    )
    table.add_check(
        "adding partners never speeds things up (monotone)",
        totals[1][0] <= totals[2][0] <= totals[3][0] + 1e-6,
    )
    table.add_check(
        "a high-latency subscriber (bouscat, AU-UK) gates the whole broadcast",
        with_uk > 1.3 * totals[3][0],
    )
    return table


def test_extension_broadcast(once):
    table = once(run_scaling)
    table.print()
    assert table.all_checks_pass
