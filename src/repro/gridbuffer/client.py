"""Client-side Grid Buffer API.

Two layers:

* :class:`GridBufferClient` — thin RPC mirror of the service methods,
  one per (process, server) pair.
* :class:`BufferWriter` / :class:`BufferReader` — file-like adapters
  the FM's Grid Buffer Client uses.  The writer tracks its own offset
  (sequential append is the common legacy pattern) but honours seeks;
  the reader supports ``read``/``seek``/``tell`` with re-reads served
  by the server-side cache file.

Because a blocking remote read parks a server thread, every reader
uses its own TCP connection (``dedicated_connection=True`` default).
The reader can additionally *double-buffer*: a background thread on a
second connection requests the next block while the application
consumes the current one, so a sequential read loop overlaps its RPC
round trips with real work.  The writer can coalesce small sequential
writes into block-sized RPCs (``coalesce_bytes``) — off by default
because it delays downstream visibility, which tightly pipelined
streams may care about.
"""

from __future__ import annotations

import io
import os
import threading
import uuid
from typing import Any, Dict, Optional, Tuple

from .. import obs
from ..core.remote_io import WriteCoalescer
from ..ioutil import ReadIntoFromRead
from ..transport.tcp import RpcClient
from .protocol import (
    DEFAULT_BLOCK_SIZE,
    OP_ABORT,
    OP_CLOSE_WRITER,
    OP_CREATE,
    OP_DROP,
    OP_EXISTS,
    OP_HIGH_WATER,
    OP_READ,
    OP_REGISTER_READER,
    OP_RESUME,
    OP_STATS,
    OP_WRITE,
)

__all__ = ["GridBufferClient", "BufferWriter", "BufferReader"]

#: Poll cadence while waiting for a stream to be created; tunable so
#: tests (and co-located deployments) don't burn 10 ms a spin.
OPEN_POLL_INTERVAL = float(os.environ.get("REPRO_BUFFER_OPEN_POLL", "0.01"))

_READAHEAD_HITS = obs.counter(
    "buffer_readahead_hits_total",
    "Client reads served from the double-buffering pipeline",
    labelnames=("stream",),
)
_WRITE_RPCS = obs.counter(
    "buffer_write_rpcs_total",
    "WRITE RPCs issued by client-side writers",
    labelnames=("stream",),
)


class GridBufferClient:
    """RPC client for one Grid Buffer server."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._addr = (host, port)
        self._timeout = timeout
        self._rpc = RpcClient(host, port, timeout=timeout)

    def _fresh_connection(self) -> RpcClient:
        return RpcClient(*self._addr, timeout=self._timeout)

    # -- service mirror ----------------------------------------------------
    def create_stream(
        self,
        name: str,
        n_readers: int = 1,
        capacity_bytes: Optional[int] = None,
        cache: bool = False,
    ) -> None:
        self._rpc.call(
            OP_CREATE,
            {
                "name": name,
                "n_readers": n_readers,
                "capacity_bytes": capacity_bytes,
                "cache": cache,
            },
        )

    def register_reader(self, name: str, reader_id: str) -> None:
        self._rpc.call(OP_REGISTER_READER, {"name": name, "reader_id": reader_id})

    def write(self, name: str, offset: int, data: bytes, timeout: Optional[float] = None) -> None:
        self._rpc.call(OP_WRITE, {"name": name, "offset": offset, "timeout": timeout}, payload=data)

    def read(
        self,
        name: str,
        reader_id: str,
        offset: int,
        length: int,
        timeout: Optional[float] = None,
        rpc: Optional[RpcClient] = None,
    ) -> bytes:
        _, data = (rpc or self._rpc).call(
            OP_READ,
            {
                "name": name,
                "reader_id": reader_id,
                "offset": offset,
                "length": length,
                "timeout": timeout,
            },
        )
        return data

    def close_writer(self, name: str) -> int:
        reply, _ = self._rpc.call(OP_CLOSE_WRITER, {"name": name})
        return int(reply["total"])

    def stats(self, name: str) -> Dict[str, Any]:
        reply, _ = self._rpc.call(OP_STATS, {"name": name})
        return dict(reply["stats"])

    def drop_stream(self, name: str) -> None:
        self._rpc.call(OP_DROP, {"name": name})

    def stream_exists(self, name: str) -> bool:
        reply, _ = self._rpc.call(OP_EXISTS, {"name": name})
        return bool(reply["exists"])

    def abort_writer(self, name: str, reason: str = "writer aborted") -> None:
        self._rpc.call(OP_ABORT, {"name": name, "reason": reason})

    def resume_writer(self, name: str) -> int:
        """Clear a failure; returns the offset to resume writing from."""
        reply, _ = self._rpc.call(OP_RESUME, {"name": name})
        return int(reply["offset"])

    def high_water(self, name: str) -> int:
        reply, _ = self._rpc.call(OP_HIGH_WATER, {"name": name})
        return int(reply["offset"])

    # -- file-like adapters ----------------------------------------------------
    def open_writer(
        self,
        name: str,
        n_readers: int = 1,
        capacity_bytes: Optional[int] = None,
        cache: bool = False,
        write_timeout: Optional[float] = None,
        coalesce_bytes: int = 0,
    ) -> "BufferWriter":
        self.create_stream(name, n_readers=n_readers, capacity_bytes=capacity_bytes, cache=cache)
        return BufferWriter(
            self, name, write_timeout=write_timeout, coalesce_bytes=coalesce_bytes
        )

    def open_reader(
        self,
        name: str,
        reader_id: Optional[str] = None,
        read_timeout: Optional[float] = None,
        dedicated_connection: bool = True,
        open_timeout: float = 10.0,
        poll_interval: Optional[float] = None,
        read_ahead: bool = False,
        read_ahead_bytes: int = DEFAULT_BLOCK_SIZE * 16,
    ) -> "BufferReader":
        """Attach a reader, waiting for the stream to exist.

        A reader may open before the writer has created the stream (the
        paper's FM blocks the legacy OPEN until matched); poll until the
        stream appears or ``open_timeout`` elapses.
        """
        import time as _time

        rid = reader_id or f"reader-{uuid.uuid4().hex[:8]}"
        interval = OPEN_POLL_INTERVAL if poll_interval is None else poll_interval
        deadline = _time.monotonic() + open_timeout
        while not self.stream_exists(name):
            if _time.monotonic() > deadline:
                raise TimeoutError(f"stream {name!r} never appeared")
            _time.sleep(interval)
        self.register_reader(name, rid)
        rpc = self._fresh_connection() if dedicated_connection or read_ahead else None
        ra_rpc = self._fresh_connection() if read_ahead else None
        return BufferReader(
            self,
            name,
            rid,
            read_timeout=read_timeout,
            rpc=rpc,
            read_ahead_rpc=ra_rpc,
            read_ahead_bytes=read_ahead_bytes,
        )

    def close(self) -> None:
        self._rpc.close()

    def __enter__(self) -> "GridBufferClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BufferWriter(io.RawIOBase):
    """File-like writer feeding a Grid Buffer stream.

    With ``coalesce_bytes > 0`` small sequential writes are buffered
    locally and pushed in runs of that size (one RPC per run instead of
    one per WRITE); the run is flushed on seek, ``flush`` and close.
    """

    def __init__(
        self,
        client: GridBufferClient,
        name: str,
        write_timeout: Optional[float] = None,
        coalesce_bytes: int = 0,
    ):
        super().__init__()
        self._client = client
        self.name = name
        self._pos = 0
        self._timeout = write_timeout
        self._closed_writer = False
        self._lock = threading.Lock()
        self._m_write_rpcs = _WRITE_RPCS.labels(stream=name)
        self._coalescer = (
            WriteCoalescer(self._push_run, coalesce_bytes) if coalesce_bytes > 0 else None
        )

    def _push_run(self, offset: int, data: bytes) -> None:
        self._client.write(self.name, offset, data, timeout=self._timeout)
        self._m_write_rpcs.inc()

    @property
    def rpc_writes(self) -> int:
        """WRITE RPCs actually issued (== writes unless coalescing)."""
        return self._coalescer.flushes if self._coalescer is not None else self._raw_writes

    _raw_writes = 0

    def writable(self) -> bool:
        return True

    def write(self, data) -> int:  # type: ignore[override]
        data = bytes(data)
        with self._lock:
            if self._closed_writer:
                raise ValueError("write to closed BufferWriter")
            if data:
                if self._coalescer is not None:
                    self._coalescer.write(self._pos, data)
                else:
                    self._client.write(self.name, self._pos, data, timeout=self._timeout)
                    self._raw_writes += 1
                    self._m_write_rpcs.inc()
                self._pos += len(data)
        return len(data)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        with self._lock:
            if self._coalescer is not None:
                self._coalescer.flush()
            if whence == os.SEEK_SET:
                self._pos = offset
            elif whence == os.SEEK_CUR:
                self._pos += offset
            else:
                raise OSError("SEEK_END unsupported on a stream writer")
            if self._pos < 0:
                raise ValueError("negative seek position")
            return self._pos

    def seekable(self) -> bool:
        return True

    def tell(self) -> int:
        return self._pos

    def flush(self) -> None:  # type: ignore[override]
        with self._lock:
            if self._coalescer is not None and not self._closed_writer:
                self._coalescer.flush()
        super().flush()

    def close(self) -> None:
        with self._lock:
            if not self._closed_writer:
                self._closed_writer = True
                try:
                    if self._coalescer is not None:
                        self._coalescer.flush()
                finally:
                    self._client.close_writer(self.name)
        super().close()


class _ReadAheadWorker:
    """One in-flight read-ahead request on a dedicated connection.

    The worker owns its RPC; a request that blocks server-side (data
    not yet written) therefore never head-of-line blocks the demand
    connection.  At most one request is outstanding — double buffering,
    exactly: the block being consumed plus the block in flight.
    """

    def __init__(self, client: GridBufferClient, name: str, reader_id: str,
                 rpc: RpcClient, timeout: Optional[float]):
        self._client = client
        self._name = name
        self._reader_id = reader_id
        self._rpc = rpc
        self._timeout = timeout
        self._cv = threading.Condition()
        self._want: Optional[Tuple[int, int]] = None    # queued (offset, length)
        self._busy_offset: Optional[int] = None         # offset of in-flight RPC
        self._result: Optional[Tuple[int, bytes]] = None
        self._error: Optional[Tuple[int, BaseException]] = None
        self._stopped = False
        self._thread = threading.Thread(
            target=self._run, name=f"gb-readahead:{name}", daemon=True
        )
        self._thread.start()

    def request(self, offset: int, length: int) -> None:
        """Ask for ``[offset, offset+length)`` unless one is outstanding."""
        with self._cv:
            if self._stopped or self._want is not None or self._busy_offset is not None:
                return
            if self._result is not None and self._result[0] == offset:
                return  # already buffered
            self._want = (offset, length)
            self._cv.notify_all()

    def take(self, offset: int) -> Optional[bytes]:
        """Data at ``offset`` from the pipeline, waiting if it is queued
        or in flight there; None means the caller must read directly.
        A read-ahead that errored *at this offset* re-raises here; stale
        errors for other offsets are dropped (the demand path will hit
        any persistent stream failure itself)."""
        with self._cv:
            while True:
                if self._error is not None:
                    eoff, exc = self._error
                    self._error = None
                    if eoff == offset:
                        raise exc
                if self._result is not None:
                    roff, data = self._result
                    self._result = None
                    if roff == offset:
                        return data
                    return None  # stale (seek happened): discard
                pending = self._want[0] if self._want is not None else self._busy_offset
                if pending == offset:
                    self._cv.wait(timeout=0.05)
                    continue
                return None

    def discard(self) -> None:
        with self._cv:
            self._result = None
            self._want = None

    def close(self) -> None:
        with self._cv:
            self._stopped = True
            self._want = None
            self._cv.notify_all()
        # Closing the socket unblocks a server-side blocking read.
        self._rpc.close()
        self._thread.join(timeout=1.0)

    def _run(self) -> None:
        while True:
            with self._cv:
                while self._want is None and not self._stopped:
                    self._cv.wait()
                if self._stopped:
                    return
                offset, length = self._want
                self._want = None
                self._busy_offset = offset
            try:
                data = self._client.read(
                    self._name, self._reader_id, offset, length,
                    timeout=self._timeout, rpc=self._rpc,
                )
                with self._cv:
                    self._result = (offset, data)
            except BaseException as exc:  # noqa: BLE001 - surfaced on take()
                with self._cv:
                    if not self._stopped:
                        self._error = (offset, exc)
            finally:
                with self._cv:
                    self._busy_offset = None
                    self._cv.notify_all()


class BufferReader(ReadIntoFromRead, io.RawIOBase):
    """File-like reader over a Grid Buffer stream.

    Sequential reads drain the hash table; re-reads and backwards
    seeks hit the server-side cache file — exactly the DARLAM pattern
    in Section 5.3.  With a ``read_ahead_rpc`` the next chunk is
    requested in the background while the current one is consumed
    (double buffering), overlapping RPC latency with application work.
    """

    def __init__(
        self,
        client: GridBufferClient,
        name: str,
        reader_id: str,
        read_timeout: Optional[float] = None,
        rpc: Optional[RpcClient] = None,
        read_ahead_rpc: Optional[RpcClient] = None,
        read_ahead_bytes: int = DEFAULT_BLOCK_SIZE * 16,
    ):
        super().__init__()
        self._client = client
        self.name = name
        self.reader_id = reader_id
        self._pos = 0
        self._timeout = read_timeout
        self._rpc = rpc
        self._ra_bytes = max(1, read_ahead_bytes)
        self._ra: Optional[_ReadAheadWorker] = None
        self._ra_buf = b""          # data already fetched ahead, at _pos
        self._at_eof = False
        self.readahead_hits = 0     # reads served (fully) from the pipeline
        self._m_ra_hits = _READAHEAD_HITS.labels(stream=name)
        if read_ahead_rpc is not None:
            self._ra = _ReadAheadWorker(client, name, reader_id, read_ahead_rpc, read_timeout)

    def readable(self) -> bool:
        return True

    def _read_direct(self, size: int) -> bytes:
        data = self._client.read(
            self.name, self.reader_id, self._pos, size, timeout=self._timeout, rpc=self._rpc
        )
        return data

    def read(self, size: int = -1) -> bytes:  # type: ignore[override]
        if size is None or size < 0:
            chunks = []
            while True:
                chunk = self.read(DEFAULT_BLOCK_SIZE * 16)
                if not chunk:
                    break
                chunks.append(chunk)
            return b"".join(chunks)
        if size == 0:
            return b""
        out = bytearray()
        # 1. Serve from the read-ahead buffer first.
        if self._ra_buf:
            take = min(size, len(self._ra_buf))
            out += self._ra_buf[:take]
            self._ra_buf = self._ra_buf[take:]
            self._pos += take
            size -= take
            if size == 0:
                self.readahead_hits += 1
                self._m_ra_hits.inc()
                self._schedule_readahead()
                return bytes(out)
        # 2. Collect a completed/in-flight read-ahead landing at _pos.
        if self._ra is not None and not self._at_eof:
            data = self._ra.take(self._pos)
            if data is not None:
                if not data:
                    self._at_eof = True
                else:
                    take = min(size, len(data))
                    out += data[:take]
                    self._ra_buf = data[take:]
                    self._pos += take
                    size -= take
                if out:
                    self.readahead_hits += 1
                    self._m_ra_hits.inc()
                    self._schedule_readahead()
                    return bytes(out)
        # 3. Whatever is still missing comes from a demand RPC (a short
        # read is fine — POSIX semantics — but never block past EOF).
        if size > 0 and not self._at_eof:
            data = self._read_direct(size)
            if not data and not out:
                self._at_eof = True
            out += data
            self._pos += len(data)
        self._schedule_readahead()
        return bytes(out)

    def _schedule_readahead(self) -> None:
        if self._ra is None or self._at_eof:
            return
        self._ra.request(self._pos + len(self._ra_buf), self._ra_bytes)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        if whence == os.SEEK_SET:
            new_pos = offset
        elif whence == os.SEEK_CUR:
            new_pos = self._pos + offset
        else:
            raise OSError("SEEK_END unsupported on a stream reader")
        if new_pos < 0:
            raise ValueError("negative seek position")
        if new_pos != self._pos:
            if self._ra_buf and self._pos <= new_pos < self._pos + len(self._ra_buf):
                # Seek lands inside the buffered run: keep the tail.
                self._ra_buf = self._ra_buf[new_pos - self._pos:]
            else:
                self._ra_buf = b""
                if self._ra is not None:
                    self._ra.discard()
            self._at_eof = False
        self._pos = new_pos
        return self._pos

    def seekable(self) -> bool:
        return True

    def tell(self) -> int:
        return self._pos

    def close(self) -> None:
        if self._ra is not None:
            self._ra.close()
            self._ra = None
        if self._rpc is not None:
            self._rpc.close()
            self._rpc = None
        super().close()
