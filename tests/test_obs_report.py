"""Tests for the trace report renderer (repro.obs.report)."""

import json

import pytest

from repro import obs
from repro.obs.report import (
    load_trace,
    main,
    render_counters,
    render_link_table,
    render_report,
    render_timeline,
)


def _span(name, start, end, **attrs):
    return {
        "type": "span",
        "name": name,
        "trace": "t1",
        "span": name,
        "parent": None,
        "start": start,
        "end": end,
        "dur": end - start,
        "thread": "MainThread",
        "attrs": attrs,
    }


SNAPSHOT = {
    "gridftp_rpc_seconds": {
        "type": "histogram",
        "series": [
            {
                "labels": {"peer": "alpha:5000", "op": "get_block"},
                "value": {"count": 10, "sum": 0.5, "buckets": {}},
            },
        ],
    },
    "gridftp_rpc_bytes_total": {
        "type": "counter",
        "series": [
            {"labels": {"peer": "alpha:5000", "op": "get_block"}, "value": 81920},
        ],
    },
    "fm_ops_total": {
        "type": "counter",
        "series": [{"labels": {"op": "read", "mode": "local"}, "value": 7}],
    },
}


class TestTimeline:
    def test_bars_scale_to_wallclock(self):
        records = [
            _span("workflow", 0.0, 10.0, workflow="climate"),
            _span("task", 0.0, 5.0, task="ccam"),
            _span("task", 2.0, 8.0, task="cc2lam"),
            _span("task", 6.0, 10.0, task="darlam"),
        ]
        out = render_timeline(records, width=40)
        lines = out.splitlines()
        assert "workflow climate" in lines[0]
        assert [line.split()[0] for line in lines[1:]] == ["ccam", "cc2lam", "darlam"]
        ccam, _, darlam = lines[1:]
        # ccam starts at the left edge; darlam's bar starts past midline.
        assert ccam.split("|")[1].startswith("#")
        assert darlam.split("|")[1].startswith(" " * 20)

    def test_unfinished_spans_ignored(self):
        records = [_span("task", 0.0, 1.0, task="hung")]
        records[0]["end"] = None
        records[0]["dur"] = None
        assert "(no finished spans in trace)" in render_timeline(records)

    def test_falls_back_to_any_span_kind(self):
        out = render_timeline([_span("fetch", 0.0, 1.0)])
        assert "fetch" in out


class TestLinkTable:
    def test_peer_row_from_rpc_series(self):
        out = render_link_table(SNAPSHOT)
        row = [line for line in out.splitlines() if line.startswith("alpha:5000")][0]
        cols = row.split()
        assert cols[1] == "10"       # rpcs
        assert cols[2] == "81920"    # bytes
        assert float(cols[3]) == 50.0  # avg ms = 0.5s / 10
        assert abs(float(cols[4]) - 81920 / 0.5 / (1 << 20)) < 0.01

    def test_no_snapshot(self):
        assert "no metrics snapshot" in render_link_table(None)

    def test_snapshot_without_rpc_series(self):
        assert "no gridftp_rpc_*" in render_link_table({"fm_ops_total": SNAPSHOT["fm_ops_total"]})


class TestCounters:
    def test_counter_lines(self):
        out = render_counters(SNAPSHOT)
        assert "fm_ops_total{op=read,mode=local} = 7" in out

    def test_limit_truncates(self):
        snap = {
            f"c{i}_total": {"type": "counter", "series": [{"labels": {}, "value": 1}]}
            for i in range(5)
        }
        out = render_counters(snap, limit=2)
        assert "... and 3 more" in out


class TestCli:
    def test_missing_trace_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_renders_trace_file(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        records = [
            _span("task", 0.0, 1.0, task="ccam"),
            {"type": "metrics", "time": 1.0, "snapshot": SNAPSHOT},
            "not a dict",
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\nbroken{json\n")
        assert load_trace(path) == records[:2]  # malformed lines skipped
        assert main([str(path), "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "Per-task timeline" in out
        assert "alpha:5000" in out
        assert "fm_ops_total" in out


class TestClimatePipelineTrace:
    def test_report_from_real_climate_run(self, tmp_path, capsys):
        """Acceptance: the report renders a per-task timeline from an
        actual climate-pipeline trace captured via the default tracer."""
        from repro.apps.climate.pipeline import climate_workflow
        from repro.workflow.runner import RealRunner
        from repro.workflow.scheduler import plan_workflow

        trace_path = tmp_path / "climate.jsonl"
        sink = obs.JsonLinesSink(trace_path)
        prior = obs.configure(sink)
        try:
            wf = climate_workflow()
            plan = plan_workflow(wf, {s: "m1" for s in ("ccam", "cc2lam", "darlam")})
            runner = RealRunner(
                plan,
                params={"nlon": 32, "nlat": 16, "nsteps": 4,
                        "lam_nx": 24, "lam_ny": 20, "lam_refine": 2},
                stage_timeout=120,
            )
            result = runner.run()
            assert result.ok, result.errors
            runner.deployment.stop()
            obs.write_metrics()
        finally:
            obs.configure(prior)
            sink.close()

        assert main([str(trace_path)]) == 0
        out = capsys.readouterr().out
        for task in ("ccam", "cc2lam", "darlam"):
            assert task in out, f"timeline missing task {task}"
        assert "Per-task timeline" in out
        assert "workflow climate" in out
        assert "Counters (non-zero)" in out

    def test_full_report_helper(self):
        records = [
            _span("task", 0.0, 2.0, task="ccam"),
            {"type": "metrics", "time": 2.0, "snapshot": SNAPSHOT},
        ]
        out = render_report(records)
        assert "Per-task timeline" in out
        assert "Per-peer link table" in out
        assert "Counters (non-zero)" in out


def _pspan(proc, name, span_id, parent, start, end, **attrs):
    """A finished span in ``proc``'s clock domain (multi-process tests)."""
    return {
        "type": "span", "name": name, "trace": "t1", "span": span_id,
        "parent": parent, "start": start, "end": end, "dur": end - start,
        "thread": "MainThread", "proc": proc, "attrs": attrs,
    }


def _rpc_pair(client_proc, server_proc, n, start, dur, skew, op="gb.read"):
    """Matched rpc.client/rpc.server spans; the server clock runs ``skew``
    seconds ahead (its local timestamps are ``real + skew``)."""
    cid, sid = f"{client_proc}-c{n}", f"{server_proc}-s{n}"
    return [
        _pspan(client_proc, "rpc.client", cid, None, start, start + dur, op=op),
        _pspan(server_proc, "rpc.server", sid, cid,
               start + 0.1 * dur + skew, start + 0.9 * dur + skew, op=op),
    ]


class TestClockOffsets:
    def test_recovers_synthetic_skew(self):
        from repro.obs.report import clock_offsets

        records = [_pspan("driver", "workflow", "wf", None, 0.0, 10.0)]
        for n in range(5):
            records += _rpc_pair("driver", "buffer", n, 1.0 + n, 0.5, skew=1000.0)
        offsets = clock_offsets(records)
        assert offsets["driver"] == 0.0
        assert offsets["buffer"] == pytest.approx(-1000.0, abs=1e-6)

    def test_median_rejects_outlier_samples(self):
        from repro.obs.report import clock_offsets

        records = [_pspan("driver", "workflow", "wf", None, 0.0, 10.0)]
        for n in range(4):
            records += _rpc_pair("driver", "remote", n, 1.0 + n, 0.4, skew=50.0)
        # One retried/preempted RPC with a wild apparent offset.
        records += _rpc_pair("driver", "remote", 99, 8.0, 0.4, skew=5000.0)
        offsets = clock_offsets(records)
        assert offsets["remote"] == pytest.approx(-50.0, abs=1e-6)

    def test_offsets_compose_transitively(self):
        from repro.obs.report import clock_offsets

        # driver -> ftp -> archiver: the archiver only ever talks to ftp.
        records = [_pspan("driver", "workflow", "wf", None, 0.0, 20.0)]
        for n in range(3):
            records += _rpc_pair("driver", "ftp", n, 1.0 + n, 0.5, skew=10.0)
            records += _rpc_pair("ftp", "archiver", 100 + n,
                                 11.0 + n + 10.0, 0.5, skew=7.0)
        offsets = clock_offsets(records)
        assert offsets["ftp"] == pytest.approx(-10.0, abs=1e-6)
        assert offsets["archiver"] == pytest.approx(-17.0, abs=1e-6)

    def test_unlinked_process_defaults_to_zero(self):
        from repro.obs.report import clock_offsets

        records = [_pspan("driver", "workflow", "wf", None, 0.0, 5.0),
                   _pspan("island", "task", "t", None, 2.0, 3.0, task="x")]
        assert clock_offsets(records)["island"] == 0.0


class TestMergeTraces:
    def test_merge_rebases_into_reference_clock(self):
        from repro.obs.report import merge_traces

        driver = [_pspan("driver", "workflow", "wf", None, 0.0, 10.0)]
        buffer_side = []
        for n in range(3):
            pair = _rpc_pair("driver", "buffer", n, 1.0 + n, 0.5, skew=500.0)
            driver.append(pair[0])
            buffer_side.append(pair[1])
        merged, offsets = merge_traces([driver, buffer_side])
        assert offsets["buffer"] == pytest.approx(-500.0, abs=1e-6)
        for record in merged:
            if record["name"] == "rpc.server":
                caller = next(r for r in merged if r["span"] == record["parent"])
                assert caller["start"] < record["start"] < caller["end"]
        assert [r["start"] for r in merged] == sorted(r["start"] for r in merged)

    def test_proc_less_records_grouped_per_file(self):
        from repro.obs.report import merge_traces

        old = [dict(_pspan("x", "task", "t", None, 0.0, 1.0, task="a"))]
        del old[0]["proc"]
        merged, _ = merge_traces([old])
        assert merged[0]["proc"] == "file:0"


class TestCriticalPath:
    def test_priority_attribution(self):
        from repro.obs.report import critical_path

        records = [
            _pspan("d", "workflow", "wf", None, 0.0, 10.0),
            _pspan("d", "task", "t1", "wf", 0.0, 10.0, task="stage"),
            # 2s of transport, 1s of which is really buffer-wait.
            _pspan("d", "rpc.client", "c1", "t1", 2.0, 4.0, op="gb.read"),
            _pspan("b", "rpc.server", "s1", "c1", 2.5, 3.5, op="gb.read"),
            # 1s of queue-wait overlapping nothing else.
            _pspan("d", "task.wait", "w1", "t1", 8.0, 9.0, task="stage"),
        ]
        result = critical_path(records)
        assert result["makespan"] == pytest.approx(10.0)
        cats = result["categories"]
        assert cats["buffer-wait"] == pytest.approx(1.0)
        assert cats["transport"] == pytest.approx(1.0)
        assert cats["queue-wait"] == pytest.approx(1.0)
        assert cats["compute"] == pytest.approx(7.0)
        assert result["coverage"] == pytest.approx(1.0)

    def test_non_buffer_server_spans_are_transport(self):
        from repro.obs.report import critical_path

        records = [
            _pspan("d", "workflow", "wf", None, 0.0, 4.0),
            _pspan("d", "rpc.client", "c1", "wf", 0.0, 2.0, op="get_block"),
            _pspan("f", "rpc.server", "s1", "c1", 0.5, 1.5, op="get_block"),
        ]
        cats = critical_path(records)["categories"]
        assert cats["transport"] == pytest.approx(2.0)
        assert cats["buffer-wait"] == 0.0

    def test_spans_clip_to_workflow_window(self):
        from repro.obs.report import critical_path

        records = [
            _pspan("d", "workflow", "wf", None, 5.0, 10.0),
            _pspan("d", "task", "t1", "wf", 0.0, 20.0, task="runaway"),
        ]
        result = critical_path(records)
        assert result["categories"]["compute"] == pytest.approx(5.0)
        assert result["coverage"] == pytest.approx(1.0)

    def test_no_spans_yields_empty_result(self):
        from repro.obs.report import critical_path

        assert critical_path([])["makespan"] == 0.0


class TestMergedCli:
    def test_multi_file_report_with_critical_path(self, tmp_path, capsys):
        driver_file, remote_file = tmp_path / "d.jsonl", tmp_path / "r.jsonl"
        driver = [_pspan("driver", "workflow", "wf", None, 0.0, 10.0),
                  _pspan("driver", "task", "t1", "wf", 0.0, 10.0, task="stage")]
        remote = []
        for n in range(3):
            pair = _rpc_pair("driver", "buffer", n, 1.0 + n, 0.5, skew=123.0)
            driver.append(pair[0])
            remote.append(pair[1])
        driver_file.write_text("\n".join(json.dumps(r) for r in driver))
        remote_file.write_text("\n".join(json.dumps(r) for r in remote))

        assert main([str(driver_file), str(remote_file), "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "Clock alignment" in out
        assert "buffer" in out
        assert "Critical-path breakdown" in out
        assert "attributed:" in out
