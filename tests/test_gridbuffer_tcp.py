"""Integration tests: Grid Buffer over real TCP."""

import threading

import pytest

from repro.gridbuffer.client import GridBufferClient
from repro.transport.tcp import RpcError


@pytest.fixture()
def client(buffer_server):
    c = GridBufferClient(*buffer_server.address)
    yield c
    c.close()


class TestRemoteStream:
    def test_roundtrip(self, client):
        client.create_stream("s")
        client.register_reader("s", "r")
        client.write("s", 0, b"over the wire")
        client.close_writer("s")
        assert client.read("s", "r", 0, 13) == b"over the wire"

    def test_stream_exists(self, client):
        assert not client.stream_exists("s")
        client.create_stream("s")
        assert client.stream_exists("s")

    def test_stats(self, client):
        client.create_stream("s")
        client.register_reader("s", "r")
        client.write("s", 0, b"abcd")
        stats = client.stats("s")
        assert stats["bytes_written"] == 4

    def test_error_propagates_as_rpc_error(self, client):
        with pytest.raises(RpcError):
            client.write("unknown-stream", 0, b"x")

    def test_drop(self, client):
        client.create_stream("s")
        client.drop_stream("s")
        assert not client.stream_exists("s")


class TestFileLikeAdapters:
    def test_writer_reader_threads(self, client, buffer_server):
        payload = bytes(i % 256 for i in range(50_000))

        def produce():
            w = client.open_writer("wire", cache=True)
            pos = 0
            while pos < len(payload):
                w.write(payload[pos : pos + 4096])
                pos += 4096
            w.close()

        received = {}

        def consume():
            reader_client = GridBufferClient(*buffer_server.address)
            r = reader_client.open_reader("wire", read_timeout=10)
            received["data"] = r.read()
            r.close()
            reader_client.close()

        tw = threading.Thread(target=produce)
        tr = threading.Thread(target=consume)
        tw.start()
        tr.start()
        tw.join(timeout=30)
        tr.join(timeout=30)
        assert received["data"] == payload

    def test_reader_seek_and_reread_via_cache(self, client):
        w = client.open_writer("seekable", cache=True)
        w.write(b"0123456789")
        w.close()
        r = client.open_reader("seekable", read_timeout=5)
        assert r.read(10) == b"0123456789"
        r.seek(2)
        assert r.read(4) == b"2345"
        assert r.tell() == 6
        r.close()

    def test_writer_tracks_position(self, client):
        w = client.open_writer("pos")
        w.write(b"abc")
        assert w.tell() == 3
        w.seek(10)
        w.write(b"z")
        assert w.tell() == 11

    def test_write_after_close_raises(self, client):
        w = client.open_writer("closed")
        w.write(b"x")
        w.close()
        with pytest.raises(ValueError):
            w.write(b"y")

    def test_broadcast_two_remote_readers(self, client, buffer_server):
        w = client.open_writer("bcast", n_readers=2, cache=True)
        w.write(b"fanout")
        w.close()
        got = []
        for name in ("one", "two"):
            c = GridBufferClient(*buffer_server.address)
            r = c.open_reader("bcast", reader_id=name, read_timeout=5)
            got.append(r.read(6))
            r.close()
            c.close()
        assert got == [b"fanout", b"fanout"]

    def test_readinto_supported(self, client):
        """BufferedReader requires raw readinto — regression test."""
        import io

        w = client.open_writer("buffered")
        w.write(b"line one\nline two\n")
        w.close()
        r = client.open_reader("buffered", read_timeout=5)
        buffered = io.BufferedReader(r)
        assert buffered.readline() == b"line one\n"
        assert buffered.readline() == b"line two\n"
        buffered.close()
