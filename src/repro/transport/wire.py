"""Binary wire framing for the RPC layer.

The legacy frame is a 4-byte big-endian length followed by a JSON
header and a raw payload.  That header costs a JSON encode + decode on
*every* frame, which is what dominates the PR 3 bench once link latency
is removed.  This module defines the binary replacement:

Preamble (14 bytes, fixed)::

    +-------+---------+-------+--------+------------+-------------+
    | magic | version | flags | op id  | fields_len | payload_len |
    |  0xB1 |  uint8  | uint8 | u16 BE |   u32 BE   |   u32 BE    |
    +-------+---------+-------+--------+------------+-------------+

followed by ``fields_len`` bytes of a compact varint-packed field
table (the op arguments that used to live in the JSON header) and
``payload_len`` bytes of raw payload.

*Interop by construction*: a legacy JSON frame starts with its header
length, and ``MAX_HEADER`` (16 MiB) keeps that first byte at 0x00 or
0x01 — never 0xB1.  A receiver therefore sniffs the first byte of each
frame and accepts both framings on one connection, which is what lets
mixed-version peers talk without a handshake round trip.  The client
side still needs to learn whether its *server* is binary-capable
before sending a binary frame (an old server would read the magic as a
giant length and drop the connection); that is negotiated by the
``_wire`` probe key in :mod:`repro.transport.tcp`.

Field table
-----------

``varint count`` then per field: a key id (varint; well-known keys from
:data:`KEYS` encode as one byte, anything else as id 0 + literal
string) and a type-tagged value:

====  =======================================================
tag   encoding
====  =======================================================
0/1/2 None / True / False (no body)
3     int — zigzag varint
4     float — 8-byte IEEE big-endian
5     str — varint length + UTF-8
6     bytes — varint length + raw
7     list — varint count + values
8     dict — varint count + (str key, value) pairs
====  =======================================================

Known op names from :data:`OPS` ride in the preamble's op id; unknown
ops set id 0 and carry the name in the field table, so arbitrary
test/bench handlers work unchanged.

Scratch buffers
---------------

Both frame builders encode into a caller-owned ``bytearray`` that is
cleared and reused across frames, so the steady-state send path
performs no per-frame header allocations (the JSON builder here also
replaces the old ``pack + concat`` in :func:`repro.transport.tcp.send_frame`).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Mapping, Tuple

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "PREAMBLE",
    "PREAMBLE_SIZE",
    "WIRE_KEY",
    "TRACE_KEY",
    "FLAG_CRC",
    "KNOWN_FLAGS",
    "CRC_TRAILER",
    "CRC_TRAILER_SIZE",
    "OPS",
    "op_id",
    "op_name",
    "encode_fields",
    "decode_fields",
    "build_binary_frame",
    "build_json_frame",
    "decode_binary_header",
    "wire_advert",
    "advert_has_crc",
    "WireError",
    "IntegrityError",
]

#: First byte of every binary frame.  A legacy JSON frame starts with
#: the high byte of a <=16 MiB header length (0x00/0x01), so sniffing
#: one byte disambiguates the two framings.
MAGIC = 0xB1

#: Bumped only for incompatible preamble changes.
WIRE_VERSION = 1

#: magic, version, flags, op id, fields_len, payload_len.
PREAMBLE = struct.Struct(">BBBHII")
PREAMBLE_SIZE = PREAMBLE.size

#: Header key used by the client's capability probe: a JSON request
#: carrying it asks "do you speak binary framing?"; a binary-capable
#: server echoes it in the reply header.
WIRE_KEY = "_wire"

#: Header key carrying the caller's trace context (``[trace_id,
#: span_id]``).  Travels as a plain key in legacy JSON — old peers
#: ignore it — and as a one-byte known-key id in the binary field
#: table; no renegotiation is needed in either codec.
TRACE_KEY = "_trace"

#: Preamble flag bit: the frame's payload is followed by a 4-byte
#: big-endian crc32 trailer computed over the payload bytes (masked to
#: unsigned, :func:`repro.ioutil.crc32`).  The trailer covers *only*
#: the payload — the preamble and field table are length-delimited and
#: structurally validated, while the payload is the part that flows
#: through opaque bulk-copy paths where a flipped bit survives parsing.
FLAG_CRC = 0x01

#: Mask of flag bits this build understands.  A frame carrying any
#: other bit is refused (we cannot know how many trailer bytes it
#: implies, so reading on would desynchronise the stream).
KNOWN_FLAGS = FLAG_CRC

CRC_TRAILER = struct.Struct(">I")
CRC_TRAILER_SIZE = CRC_TRAILER.size

_FLOAT = struct.Struct(">d")


class WireError(ValueError):
    """Malformed binary field table."""


class IntegrityError(OSError):
    """A frame or block failed checksum verification.

    Deliberately *not* a :class:`ConnectionError`: the connection is
    healthy, the data is wrong.  It still subclasses :class:`OSError`
    so every recovery path built in PRs 4–8 (idempotency-gated RPC
    retries, replica failover, copy-in resume, GNS degradation) treats
    a detected corruption exactly like any other transient IO failure:
    drop the tainted source, re-request from a clean one.
    """


def wire_advert() -> list:
    """The server's ``_wire`` probe reply value.

    Old clients only check the key for presence, so the value can carry
    capability detail: a list ``[WIRE_VERSION, "crc", ...]``.  Old
    servers still reply with the bare integer ``WIRE_VERSION``; new
    clients accept both shapes via :func:`advert_has_crc`.
    """
    return [WIRE_VERSION, "crc"]


def advert_has_crc(advert: Any) -> bool:
    """True if a probe reply advertises per-frame CRC support.

    A sender must never set :data:`FLAG_CRC` toward a peer that did not
    advertise it — an old receiver ignores the flags byte and would
    read the 4 trailer bytes as the next frame's start.
    """
    return isinstance(advert, (list, tuple)) and "crc" in advert


# ---------------------------------------------------------------------------
# Op and key tables (append-only: ids are part of the wire contract)
# ---------------------------------------------------------------------------

OPS: Tuple[str, ...] = (
    # Grid Buffer
    "gb.create", "gb.register_reader", "gb.write", "gb.write_multi",
    "gb.read", "gb.read_multi", "gb.consume", "gb.consume_multi",
    "gb.close_writer", "gb.stats", "gb.drop", "gb.exists",
    "gb.abort", "gb.resume", "gb.high_water",
    # GridFTP-like file server
    "size", "exists", "get_block", "put_block", "checksum",
    "mkdirs", "delete", "pull_from",
    # GNS
    "gns.resolve", "gns.add", "gns.remove", "gns.list",
    "gns.announce", "gns.pin",
    # Cooperative block cache (PR 8): served by reader processes, not
    # the origin service.
    "gb.peer_read",
    # GNS control plane (PR 10): atomic multi-record transactions and
    # long-poll change subscriptions.
    "gns.txn", "gns.watch",
)

_OP_TO_ID: Dict[str, int] = {name: i + 1 for i, name in enumerate(OPS)}
_ID_TO_OP: Dict[int, str] = {i + 1: name for i, name in enumerate(OPS)}

KEYS: Tuple[str, ...] = (
    "op", "ok", "error", "message", "name", "reader_id", "offset",
    "length", "timeout", "budget", "min_bytes", "ranges", "token",
    "seq", "offsets", "sizes", "n_readers", "capacity_bytes", "cache",
    "eof", "total", "written", "stall", "stats", "exists", "path",
    "truncate", "src_host", "src_port", "src_path", "dst_path",
    "streams", "block_size", "entries", "reason", "deleted", "sha256",
    "size", "bytes", "machine", "record", "records", "payload_len",
    WIRE_KEY, TRACE_KEY,
    # Cooperative block cache (PR 8).  ``gen`` is the stream generation,
    # ``peer`` a holder's "host:port" peer-server address, ``holds``/
    # ``drops`` advertised/evicted ranges piggybacked on consume acks,
    # ``peer_hints`` the hint fan-out K requested by a reader,
    # ``cached_at`` the server's holder hint in read replies, ``origin``
    # the origin server a peer-read is scoped to, ``crc`` the peer
    # reply's payload checksum, ``hint_from`` the reader's true read
    # frontier (hints on the ack channel would otherwise be computed at
    # the acked frontier, which trails it).
    "gen", "peer", "holds", "drops", "peer_hints", "cached_at",
    "origin", "crc", "hint_from",
    # GNS control plane (PR 10).  ``ns`` scopes an op to a namespace,
    # ``auth`` carries its bearer token, ``revision``/``from_revision``
    # frame the change log, ``events`` is a watch reply's change batch,
    # ``reset`` marks a compaction-forced snapshot, ``ops`` a txn's
    # operation list, ``removed`` the gns.remove reply count.
    "ns", "auth", "revision", "from_revision", "events", "reset",
    "ops", "removed",
)

_KEY_TO_ID: Dict[str, int] = {name: i + 1 for i, name in enumerate(KEYS)}
_ID_TO_KEY: Dict[int, str] = {i + 1: name for i, name in enumerate(KEYS)}


def op_id(op: str) -> int:
    """Wire id for a known op, or 0 (op name travels in the fields)."""
    return _OP_TO_ID.get(op, 0)


def op_name(opid: int) -> str:
    return _ID_TO_OP.get(opid, "")


# ---------------------------------------------------------------------------
# Varint field codec
# ---------------------------------------------------------------------------


def _put_uvarint(out: bytearray, n: int) -> None:
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _put_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(0)
    elif value is True:
        out.append(1)
    elif value is False:
        out.append(2)
    elif type(value) is int:
        out.append(3)
        _put_uvarint(out, (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1)
    elif type(value) is float:
        out.append(4)
        out += _FLOAT.pack(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(5)
        _put_uvarint(out, len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        out.append(6)
        _put_uvarint(out, len(value))
        out += value
    elif isinstance(value, (list, tuple)):
        out.append(7)
        _put_uvarint(out, len(value))
        for item in value:
            _put_value(out, item)
    elif isinstance(value, dict):
        out.append(8)
        _put_uvarint(out, len(value))
        for key, item in value.items():
            raw = str(key).encode("utf-8")
            _put_uvarint(out, len(raw))
            out += raw
            _put_value(out, item)
    elif isinstance(value, int):  # bool handled above; int subclasses
        out.append(3)
        _put_uvarint(out, (value << 1) if value >= 0 else ((-value) << 1) - 1)
    elif isinstance(value, float):
        out.append(4)
        out += _FLOAT.pack(value)
    else:
        raise WireError(f"unencodable header value type {type(value).__name__}")


def encode_fields(header: Mapping[str, Any], out: bytearray) -> None:
    """Append the varint field table for ``header`` to ``out``.

    ``payload_len`` is skipped — it lives in the preamble.
    """
    count_pos = len(out)
    count = 0
    out.append(0)  # patched below (field counts stay < 128 in practice)
    key_ids = _KEY_TO_ID
    for key, value in header.items():
        if key == "payload_len":
            continue
        kid = key_ids.get(key, 0)
        if kid:
            out.append(kid)
        else:
            out.append(0)
            raw = key.encode("utf-8")
            _put_uvarint(out, len(raw))
            out += raw
        _put_value(out, value)
        count += 1
    if count > 0x7F:
        raise WireError(f"too many header fields ({count})")
    out[count_pos] = count


def _get_uvarint(buf, pos: int) -> Tuple[int, int]:
    shift = 0
    result = 0
    while True:
        b = buf[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise WireError("varint overflow")


def _get_value(buf, pos: int) -> Tuple[Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == 0:
        return None, pos
    if tag == 1:
        return True, pos
    if tag == 2:
        return False, pos
    if tag == 3:
        raw, pos = _get_uvarint(buf, pos)
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1), pos
    if tag == 4:
        return _FLOAT.unpack_from(buf, pos)[0], pos + 8
    if tag == 5:
        n, pos = _get_uvarint(buf, pos)
        return bytes(buf[pos : pos + n]).decode("utf-8"), pos + n
    if tag == 6:
        n, pos = _get_uvarint(buf, pos)
        return bytes(buf[pos : pos + n]), pos + n
    if tag == 7:
        n, pos = _get_uvarint(buf, pos)
        items = []
        for _ in range(n):
            item, pos = _get_value(buf, pos)
            items.append(item)
        return items, pos
    if tag == 8:
        n, pos = _get_uvarint(buf, pos)
        out: Dict[str, Any] = {}
        for _ in range(n):
            klen, pos = _get_uvarint(buf, pos)
            key = bytes(buf[pos : pos + klen]).decode("utf-8")
            pos += klen
            out[key], pos = _get_value(buf, pos)
        return out, pos
    raise WireError(f"unknown value tag {tag}")


def decode_fields(buf) -> Dict[str, Any]:
    """Decode a field table (bytes/memoryview) back into a dict."""
    try:
        count = buf[0]
        pos = 1
        out: Dict[str, Any] = {}
        keys = _ID_TO_KEY
        for _ in range(count):
            kid = buf[pos]
            pos += 1
            if kid:
                key = keys.get(kid)
                if key is None:
                    raise WireError(f"unknown key id {kid}")
            else:
                klen, pos = _get_uvarint(buf, pos)
                key = bytes(buf[pos : pos + klen]).decode("utf-8")
                pos += klen
            out[key], pos = _get_value(buf, pos)
        if pos != len(buf):
            raise WireError(f"{len(buf) - pos} trailing bytes after field table")
        return out
    except (IndexError, struct.error) as exc:
        raise WireError(f"truncated field table: {exc}") from exc


# ---------------------------------------------------------------------------
# Frame builders (scratch-buffer based: no per-frame header allocations)
# ---------------------------------------------------------------------------


def build_binary_frame(
    scratch: bytearray, header: Mapping[str, Any], payload_len: int, flags: int = 0
) -> None:
    """Encode preamble + field table into ``scratch`` (cleared first).

    The payload itself is *not* appended — the caller either appends it
    (small frames: one ``sendall``) or gathers it (``sendmsg`` /
    separate ``write``), so large payloads are never copied here.  When
    ``flags`` includes :data:`FLAG_CRC` the caller is also responsible
    for appending the 4-byte payload-CRC trailer after the payload.
    """
    del scratch[:]
    scratch += b"\x00" * PREAMBLE_SIZE
    opid = _OP_TO_ID.get(header.get("op", ""), 0)
    if opid:
        count_pos = len(scratch)
        encode_fields({k: v for k, v in header.items() if k != "op"}, scratch)
        del count_pos
    else:
        encode_fields(header, scratch)
    fields_len = len(scratch) - PREAMBLE_SIZE
    PREAMBLE.pack_into(scratch, 0, MAGIC, WIRE_VERSION, flags, opid, fields_len, payload_len)


def build_json_frame(
    scratch: bytearray, header: Mapping[str, Any], payload_len: int
) -> None:
    """Legacy framing into a reused scratch buffer (header part only)."""
    msg = dict(header)
    msg["payload_len"] = payload_len
    raw = json.dumps(msg, separators=(",", ":")).encode("utf-8")
    del scratch[:]
    scratch += b"\x00\x00\x00\x00"
    scratch += raw
    struct.pack_into(">I", scratch, 0, len(raw))


def decode_binary_header(opid: int, fields, payload_len: int) -> Dict[str, Any]:
    """Field table + preamble -> the header dict handlers expect."""
    header = decode_fields(fields)
    if opid:
        name = _ID_TO_OP.get(opid)
        if name is None:
            raise WireError(f"unknown op id {opid}")
        header["op"] = name
    header["payload_len"] = payload_len
    return header
