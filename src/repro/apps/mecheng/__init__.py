"""Mechanical-engineering case study (paper Section 5.2).

CHAMMY (hole shapes) → PAFEC (plane-stress FEM) → MAKE_SF_FILES
(boundary stress extraction) → FAST (Paris-law crack growth) →
OBJECTIVE (worst-crack design life).
"""

from .chammy import HoleShape, boundary_points, run_chammy
from .fast import EDGE_CRACK_Y, ParisLaw, cycles_closed_form, cycles_to_grow, run_fast
from .make_sf import boundary_tangential_stress, run_make_sf
from .objective import design_life, run_objective
from .pafec import (
    FemResult,
    Material,
    RingMesh,
    build_ring_mesh,
    run_pafec,
    solve_plane_stress,
    stress_concentration_factor,
)
from .optimize import (
    DesignPoint,
    best_by_life,
    best_by_stress,
    evaluate_shape,
    grid_study,
    optimize_shape,
)
from .pipeline import (
    FIG5_FILES,
    TABLE2_EXPERIMENTS,
    durability_sim_workflow,
    durability_workflow,
    table2_plan,
)

__all__ = [
    "HoleShape",
    "boundary_points",
    "run_chammy",
    "EDGE_CRACK_Y",
    "ParisLaw",
    "cycles_closed_form",
    "cycles_to_grow",
    "run_fast",
    "boundary_tangential_stress",
    "run_make_sf",
    "design_life",
    "run_objective",
    "FemResult",
    "Material",
    "RingMesh",
    "build_ring_mesh",
    "run_pafec",
    "solve_plane_stress",
    "stress_concentration_factor",
    "DesignPoint",
    "best_by_life",
    "best_by_stress",
    "evaluate_shape",
    "grid_study",
    "optimize_shape",
    "FIG5_FILES",
    "TABLE2_EXPERIMENTS",
    "durability_sim_workflow",
    "durability_workflow",
    "table2_plan",
]
