"""C-CAM: global climate model (stretched-grid advection-diffusion).

The real C-CAM is CSIRO's conformal-cubic atmospheric model run on a
stretched grid so resolution concentrates over the region of interest
[27].  Our stand-in keeps the properties the IO study needs:

* a *stretched* global lat-lon grid (finer spacing near the focus
  longitude/latitude, built with a tanh stretching map);
* a real time-stepping computation (advection-diffusion of a
  temperature-like field by a solid-body-rotation-plus-jet wind, explicit
  upwind scheme, CFL-checked);
* one history record written per timestep — the per-step WRITE pattern
  that makes streaming into the downstream model possible at all.

History format (binary, little-endian float32): a header line of text
then ``nsteps`` records of the full global field.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = ["StretchedGrid", "GlobalModel", "run_ccam", "HIST_MAGIC"]

HIST_MAGIC = b"CCAMHIST1\n"


def _stretch_axis(n: int, lo: float, hi: float, focus: float, strength: float) -> np.ndarray:
    """Monotone axis of ``n`` points on [lo, hi], denser near ``focus``.

    A cubic stretching map: the coordinate's derivative is smallest at
    the centre of the parameter range, so grid points cluster there;
    the dense region is then translated onto the focus point.
    ``strength`` 0 gives a uniform axis.
    """
    if n < 4:
        raise ValueError("axis needs at least 4 points")
    u = np.linspace(-1.0, 1.0, n)
    w = max(0.0, strength) / (1.0 + max(0.0, strength))
    x = (1.0 - w) * u + w * u**3  # derivative minimal at u=0 -> dense centre
    half = (hi - lo) / 2.0
    centre = (hi + lo) / 2.0
    shift = focus - centre
    axis = centre + half * x + shift * (1.0 - u * u)
    return np.clip(axis, lo, hi)


@dataclass(frozen=True)
class StretchedGrid:
    """Global grid stretched toward (focus_lon, focus_lat)."""

    nlon: int = 96
    nlat: int = 48
    focus_lon: float = 135.0  # Australia
    focus_lat: float = -25.0
    stretch: float = 1.5

    def lons(self) -> np.ndarray:
        return _stretch_axis(self.nlon, 0.0, 360.0, self.focus_lon, self.stretch)

    def lats(self) -> np.ndarray:
        return _stretch_axis(self.nlat, -90.0, 90.0, self.focus_lat, self.stretch)


class GlobalModel:
    """Explicit advection-diffusion stepper on the stretched grid."""

    def __init__(self, grid: StretchedGrid, diffusivity: float = 0.8, seed: int = 7):
        self.grid = grid
        self.lons = grid.lons()
        self.lats = grid.lats()
        self.diffusivity = diffusivity
        rng = np.random.default_rng(seed)
        lon2d, lat2d = np.meshgrid(self.lons, self.lats)
        # Temperature-like field: meridional gradient + noise + a warm blob.
        self.field = (
            30.0 * np.cos(np.radians(lat2d))
            - 10.0
            + 2.0 * rng.standard_normal(lon2d.shape)
            + 8.0 * np.exp(-(((lon2d - 120) / 30) ** 2) - (((lat2d + 20) / 15) ** 2))
        ).astype(np.float64)
        # Zonal jet + weak meridional component (index space velocities).
        self.u = 0.35 + 0.15 * np.cos(np.radians(lat2d))
        self.v = 0.08 * np.sin(np.radians(2 * lon2d))
        # Upwind max principle: the update is a convex combination only
        # while |u| + |v| + 4*coeff <= 1; cap the diffusion coefficient
        # so any diffusivity setting stays monotone/stable.
        headroom = 1.0 - float(np.abs(self.u).max() + np.abs(self.v).max())
        self._diff_coeff = min(0.125 * self.diffusivity, 0.225 * headroom)

    @property
    def shape(self) -> tuple[int, int]:
        return self.field.shape

    def step(self) -> np.ndarray:
        """Advance one step; returns the new field (also kept as state)."""
        f = self.field
        # Upwind advection in index space (periodic in lon, clamped lat).
        fx_minus = np.roll(f, 1, axis=1)
        fx_plus = np.roll(f, -1, axis=1)
        fy_minus = np.vstack([f[:1], f[:-1]])
        fy_plus = np.vstack([f[1:], f[-1:]])
        adv = (
            np.where(self.u > 0, self.u * (f - fx_minus), self.u * (fx_plus - f))
            + np.where(self.v > 0, self.v * (f - fy_minus), self.v * (fy_plus - f))
        )
        lap = fx_minus + fx_plus + fy_minus + fy_plus - 4.0 * f
        self.field = f - adv + self._diff_coeff * lap
        return self.field

    def record_bytes(self) -> bytes:
        return self.field.astype("<f4").tobytes()


def write_history_header(fh, nlon: int, nlat: int, nsteps: int) -> None:
    fh.write(HIST_MAGIC)
    fh.write(struct.pack("<iii", nlon, nlat, nsteps))


def read_history_header(fh) -> tuple[int, int, int]:
    """Parse a history header; returns (nlon, nlat, nsteps)."""
    magic = fh.read(len(HIST_MAGIC))
    if magic != HIST_MAGIC:
        raise ValueError(f"bad history magic {magic!r}")
    nlon, nlat, nsteps = struct.unpack("<iii", fh.read(12))
    return nlon, nlat, nsteps


def run_ccam(io) -> None:
    """Stage entry point: run the global model, stream history records."""
    grid = StretchedGrid(
        nlon=int(io.param("nlon", 96)),
        nlat=int(io.param("nlat", 48)),
    )
    nsteps = int(io.param("nsteps", 24))
    model = GlobalModel(grid)
    with io.open("ccam_hist", "wb") as fh:
        write_history_header(fh, grid.nlon, grid.nlat, nsteps)
        for _ in range(nsteps):
            model.step()
            fh.write(model.record_bytes())
