"""In-memory StageIO for direct (no-grid) pipeline runs.

Design studies loop a whole workflow hundreds of times over parameter
sets (the paper's Nimrod heritage).  Deploying sockets and sandboxes
per evaluation would dominate; :class:`MemoryStageIO` gives stage
functions the same ``open/param`` surface backed by a plain dict of
byte buffers, so a pipeline evaluation is just function calls.
"""

from __future__ import annotations

import io
from typing import Dict, Optional

from .spec import Workflow, WorkflowError

__all__ = ["MemoryStageIO", "run_workflow_in_memory"]


class _NamedBytesIO(io.BytesIO):
    """BytesIO that deposits its contents into a dict on close."""

    def __init__(self, store: Dict[str, bytes], name: str):
        super().__init__()
        self._store = store
        self._name = name

    def close(self) -> None:
        if not self.closed:
            self._store[self._name] = self.getvalue()
        super().close()


class MemoryStageIO:
    """Dict-backed implementation of the StageIO protocol."""

    def __init__(self, files: Optional[Dict[str, bytes]] = None, params: Optional[dict] = None):
        self.files: Dict[str, bytes] = dict(files or {})
        self._params = dict(params or {})

    def open(self, name: str, mode: str = "r"):
        core = mode.replace("b", "").replace("t", "")
        binary = "b" in mode
        if core == "r":
            if name not in self.files:
                raise FileNotFoundError(name)
            raw = io.BytesIO(self.files[name])
            return raw if binary else io.TextIOWrapper(raw, encoding="utf-8")
        if core in ("w", "a"):
            raw = _NamedBytesIO(self.files, name)
            if core == "a" and name in self.files:
                raw.write(self.files[name])
            return raw if binary else io.TextIOWrapper(raw, encoding="utf-8")
        raise ValueError(f"unsupported mode {mode!r}")

    def param(self, key: str, default=None):
        return self._params.get(key, default)

    def path_of(self, name: str) -> str:  # parity with StageIO
        return name


def run_workflow_in_memory(
    workflow: Workflow,
    params: Optional[dict] = None,
    inputs: Optional[Dict[str, bytes]] = None,
) -> Dict[str, bytes]:
    """Execute every stage sequentially in-process; returns all files.

    Stages run in topological order against one shared in-memory file
    namespace — semantically the all-local-files wiring, minus the grid.
    """
    io_adapter = MemoryStageIO(files=inputs, params=params)
    for stage_name in workflow.topological_order():
        stage = workflow.stages[stage_name]
        if stage.func is None:
            raise WorkflowError(f"stage {stage_name!r} has no func")
        stage.func(io_adapter)
    return io_adapter.files
