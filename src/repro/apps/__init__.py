"""Legacy-application case studies: mechanical engineering (durability
pipeline) and atmospheric sciences (nested climate models)."""

from . import climate, mecheng

__all__ = ["climate", "mecheng"]
