"""Unit + property tests for the framed TCP RPC layer.

The RPC suite is parametrized over the three supported peer skews so
every behaviour is exercised on both wire framings *and* across a
version boundary:

* ``binary-binary`` — negotiating client against the async server
  (both speak the binary framing; the probe pins it);
* ``binary-json``  — negotiating client against the legacy threaded
  JSON-only server (the probe degrades to JSON);
* ``json-binary``  — a client forced to the legacy JSON framing (an
  old peer) against the binary-capable async server.
"""

import asyncio
import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.faults import FaultRule
from repro.transport.aio import AsyncRpcClient
from repro.transport.tcp import (
    MAX_HEADER,
    FrameError,
    RpcClient,
    RpcError,
    RpcServer,
    ThreadedRpcServer,
    recv_frame,
    send_frame,
)
from repro.transport.wire import (
    MAGIC,
    PREAMBLE,
    PREAMBLE_SIZE,
    WIRE_VERSION,
    WireError,
    build_binary_frame,
    decode_binary_header,
    decode_fields,
)

# (server engine, forced client wire) per skew; None = negotiate.
SKEWS = [
    pytest.param(("async", None), id="binary-binary"),
    pytest.param(("threaded", None), id="binary-json"),
    pytest.param(("async", "json"), id="json-binary"),
]


def _make_server(engine: str = "async", host: str = "127.0.0.1", port: int = 0):
    server = (RpcServer if engine == "async" else ThreadedRpcServer)(host, port)
    server.register("echo", lambda header, payload: ({"echo": header.get("msg")}, payload))

    def boom(header, payload):
        raise ValueError("deliberate")

    server.register("boom", boom)

    def typed_error(header, payload):
        raise RpcError("custom-kind", "custom message")

    server.register("typed", typed_error)
    return server


@pytest.fixture(params=SKEWS)
def skew(request):
    return request.param


@pytest.fixture()
def echo_server(skew):
    with _make_server(skew[0]) as server:
        yield server


@pytest.fixture()
def echo_client(echo_server, skew):
    client = RpcClient(*echo_server.address, wire=skew[1])
    yield client
    client.close()


class TestFraming:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "x", "n": 3}, b"payload")
            header, payload = recv_frame(b)
            assert header["op"] == "x"
            assert header["n"] == 3
            assert payload == b"payload"
        finally:
            a.close()
            b.close()

    def test_empty_payload(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "x"})
            header, payload = recv_frame(b)
            assert payload == b""
            assert header["payload_len"] == 0
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        a.sendall(b"\x00\x00\x00\x10partial")
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)
        b.close()

    def test_garbage_header_raises(self):
        a, b = socket.socketpair()
        bad = b"not json!!"
        a.sendall(len(bad).to_bytes(4, "big") + bad)
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)
        b.close()

    @given(
        msg=st.text(max_size=200),
        payload=st.binary(max_size=5000),
        extra=st.integers(min_value=-(2**31), max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_header_payload_roundtrips(self, msg, payload, extra):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "t", "msg": msg, "extra": extra}, payload)
            header, got = recv_frame(b)
            assert header["msg"] == msg
            assert header["extra"] == extra
            assert got == payload
        finally:
            a.close()
            b.close()


class TestRpc:
    def test_echo(self, echo_client):
        reply, payload = echo_client.call("echo", {"msg": "hi"}, b"data")
        assert reply["echo"] == "hi"
        assert payload == b"data"

    def test_unknown_op_is_rpc_error(self, echo_client):
        with pytest.raises(RpcError, match="no handler"):
            echo_client.call("nope")

    def test_handler_exception_becomes_error_reply(self, echo_client):
        with pytest.raises(RpcError, match="deliberate"):
            echo_client.call("boom")
        # Connection survives the error.
        reply, _ = echo_client.call("echo", {"msg": "still-alive"})
        assert reply["echo"] == "still-alive"

    def test_typed_rpc_error_kind_preserved(self, echo_client):
        with pytest.raises(RpcError) as exc_info:
            echo_client.call("typed")
        assert exc_info.value.kind == "custom-kind"

    def test_concurrent_clients(self, echo_server, skew):
        errors = []

        def worker(n):
            try:
                with RpcClient(*echo_server.address, wire=skew[1]) as client:
                    for i in range(20):
                        reply, _ = client.call("echo", {"msg": f"{n}:{i}"})
                        assert reply["echo"] == f"{n}:{i}"
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_large_payload(self, echo_client):
        blob = bytes(range(256)) * 4096  # 1 MiB
        _, got = echo_client.call("echo", {"msg": "big"}, blob)
        assert got == blob

    def test_client_is_thread_safe(self, echo_client):
        errors = []

        def worker(n):
            try:
                for i in range(10):
                    reply, _ = echo_client.call("echo", {"msg": f"{n}.{i}"})
                    assert reply["echo"] == f"{n}.{i}"
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestFramingEdgeCases:
    def test_oversized_header_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall((MAX_HEADER + 1).to_bytes(4, "big"))
            with pytest.raises(FrameError, match="exceeds maximum"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_header_without_payload_len_raises(self):
        a, b = socket.socketpair()
        try:
            raw = b'{"op": "x"}'
            a.sendall(len(raw).to_bytes(4, "big") + raw)
            with pytest.raises(FrameError, match="payload_len"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_header_raises(self):
        a, b = socket.socketpair()
        try:
            raw = b"[1, 2, 3]"  # valid JSON, wrong shape
            a.sendall(len(raw).to_bytes(4, "big") + raw)
            with pytest.raises(FrameError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_payload_raises(self):
        a, b = socket.socketpair()
        raw = b'{"op": "x", "payload_len": 100}'
        a.sendall(len(raw).to_bytes(4, "big") + raw + b"only ten b")
        a.close()  # peer disconnects mid-payload
        with pytest.raises(FrameError, match="outstanding"):
            recv_frame(b)
        b.close()

    def test_bytes_like_payloads_accepted(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "x"}, memoryview(bytearray(b"view")))
            _, payload = recv_frame(b)
            assert payload == b"view"
        finally:
            a.close()
            b.close()


class TestPooledClient:
    @pytest.fixture()
    def slow_server(self):
        server = RpcServer()
        gate = threading.Event()

        def sleepy(header, payload):
            time.sleep(float(header.get("s", 0.1)))
            return {"done": True}, b""

        def blocked(header, payload):
            gate.wait(10.0)
            return {"done": True}, b""

        server.register("sleepy", sleepy)
        server.register("blocked", blocked)
        server.gate = gate
        with server:
            yield server

    def test_calls_overlap_across_pool(self, slow_server):
        """Four concurrent calls on one client take ~1 nap, not four."""
        client = RpcClient(*slow_server.address, max_connections=4)
        results = []

        def one():
            reply, _ = client.call("sleepy", {"s": 0.2})
            results.append(reply["done"])

        threads = [threading.Thread(target=one) for _ in range(4)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        client.close()
        assert results == [True] * 4
        assert elapsed < 0.6, f"calls serialised: {elapsed:.2f}s for 4x 0.2s naps"

    def test_pool_of_one_serialises(self, slow_server):
        """max_connections caps in-flight depth (strict request/reply)."""
        client = RpcClient(*slow_server.address, max_connections=1)
        threads = [
            threading.Thread(target=lambda: client.call("sleepy", {"s": 0.15}))
            for _ in range(2)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        client.close()
        assert elapsed >= 0.28, f"pool of 1 overlapped calls: {elapsed:.2f}s"

    def test_close_all_unblocks_inflight_call(self, slow_server):
        client = RpcClient(*slow_server.address, max_connections=2)
        failures = []

        def blocked_call():
            try:
                client.call("blocked")
            except (OSError, FrameError) as exc:
                failures.append(exc)

        t = threading.Thread(target=blocked_call)
        t.start()
        time.sleep(0.1)  # let the call get in flight
        t0 = time.perf_counter()
        client.close_all()
        t.join(timeout=5.0)
        assert not t.is_alive(), "in-flight call survived close_all()"
        assert time.perf_counter() - t0 < 2.0
        assert failures, "blocked call should fail fast, not return"
        slow_server.gate.set()

    def test_client_recovers_after_peer_disconnect_mid_frame(self):
        """A mid-reply disconnect poisons one socket, not the client."""
        ready = threading.Event()
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        addr = listener.getsockname()
        stop = False

        def serve():
            first = True
            ready.set()
            while not stop:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                try:
                    header, payload = recv_frame(conn)
                    if first:
                        first = False
                        # Half a frame, then hang up mid-payload.
                        raw = b'{"ok": true, "payload_len": 50}'
                        conn.sendall(len(raw).to_bytes(4, "big") + raw + b"short")
                        conn.close()
                        continue
                    send_frame(conn, {"ok": True, "echo": header.get("msg")}, b"")
                    conn.close()
                except (FrameError, OSError):
                    conn.close()

        t = threading.Thread(target=serve, daemon=True)
        t.start()
        ready.wait(5.0)
        client = RpcClient(*addr, max_connections=2)
        with pytest.raises((FrameError, OSError)):
            client.call("echo", {"msg": "doomed"})
        # The poisoned connection was discarded; a fresh one works.
        reply, _ = client.call("echo", {"msg": "recovered"})
        assert reply["echo"] == "recovered"
        client.close()
        stop = True
        listener.close()


# ---------------------------------------------------------------------------
# Binary wire codec
# ---------------------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**48), max_value=2**48),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=60),
    st.binary(max_size=60),
)
_values = st.one_of(
    _scalars,
    st.lists(_scalars, max_size=4),
    st.dictionaries(st.text(max_size=10), _scalars, max_size=4),
)


def _binary_roundtrip(header, payload_len):
    scratch = bytearray()
    build_binary_frame(scratch, header, payload_len)
    magic, version, _flags, opid, fields_len, plen = PREAMBLE.unpack_from(scratch, 0)
    assert magic == MAGIC and version == WIRE_VERSION
    assert len(scratch) == PREAMBLE_SIZE + fields_len
    fields = memoryview(scratch)[PREAMBLE_SIZE:]
    return decode_binary_header(opid, fields, plen)


class TestBinaryCodec:
    @given(
        header=st.dictionaries(st.text(min_size=1, max_size=16), _values, max_size=12),
        payload_len=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_any_header_roundtrips(self, header, payload_len):
        header.pop("payload_len", None)
        header.pop("op", None)
        got = _binary_roundtrip(dict(header, op="gb.write"), payload_len)
        assert got.pop("op") == "gb.write"
        assert got.pop("payload_len") == payload_len
        assert got == header

    def test_unknown_op_travels_as_literal(self):
        got = _binary_roundtrip({"op": "custom.op", "x": 1}, 0)
        assert got["op"] == "custom.op"
        assert got["x"] == 1

    def test_known_op_compresses_to_preamble_id(self):
        scratch = bytearray()
        build_binary_frame(scratch, {"op": "gb.read", "offset": 0}, 0)
        _, _, _, opid, _, _ = PREAMBLE.unpack_from(scratch, 0)
        assert opid != 0
        assert b"gb.read" not in bytes(scratch)

    def test_binary_header_beats_json_for_known_ops(self):
        header = {"op": "gb.read", "name": "s", "reader_id": "r1", "offset": 0, "length": 65536}
        bin_scratch, json_scratch = bytearray(), bytearray()
        build_binary_frame(bin_scratch, header, 65536)
        from repro.transport.wire import build_json_frame

        build_json_frame(json_scratch, header, 65536)
        assert len(bin_scratch) < len(json_scratch)

    def test_trailing_garbage_rejected(self):
        scratch = bytearray()
        build_binary_frame(scratch, {"op": "gb.read", "offset": 1}, 0)
        with pytest.raises(WireError, match="trailing"):
            decode_fields(bytes(scratch[PREAMBLE_SIZE:]) + b"\x00")

    def test_unknown_op_id_rejected(self):
        with pytest.raises(WireError, match="unknown op id"):
            decode_binary_header(60000, b"\x00", 0)


# ---------------------------------------------------------------------------
# Codec negotiation across peer versions
# ---------------------------------------------------------------------------


class TestWireNegotiation:
    def test_pins_binary_against_async_server(self):
        with _make_server("async") as server, RpcClient(*server.address) as client:
            assert client._codec is None
            reply, _ = client.call("echo", {"msg": "hi"})
            assert reply["echo"] == "hi"
            # A new server advertises CRC alongside binary framing, so
            # the default negotiation pins checksummed binary frames.
            assert client._codec == "binary+crc"
            blob = b"x" * 100_000
            _, got = client.call("echo", {}, blob)
            assert got == blob

    def test_crc_opt_out_pins_plain_binary(self):
        with _make_server("async") as server, RpcClient(*server.address, crc=False) as client:
            client.call("echo", {"msg": "hi"})
            assert client._codec == "binary"

    def test_pins_json_against_threaded_server(self):
        with _make_server("threaded") as server, RpcClient(*server.address) as client:
            reply, _ = client.call("echo", {"msg": "old"})
            assert reply["echo"] == "old"
            assert client._codec == "json"
            # Stays pinned — no repeated probing.
            client.call("echo", {"msg": "again"})
            assert client._codec == "json"

    def test_forced_wire_skips_negotiation(self):
        with _make_server("async") as server:
            with RpcClient(*server.address, wire="json") as client:
                assert client._codec == "json"
                reply, _ = client.call("echo", {"msg": "j"})
                assert reply["echo"] == "j"
                assert client._codec == "json"
            with RpcClient(*server.address, wire="binary") as client:
                reply, _ = client.call("echo", {"msg": "b"})
                assert reply["echo"] == "b"
                assert client._codec == "binary"

    def test_env_var_forces_wire(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "json")
        with _make_server("async") as server, RpcClient(*server.address) as client:
            client.call("echo", {"msg": "e"})
            assert client._codec == "json"

    def test_bad_wire_value_rejected(self):
        with pytest.raises(ValueError, match="wire"):
            RpcClient("127.0.0.1", 1, wire="msgpack")

    def test_probe_header_is_not_leaked_to_handlers(self):
        seen = {}
        server = RpcServer()

        def spy(header, payload):
            seen.update(header)
            return {}, b""

        server.register("spy", spy)
        with server, RpcClient(*server.address) as client:
            reply, _ = client.call("spy", {"msg": "x"})
            assert "_wire" not in reply
        assert seen.get("msg") == "x"

    def test_demotes_after_peer_downgrade(self):
        """A binary-pinned client recovers against a JSON-only rebind."""
        server = _make_server("async").start()
        host, port = server.address
        client = RpcClient(host, port)
        try:
            client.call("echo", {"msg": "1"})
            assert client._codec == "binary+crc"
            server.stop()
            server.disconnect_all()
            with _make_server("threaded", host, port) as old:
                assert old.address == (host, port)
                reply, _ = client.call("echo", {"msg": "2"}, retryable=True)
                assert reply["echo"] == "2"
                assert client._codec == "json"
        finally:
            client.close()


@pytest.mark.faults
class TestNegotiationFaults:
    """Fault injection mid-negotiation: the probe must never mis-pin."""

    @pytest.fixture(autouse=True)
    def _disarmed(self):
        faults.disarm()
        yield
        faults.disarm()

    def test_probe_survives_connection_reset(self):
        with _make_server("async") as server, RpcClient(*server.address) as client:
            with faults.injected(
                FaultRule(layer="rpc.server", op="echo", action="close", nth=1, times=1)
            ):
                reply, _ = client.call("echo", {"msg": "hi"}, retryable=True)
            assert reply["echo"] == "hi"
            assert client._codec == "binary+crc"

    def test_probe_survives_dropped_request(self):
        with _make_server("async") as server, RpcClient(*server.address) as client:
            with faults.injected(
                FaultRule(layer="rpc.server", op="echo", action="drop", nth=1, times=1)
            ):
                reply, _ = client.call("echo", {"msg": "hi"}, retryable=True)
            assert reply["echo"] == "hi"
            assert client._codec == "binary+crc"

    def test_injected_error_reply_still_pins_binary(self):
        """An injected-fault *reply* to the probe still advertises binary."""
        with _make_server("async") as server, RpcClient(*server.address) as client:
            with faults.injected(
                FaultRule(layer="rpc.server", op="echo", action="error", nth=1, times=1)
            ):
                with pytest.raises(RpcError) as exc_info:
                    client.call("echo", {"msg": "hi"})
            assert exc_info.value.kind == "injected-fault"
            assert client._codec == "binary+crc"
            reply, _ = client.call("echo", {"msg": "again"})
            assert reply["echo"] == "again"

    def test_pinned_binary_rechecks_after_connection_loss(self):
        with _make_server("async") as server, RpcClient(*server.address) as client:
            client.call("echo", {"msg": "pin"})
            assert client._codec == "binary+crc"
            with faults.injected(
                FaultRule(layer="rpc.server", op="echo", action="close", nth=1, times=1)
            ):
                reply, _ = client.call("echo", {"msg": "after"}, retryable=True)
            assert reply["echo"] == "after"
            assert client._codec == "binary+crc"


# ---------------------------------------------------------------------------
# Async server handler kinds + async client
# ---------------------------------------------------------------------------


class TestAsyncServerHandlers:
    def test_inline_and_native_async_handlers(self):
        server = RpcServer()
        server.register("double", lambda h, p: ({"v": h["x"] * 2}, b""), inline=True)

        async def plus_one(header, payload):
            await asyncio.sleep(0)
            return {"v": header["x"] + 1}, payload

        server.register_async("plus1", plus_one)
        with server, RpcClient(*server.address) as client:
            assert client.call("double", {"x": 3})[0]["v"] == 6
            reply, data = client.call("plus1", {"x": 3}, b"p")
            assert reply["v"] == 4
            assert data == b"p"

    def test_restart_rebinds_same_port(self):
        server = _make_server("async").start()
        host, port = server.address
        try:
            server.stop()
            again = _make_server("async", host, port)
            with again, RpcClient(host, port) as client:
                assert client.call("echo", {"msg": "back"})[0]["echo"] == "back"
        finally:
            server.stop()


class TestAsyncRpcClient:
    def test_echo_and_negotiation(self):
        async def go(addr):
            client = AsyncRpcClient(*addr)
            try:
                reply, data = await client.call("echo", {"msg": "hi"}, b"abc")
                assert reply["echo"] == "hi"
                assert data == b"abc"
                assert client._codec == "binary+crc"
            finally:
                await client.close()

        with _make_server("async") as server:
            asyncio.run(go(server.address))

    def test_negotiates_json_against_threaded_server(self):
        async def go(addr):
            client = AsyncRpcClient(*addr)
            try:
                reply, _ = await client.call("echo", {"msg": "old"})
                assert reply["echo"] == "old"
                assert client._codec == "json"
            finally:
                await client.close()

        with _make_server("threaded") as server:
            asyncio.run(go(server.address))

    def test_error_reply_raises(self):
        async def go(addr):
            client = AsyncRpcClient(*addr)
            try:
                with pytest.raises(RpcError) as exc_info:
                    await client.call("typed")
                assert exc_info.value.kind == "custom-kind"
            finally:
                await client.close()

        with _make_server("async") as server:
            asyncio.run(go(server.address))

    def test_many_concurrent_clients_one_loop(self):
        """64 clients multiplex on one caller loop, no thread each."""

        async def one(addr, i):
            client = AsyncRpcClient(*addr)
            try:
                reply, _ = await client.call("echo", {"msg": f"m{i}"})
                return reply["echo"]
            finally:
                await client.close()

        async def go(addr):
            return await asyncio.gather(*(one(addr, i) for i in range(64)))

        with _make_server("async") as server:
            results = asyncio.run(go(server.address))
        assert results == [f"m{i}" for i in range(64)]
