"""Built-in ops plane: ``_obs.*`` handlers on every RPC server.

Allcock et al.'s GridFTP embeds its management plane in the transfer
protocol itself; we do the same — every :class:`RpcServer` /
:class:`ThreadedRpcServer` auto-registers three read-only ops at
construction (the ``_wire`` probe pattern: reserved ``_``-prefixed
names that ride the normal RPC machinery, no second port, no second
protocol):

* ``_obs.health`` — liveness + identity: proc label, pid, uptime,
  registered op count, plus whatever the owning service exposes via a
  ``health_info()`` callable on the server object.
* ``_obs.metrics`` — the full default-registry snapshot as a JSON
  payload (``format: "text"`` switches to Prometheus exposition).
* ``_obs.spans_tail`` — the most recent finished-span records from the
  tracer's in-memory ring, as a JSONL payload, so a live peer can be
  inspected without access to its trace file.

``python -m repro.obs.top`` polls these across a fleet.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Tuple

from . import get_registry, get_tracer

__all__ = ["install", "OPS"]

#: Ops installed on every server (all read-only, safe to retry).
OPS = ("_obs.health", "_obs.metrics", "_obs.spans_tail")


def install(server: Any) -> None:
    """Register the ``_obs.*`` ops on ``server``.

    Works against both server classes: the async server gets the
    handlers inline (they are lock-brief and allocation-light, and
    staying off the executor means health answers even when every
    worker thread is busy — exactly when you ask); the legacy threaded
    server takes them as plain handlers.
    """
    started = time.monotonic()

    def health(header: Dict[str, Any], payload: bytes) -> Tuple[Dict[str, Any], bytes]:
        info: Dict[str, Any] = {
            "status": "ok",
            "proc": get_tracer().proc,
            "pid": os.getpid(),
            "uptime_s": time.monotonic() - started,
            "peer_name": getattr(server, "peer_name", ""),
            "ops": sorted(server._handlers),
        }
        extra = getattr(server, "health_info", None)
        if callable(extra):
            try:
                info["service"] = extra()
            except Exception as exc:  # noqa: BLE001 - health must answer regardless
                info["service"] = {"error": f"{type(exc).__name__}: {exc}"}
        return info, b""

    def metrics(header: Dict[str, Any], payload: bytes) -> Tuple[Dict[str, Any], bytes]:
        registry = get_registry()
        if header.get("format") == "text":
            return {"format": "text"}, registry.render_text().encode("utf-8")
        body = json.dumps(registry.snapshot(), separators=(",", ":"), default=str)
        return {"format": "json"}, body.encode("utf-8")

    def spans_tail(header: Dict[str, Any], payload: bytes) -> Tuple[Dict[str, Any], bytes]:
        tracer = get_tracer()
        records = list(tracer.tail)
        limit = header.get("limit")
        if isinstance(limit, int) and limit > 0:
            records = records[-limit:]
        body = "\n".join(
            json.dumps(r, separators=(",", ":"), default=str) for r in records
        )
        return {"count": len(records)}, body.encode("utf-8")

    handlers = {"_obs.health": health, "_obs.metrics": metrics, "_obs.spans_tail": spans_tail}
    inline = hasattr(server, "register_async")
    for op, fn in handlers.items():
        if inline:
            server.register(op, fn, inline=True)
        else:
            server.register(op, fn)
