"""In-process "grid" of virtual hosts backed by real directories.

The real (byte-moving) FM implementation needs a notion of *machines*
without real remote hosts.  A :class:`HostRegistry` maps host names to
sandbox directories on the local file system; every path is resolved
inside its host's root, and an optional :class:`DelayModel` injects the
calibrated WAN cost into cross-host operations so examples show the
same qualitative behaviour as the simulator (scaled down so they run in
seconds).
"""

from __future__ import annotations

import shutil
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

__all__ = ["DelayModel", "VirtualHost", "HostRegistry"]


@dataclass(frozen=True)
class DelayModel:
    """Optional injected latency/bandwidth for cross-host byte movement.

    ``scale`` shrinks the injected delays uniformly so example programs
    that model multi-minute WAN copies still run in milliseconds.
    """

    bandwidth: float = float("inf")  # bytes/s
    latency: float = 0.0             # seconds per message
    scale: float = 1.0

    def sleep_for(self, nbytes: int, messages: int = 1) -> None:
        delay = messages * self.latency
        if self.bandwidth != float("inf") and nbytes:
            delay += nbytes / self.bandwidth
        delay *= self.scale
        if delay > 0:
            time.sleep(delay)


class VirtualHost:
    """One named host rooted at a real directory."""

    def __init__(self, name: str, root: Path):
        self.name = name
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def resolve(self, path: str) -> Path:
        """Map a host-absolute path into this host's sandbox.

        Rejects escapes ("../") so one virtual host cannot address
        another's files except through a transport.
        """
        rel = path.lstrip("/")
        candidate = (self.root / rel).resolve()
        root = self.root.resolve()
        if root != candidate and root not in candidate.parents:
            raise PermissionError(f"path {path!r} escapes host {self.name!r}")
        return candidate

    def exists(self, path: str) -> bool:
        return self.resolve(path).exists()

    def size(self, path: str) -> int:
        return self.resolve(path).stat().st_size

    def makedirs(self, path: str) -> None:
        self.resolve(path).mkdir(parents=True, exist_ok=True)


class HostRegistry:
    """The set of virtual hosts plus pairwise delay models."""

    def __init__(self, base_dir: Optional[Path] = None):
        self._base = Path(base_dir) if base_dir else None
        self._hosts: Dict[str, VirtualHost] = {}
        self._delays: Dict[tuple[str, str], DelayModel] = {}
        self._lock = threading.Lock()

    def add_host(self, name: str, root: Optional[Path] = None) -> VirtualHost:
        with self._lock:
            if name in self._hosts:
                return self._hosts[name]
            if root is None:
                if self._base is None:
                    raise ValueError("no base_dir configured and no root given")
                root = self._base / name
            host = VirtualHost(name, Path(root))
            self._hosts[name] = host
            return host

    def host(self, name: str) -> VirtualHost:
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def set_delay(self, src: str, dst: str, model: DelayModel) -> None:
        self._delays[(src, dst)] = model
        self._delays.setdefault((dst, src), model)

    def delay(self, src: str, dst: str) -> DelayModel:
        if src == dst:
            return DelayModel()
        return self._delays.get((src, dst), DelayModel())

    # -- cross-host byte movement ------------------------------------------
    def copy_file(self, src_host: str, src_path: str, dst_host: str, dst_path: str) -> int:
        """Copy a file between hosts, paying the pairwise delay model."""
        src = self.host(src_host).resolve(src_path)
        dst = self.host(dst_host).resolve(dst_path)
        if not src.exists():
            raise FileNotFoundError(f"{src_host}:{src_path}")
        nbytes = src.stat().st_size
        self.delay(src_host, dst_host).sleep_for(nbytes, messages=2)
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(src, dst)
        return nbytes

    def read_block(self, src_host: str, src_path: str, offset: int, length: int, dst_host: str) -> bytes:
        """Read one block from a file on another host (proxy-style)."""
        src = self.host(src_host).resolve(src_path)
        with open(src, "rb") as fh:
            fh.seek(offset)
            data = fh.read(length)
        self.delay(src_host, dst_host).sleep_for(len(data), messages=2)
        return data

    def cleanup(self) -> None:
        """Remove every host sandbox (test helper)."""
        for host in self._hosts.values():
            shutil.rmtree(host.root, ignore_errors=True)
        self._hosts.clear()
        self._delays.clear()
