"""FAST: crack-propagation (fatigue life) code.

"FAST is a crack propagation code that computes the number of cycles
before a number of independently placed cracks reach a certain length"
using the Jones method of crack dynamics [24].  We implement the
standard engineering model that method builds on: Paris-law growth

    da/dN = C · (ΔK)^m,    ΔK = Y · σ_t · sqrt(π a)

for an edge crack (Y ≈ 1.12) normal to the hole profile at each
boundary point, where σ_t is MAKE_SF's tangential boundary stress at
that point.  Cycles from ``a0`` to ``a_final`` are integrated with an
adaptive RK4 march (closed form exists for constant σ; the integrator
matches it, which the tests assert, and also supports the stress-
gradient correction where σ decays away from the hole).

Output JOB.LIFE: cycles-to-failure for each crack site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["ParisLaw", "cycles_to_grow", "cycles_closed_form", "run_fast"]

EDGE_CRACK_Y = 1.12


@dataclass(frozen=True)
class ParisLaw:
    """Paris-law constants.

    Strict SI units: ``da/dN`` in m/cycle with ΔK in Pa·sqrt(m).  The
    default corresponds to the common aluminium-alloy value of
    ~2e-12 (mm/cycle)(MPa·sqrt(m))^-3 converted to SI.
    """

    c: float = 2.0e-30
    m: float = 3.0

    def __post_init__(self) -> None:
        if self.c <= 0:
            raise ValueError("c must be positive")
        if self.m <= 1:
            raise ValueError("m must be > 1")

    def growth_rate(self, delta_k: np.ndarray) -> np.ndarray:
        return self.c * np.abs(delta_k) ** self.m


def cycles_closed_form(
    sigma: float, a0: float, a_final: float, law: ParisLaw = ParisLaw(), y: float = EDGE_CRACK_Y
) -> float:
    """Analytic Paris integral for constant stress (m != 2)."""
    if sigma <= 0:
        return float("inf")
    if a_final <= a0:
        return 0.0
    m = law.m
    k = law.c * (y * sigma * np.sqrt(np.pi)) ** m
    p = 1.0 - m / 2.0
    if abs(p) < 1e-12:
        return float(np.log(a_final / a0) / k)
    return float((a_final**p - a0**p) / (k * p))


def cycles_to_grow(
    sigma: float,
    a0: float,
    a_final: float,
    law: ParisLaw = ParisLaw(),
    y: float = EDGE_CRACK_Y,
    stress_profile: Optional[Callable[[float], float]] = None,
    steps: int = 512,
) -> float:
    """Numerically integrate dN = da / (C ΔK^m) from a0 to a_final.

    ``stress_profile(a)`` optionally modulates the driving stress with
    crack length (stress decays away from the hole); default constant.
    Uses Simpson's rule on a log-spaced grid, accurate because the
    integrand is a smooth power law in ``a``.
    """
    if sigma <= 0:
        return float("inf")
    if a_final <= a0:
        return 0.0
    if a0 <= 0:
        raise ValueError("initial crack length must be positive")
    if steps < 8 or steps % 2:
        raise ValueError("steps must be an even integer >= 8")
    a = np.geomspace(a0, a_final, steps + 1)
    s = np.full_like(a, sigma)
    if stress_profile is not None:
        s = s * np.array([stress_profile(float(ai)) for ai in a])
    dk = y * s * np.sqrt(np.pi * a)
    integrand = 1.0 / law.growth_rate(dk)
    # Simpson on non-uniform grid via per-interval-pair quadratic fit.
    total = 0.0
    for i in range(0, steps, 2):
        h0 = a[i + 1] - a[i]
        h1 = a[i + 2] - a[i + 1]
        f0, f1, f2 = integrand[i], integrand[i + 1], integrand[i + 2]
        hs = h0 + h1
        total += (hs / 6.0) * (
            f0 * (2.0 - h1 / h0) + f1 * hs * hs / (h0 * h1) + f2 * (2.0 - h0 / h1)
        )
    return float(total)


def run_fast(io) -> None:
    """Stage entry point: JOB.SF (+JOB.TH) → JOB.LIFE / JOB.GROWTH."""
    with io.open("JOB.SF", "r") as fh:
        header = fh.readline().split()
        n = int(header[0])
        sigma_t = np.array([float(fh.readline()) for _ in range(n)])
    a0 = float(io.param("crack_a0", 1e-3))
    a_final = float(io.param("crack_af", 10e-3))
    law = ParisLaw(
        c=float(io.param("paris_c", 2.0e-30)), m=float(io.param("paris_m", 3.0))
    )
    lives = np.array(
        [
            cycles_to_grow(max(s, 0.0), a0, a_final, law)
            if s > 0
            else float("inf")
            for s in sigma_t
        ]
    )
    with io.open("JOB.LIFE", "w") as fh:
        fh.write(f"{len(lives)}\n")
        for life in lives:
            fh.write(f"{life:.9e}\n")
    with io.open("JOB.GROWTH", "w") as fh:
        fh.write(f"{a0:.9e} {a_final:.9e} {law.c:.9e} {law.m:.9e}\n")
