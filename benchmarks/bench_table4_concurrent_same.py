"""Bench: regenerate Table 4 — concurrent same-machine runs,
Files vs Grid Buffers (cumulative DARLAM completion)."""

from repro.bench.experiments import run_table4


def test_table4_concurrent_same_machine(once):
    table = once(run_table4)
    table.print()
    assert table.all_checks_pass
