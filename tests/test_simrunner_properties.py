"""Property-based tests of the simulated runner's physics.

Whatever the workflow and placement, the simulation must respect basic
conservation laws: no machine finishes its work faster than its CPU
allows, sequential couplings never beat pipelined ones on multi-core
hardware, and adding work never makes a run faster.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.machine import Machine, MachineSpec
from repro.sim.engine import Environment
from repro.sim.netsim import LinkSpec, Network
from repro.workflow.scheduler import plan_workflow
from repro.workflow.simrunner import simulate_plan
from repro.workflow.spec import FileUse, Stage, Workflow

MB = 1024 * 1024


def build_env(names, speed=1.0, cores=1):
    env = Environment()
    machines = {
        n: Machine(
            env,
            MachineSpec(
                name=n, address=f"{n}.t", country="AU", cpu="t", mem_mb=512,
                speed=speed, cores=cores,
                idle_io_fraction=0.0, buffer_cpu_per_mb=0.0, file_cpu_per_mb=0.0,
            ),
        )
        for n in names
    }
    net = Network(env, default=LinkSpec(bandwidth=1000 * MB, latency=1e-6))
    return env, machines, net


def chain_workflow(works, nbytes=1 * MB, chunks=8):
    stages = []
    prev = None
    for i, work in enumerate(works):
        reads = (FileUse(prev, nbytes),) if prev else ()
        fname = f"f{i}"
        stages.append(
            Stage(f"s{i}", reads=reads, writes=(FileUse(fname, nbytes),), work=work, chunks=chunks)
        )
        prev = fname
    return Workflow("prop", stages)


class TestConservation:
    @given(
        works=st.lists(st.floats(min_value=1.0, max_value=200.0), min_size=1, max_size=4),
        speed=st.floats(min_value=0.2, max_value=4.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_single_machine_cpu_lower_bound(self, works, speed):
        """One single-core machine can never beat total-work/speed."""
        wf = chain_workflow(works)
        env, machines, net = build_env(["m"], speed=speed)
        plan = plan_workflow(wf, {s: "m" for s in wf.stages}, coupling={
            f: "buffer" for f in wf.pipeline_files()
        })
        report = simulate_plan(plan, machines=machines, network=net, env=env)
        assert report.makespan >= sum(works) / speed * 0.999

    @given(
        works=st.lists(st.floats(min_value=5.0, max_value=100.0), min_size=2, max_size=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_pipelined_never_slower_than_sequential_cross_machine(self, works):
        """With one machine per stage and fast links, streaming beats
        (or ties) the sequential local+copy wiring."""
        names = [f"m{i}" for i in range(len(works))]
        placement = {f"s{i}": names[i] for i in range(len(works))}

        def run(mech):
            wf = chain_workflow(works)
            env, machines, net = build_env(names)
            plan = plan_workflow(
                wf, placement, coupling={f: mech for f in wf.pipeline_files()}
            )
            return simulate_plan(plan, machines=machines, network=net, env=env).makespan

        assert run("buffer") <= run("copy") * 1.01

    @given(
        base=st.floats(min_value=10.0, max_value=100.0),
        extra=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_more_work_never_faster(self, base, extra):
        def run(works):
            wf = chain_workflow(works)
            env, machines, net = build_env(["m"])
            plan = plan_workflow(wf, {s: "m" for s in wf.stages})
            return simulate_plan(plan, machines=machines, network=net, env=env).makespan

        assert run([base, base + extra]) >= run([base, base]) * 0.999

    @given(chunks=st.integers(min_value=1, max_value=64))
    @settings(max_examples=15, deadline=None)
    def test_chunking_does_not_change_sequential_total(self, chunks):
        """Chunk granularity is a modelling knob; the sequential total
        must be insensitive to it (same work, same bytes)."""
        wf = chain_workflow([50.0, 50.0], chunks=chunks)
        env, machines, net = build_env(["m"])
        plan = plan_workflow(wf, {s: "m" for s in wf.stages})
        t = simulate_plan(plan, machines=machines, network=net, env=env).makespan
        wf2 = chain_workflow([50.0, 50.0], chunks=1)
        env2, machines2, net2 = build_env(["m"])
        plan2 = plan_workflow(wf2, {s: "m" for s in wf2.stages})
        t2 = simulate_plan(plan2, machines=machines2, network=net2, env=env2).makespan
        assert t == pytest.approx(t2, rel=0.02)

    @given(cores=st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_more_cores_never_slower(self, cores):
        def run(c):
            wf = chain_workflow([60.0, 60.0, 60.0])
            env, machines, net = build_env(["m"], cores=c)
            plan = plan_workflow(
                wf, {s: "m" for s in wf.stages},
                coupling={f: "buffer" for f in wf.pipeline_files()},
            )
            return simulate_plan(plan, machines=machines, network=net, env=env).makespan

        assert run(cores + 1) <= run(cores) * 1.01

    @given(
        bandwidth_mb=st.floats(min_value=0.1, max_value=100.0),
        latency=st.floats(min_value=0.0001, max_value=0.5),
    )
    @settings(max_examples=20, deadline=None)
    def test_copy_time_matches_link_model(self, bandwidth_mb, latency):
        """The copy window in the report equals the closed-form cost
        within disk overheads."""
        wf = chain_workflow([10.0, 10.0], nbytes=20 * MB, chunks=1)
        env = Environment()
        machines = {
            n: Machine(
                env,
                MachineSpec(
                    name=n, address=f"{n}.t", country="AU", cpu="t", mem_mb=512,
                    speed=1.0, idle_io_fraction=0.0,
                ),
            )
            for n in ("a", "b")
        }
        net = Network(env)
        net.connect("a", "b", LinkSpec(bandwidth=bandwidth_mb * MB, latency=latency))
        plan = plan_workflow(wf, {"s0": "a", "s1": "b"}, coupling={"f0": "copy", "f1": "local"})
        report = simulate_plan(plan, machines=machines, network=net, env=env)
        start, finish = report.copy_times["f0"]
        ideal = net.estimate_bulk_time("a", "b", 20 * MB)
        assert finish - start >= ideal * 0.99
        assert finish - start <= ideal + 5.0  # disk read/write overheads
