"""Extension bench E2: remote-file modes in the simulator.

Section 5.4 notes the remote-file modes were "shown in another paper"
[26]; here we evaluate them in the calibrated simulator and — more
interestingly — validate the FM's closed-form
:class:`~repro.core.policy.AccessPolicy` against the discrete-event
model: for every (read fraction × latency) cell, the policy's predicted
winner (copy vs proxy) must match the simulated winner.
"""

from repro.core.policy import AccessEstimate, AccessPolicy
from repro.bench.tables import TableBuilder
from repro.grid.machine import Machine, MachineSpec
from repro.sim.engine import Environment
from repro.sim.netsim import LinkSpec, Network
from repro.workflow.external import REMOTE_BLOCK, ExternalInput
from repro.workflow.scheduler import plan_workflow
from repro.workflow.simrunner import simulate_plan
from repro.workflow.spec import FileUse, Stage, Workflow

MB = 1024 * 1024
DATASET = 32 * MB
BANDWIDTH = 2 * MB
FRACTIONS = [0.02, 0.1, 0.5, 1.0]
LATENCIES = [0.005, 0.05, 0.2]


def _run(mode: str, fraction: float, latency: float) -> float:
    wf = Workflow(
        "e2",
        [
            Stage(
                "analyse",
                reads=(FileUse("dataset", DATASET),),
                writes=(FileUse("report", MB),),
                work=10.0,
                chunks=8,
            )
        ],
    )
    env = Environment()
    machines = {
        n: Machine(
            env,
            MachineSpec(
                name=n, address=f"{n}.t", country="AU", cpu="t", mem_mb=512,
                speed=1.0, idle_io_fraction=0.0,
            ),
        )
        for n in ("worker", "store")
    }
    net = Network(env)
    net.connect("worker", "store", LinkSpec(bandwidth=BANDWIDTH, latency=latency))
    plan = plan_workflow(wf, {"analyse": "worker"})
    report = simulate_plan(
        plan,
        machines=machines,
        network=net,
        env=env,
        externals={"dataset": ExternalInput(host="store", mode=mode, read_fraction=fraction)},
    )
    return report.makespan


def run_matrix():
    policy = AccessPolicy()
    table = TableBuilder(
        "Extension E2 — remote dataset access: simulated winner vs policy prediction",
        ["latency s", "fraction", "copy (sim)", "proxy (sim)", "sim winner", "policy says", "agree"],
    )
    agreements = 0
    cells = 0
    for latency in LATENCIES:
        for fraction in FRACTIONS:
            t_copy = _run("copy", fraction, latency)
            t_proxy = _run("remote", fraction, latency)
            sim_winner = "copy" if t_copy <= t_proxy else "proxy"
            predicted = policy.decide(
                AccessEstimate(
                    file_size=DATASET,
                    bandwidth=BANDWIDTH,
                    latency=latency,
                    read_fraction=fraction,
                    block_size=REMOTE_BLOCK,
                )
            ).mode
            agree = sim_winner == predicted
            agreements += agree
            cells += 1
            table.add_row(
                latency,
                fraction,
                f"{t_copy:.1f}",
                f"{t_proxy:.1f}",
                sim_winner,
                predicted,
                "yes" if agree else "NO",
            )
    table.add_check(
        f"policy predicts the simulated winner in >= 10/12 cells (got {agreements})",
        agreements >= 10,
    )
    table.add_check(
        "tiny fractions always favour proxy in the simulator",
        all(_run("remote", 0.02, lat) < _run("copy", 0.02, lat) for lat in LATENCIES),
    )
    return table


def test_extension_remote_modes(once):
    table = once(run_matrix)
    table.print()
    assert table.all_checks_pass
