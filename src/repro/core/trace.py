"""FM call tracing (the Bypass-style observability layer).

The paper's implementation sat on Condor's Bypass trap layer, whose
other role was *inspection* — seeing exactly which file operations a
legacy binary performs.  :class:`FmTracer` recreates that: wrap a
:class:`~repro.core.multiplexer.FileMultiplexer` and every open/read/
write/seek/close is appended to a bounded in-memory log (optionally
echoed to a stream), with per-path summaries for post-run analysis.

Both classes here are thin adapters over :mod:`repro.obs`, the single
source of truth for process-wide telemetry: :class:`FmTracer` mirrors
each event into the obs tracer's sink (when one is configured) and
:class:`TransferMonitor` feeds every sample into the metrics registry
(``transport_transfer_bytes_total`` / ``transport_transfer_seconds_total``)
while keeping its local rolling window for bandwidth/latency estimation.

Usage::

    tracer = FmTracer(fm)
    f = tracer.open("/wf/x", "r")   # same API as fm.open
    ...
    print(tracer.summary())
"""

from __future__ import annotations

import io
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, TextIO

from .. import obs
from ..ioutil import ReadIntoFromRead
from .multiplexer import FileMultiplexer, FMFile

__all__ = ["TraceEvent", "FmTracer", "TransferSample", "TransferMonitor"]

_TRANSFER_BYTES = obs.counter(
    "transport_transfer_bytes_total",
    "Bytes moved per monitored transfer operation",
    labelnames=("peer", "op"),
)
_TRANSFER_SECONDS = obs.counter(
    "transport_transfer_seconds_total",
    "Wall seconds spent in monitored transfer operations",
    labelnames=("peer", "op"),
)


@dataclass(frozen=True)
class TransferSample:
    """One timed remote transfer operation against one peer."""

    peer: str       # remote host label (GridFTP server, buffer server…)
    op: str         # get_block / put_block / size / fetch / store …
    nbytes: int
    seconds: float


class TransferMonitor:
    """Rolling per-peer transfer observations → bandwidth/latency estimates.

    The paper's policy (§3.1) and replica selection both want *measured*
    link numbers, not configured ones.  Every remote client records its
    RPCs here; :meth:`bandwidth` and :meth:`latency` turn the samples
    into the inputs :class:`~repro.core.policy.AccessEstimate` needs.

    Latency is estimated from the fastest small-payload round trip seen
    (halved: one-way), bandwidth from the aggregate of bulk samples —
    small ones are dominated by the round trip, not the pipe.

    Classification goes by op type as well as payload size: a
    whole-file ``fetch``/``store`` is a bulk transfer even when the
    file happens to be tiny — its duration includes per-block RPCs and
    disk IO, so counting it as a latency probe would skew the one-way
    estimate upward.
    """

    #: Samples at or below this payload size count as latency probes.
    SMALL_BYTES = 4096
    #: Ops that are whole-file transfers, never latency probes.
    BULK_OPS = frozenset({"fetch", "store"})

    def __init__(self, max_samples: int = 1024):
        self._samples: Dict[str, Deque[TransferSample]] = {}
        self._max = max_samples
        self._lock = threading.Lock()

    def record(self, peer: str, op: str, nbytes: int, seconds: float) -> None:
        sample = TransferSample(peer=peer, op=op, nbytes=nbytes, seconds=max(0.0, seconds))
        _TRANSFER_BYTES.labels(peer=peer, op=op).inc(max(0, nbytes))
        _TRANSFER_SECONDS.labels(peer=peer, op=op).inc(sample.seconds)
        with self._lock:
            bucket = self._samples.get(peer)
            if bucket is None:
                bucket = self._samples[peer] = deque(maxlen=self._max)
            bucket.append(sample)

    def samples(self, peer: str) -> list:
        with self._lock:
            return list(self._samples.get(peer, ()))

    def _is_bulk(self, sample: TransferSample) -> bool:
        return sample.op in self.BULK_OPS or sample.nbytes > self.SMALL_BYTES

    def latency(self, peer: str) -> Optional[float]:
        """Best observed one-way latency to ``peer`` in seconds."""
        probes = [s.seconds for s in self.samples(peer) if not self._is_bulk(s)]
        if not probes:
            return None
        return min(probes) / 2.0

    def bandwidth(self, peer: str) -> Optional[float]:
        """Observed bulk throughput to ``peer`` in bytes/second."""
        bulk = [s for s in self.samples(peer) if self._is_bulk(s)]
        if not bulk:
            return None
        total_bytes = sum(s.nbytes for s in bulk)
        total_secs = sum(s.seconds for s in bulk)
        if total_secs <= 0:
            return None
        return total_bytes / total_secs

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-peer roll-up for logging/benchmark emission."""
        out: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            peers = list(self._samples)
        for peer in peers:
            samples = self.samples(peer)
            out[peer] = {
                "ops": len(samples),
                "bytes": sum(s.nbytes for s in samples),
                "seconds": sum(s.seconds for s in samples),
                "bandwidth_bps": self.bandwidth(peer),
                "latency_s": self.latency(peer),
            }
        return out


@dataclass(frozen=True)
class TraceEvent:
    """One traced FM call."""

    timestamp: float
    op: str          # open / read / write / seek / close
    path: str
    mode: str        # IO mode in force for the handle
    detail: int = 0  # bytes for read/write, target for seek

    def __str__(self) -> str:
        return f"[{self.timestamp:.6f}] {self.op:<5} {self.path} ({self.mode}) {self.detail}"


class _TracedFile(ReadIntoFromRead, io.RawIOBase):
    def __init__(self, inner: FMFile, tracer: "FmTracer", path: str):
        super().__init__()
        self._inner = inner
        self._tracer = tracer
        self._path = path

    def _log(self, op: str, detail: int = 0) -> None:
        self._tracer._record(op, self._path, self._inner.record.mode.value, detail)

    def readable(self) -> bool:
        return self._inner.readable()

    def writable(self) -> bool:
        return self._inner.writable()

    def seekable(self) -> bool:
        return self._inner.seekable()

    def read(self, size: int = -1) -> bytes:  # type: ignore[override]
        data = self._inner.read(size)
        self._log("read", len(data or b""))
        return data

    def write(self, data) -> int:  # type: ignore[override]
        n = self._inner.write(data)
        self._log("write", n)
        return n

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        pos = self._inner.seek(offset, whence)
        self._log("seek", pos)
        return pos

    def tell(self) -> int:
        return self._inner.tell()

    def close(self) -> None:
        if not self.closed:
            self._log("close")
            self._inner.close()
            super().close()


class FmTracer:
    """Wraps an FM; opened handles log every operation.

    The event log is a bounded deque guarded by a lock: handles may be
    used from several threads (the runner's stage threads all trace
    through one tracer), so appends and :meth:`summary`'s iteration
    must never interleave unprotected.  Each event is also mirrored to
    the :mod:`repro.obs` tracer sink (when configured) as an
    ``fm.<op>`` point event, nesting under whatever span is active.
    """

    def __init__(
        self,
        fm: FileMultiplexer,
        max_events: int = 100_000,
        echo: Optional[TextIO] = None,
        clock=time.monotonic,
    ):
        self.fm = fm
        self.events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.echo = echo
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()

    def _record(self, op: str, path: str, mode: str, detail: int = 0) -> None:
        event = TraceEvent(
            timestamp=self._clock() - self._t0, op=op, path=path, mode=mode, detail=detail
        )
        with self._lock:
            self.events.append(event)
        obs.event(f"fm.{op}", path=path, mode=mode, detail=detail)
        if self.echo is not None:
            print(event, file=self.echo)

    def snapshot(self) -> List[TraceEvent]:
        """A consistent copy of the event log (safe under concurrency)."""
        with self._lock:
            return list(self.events)

    def open(self, path: str, mode: str = "r") -> _TracedFile:
        handle = self.fm.open(path, mode)
        self._record("open", path, handle.record.mode.value)
        return _TracedFile(handle, self, path)

    # -- analysis ----------------------------------------------------------
    def transfer_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-peer throughput/latency observed by the wrapped FM."""
        monitor = getattr(self.fm, "monitor", None)
        return monitor.summary() if monitor is not None else {}

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-path op counts and byte totals."""
        out: Dict[str, Dict[str, int]] = {}
        for event in self.snapshot():
            entry = out.setdefault(
                event.path,
                {"opens": 0, "reads": 0, "writes": 0, "seeks": 0, "bytes_read": 0, "bytes_written": 0},
            )
            if event.op == "open":
                entry["opens"] += 1
            elif event.op == "read":
                entry["reads"] += 1
                entry["bytes_read"] += event.detail
            elif event.op == "write":
                entry["writes"] += 1
                entry["bytes_written"] += event.detail
            elif event.op == "seek":
                entry["seeks"] += 1
        return out

    def clear(self) -> None:
        with self._lock:
            self.events.clear()
